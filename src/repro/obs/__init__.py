"""Observability layer (PR 9): span tracing, metrics, flight recording.

Three pieces, one import surface:

* :data:`TRACER` — process-wide span tracer with a bounded ring and
  cross-process parent propagation (:mod:`repro.obs.trace`).  Hot call
  sites guard on ``TRACER.enabled`` so disabled tracing is a no-op shim
  (priced ≤2% by E20).
* :data:`METRICS` — the metrics registry that absorbs subsystem
  ``stats()`` dicts under one dotted taxonomy and can publish ``obs_*``
  series back into the store (:mod:`repro.obs.metrics`).
* :data:`FLIGHT` — the flight recorder that snapshots the recent span
  ring when a supervisor intervenes (:mod:`repro.obs.flight`).

:func:`collect_metrics` is the one-call bridge from a live stack
(engine / hub / runtime / standing / pool) into the registry — it knows
how every legacy flat ``stats()`` key maps onto the dotted taxonomy and
keeps the flat key as an alias, which is how the CLI ``--stats`` paths
unified without any subsystem migrating off its dict.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Tuple

from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import TRACER, Span, Tracer

__all__ = [
    "TRACER", "Tracer", "Span",
    "METRICS", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "FLIGHT", "FlightRecorder",
    "collect_metrics", "absorb_stats", "route_stat",
]

# -- legacy flat key → dotted taxonomy routing -------------------------------
#
# Every subsystem grew its own flat names (``cache_hits``,
# ``pool_respawns_total``, ``fanout_mean`` …) and the merging containers
# (engine → hub → runtime) re-prefix what they embed.  ``route_stat``
# undoes all of that: given a flat key and the dict it came from, it
# returns the canonical ``(namespace, short_name)``.

#: QueryHub counters that *look* like merged standing keys but are the
#: hub's own (``standing_served`` counts hub queries answered from
#: standing state; the standing engine's own counters arrive prefixed).
_HUB_OWN = frozenset({
    "fused_served", "direct_served", "standing_served",
    "fuse_overrides", "shapes_tracked",
})

#: Unprefixed federated/parallel engine keys that deserve their own
#: namespaces rather than landing in ``engine.*``.
_KEY_ROUTES = {
    "shards": "federation",
    "federated_queries": "federation",
    "fanout_total": "federation",
    "fanout_mean": "federation",
    "serial_fallbacks": "parallel",
}

_LEAF_ROUTES = (
    ("cache_", "cache"),
    ("rollup_", "rollup"),
    ("pool_", "pool"),
    ("parallel_", "parallel"),
    ("standing_", "standing"),
    ("arbiter_", "arbiter"),
)


def route_stat(key: str, origin: str = "engine") -> Tuple[str, str]:
    """Canonical ``(namespace, short)`` for one legacy flat stats key.

    ``origin`` names the dict the key came from (``engine`` | ``hub`` |
    ``runtime`` | a literal namespace for un-merged dicts like ``pool``
    or ``standing``).
    """
    if origin == "runtime":
        if key.startswith("hub_"):
            return route_stat(key[len("hub_"):], "hub")
        if key.startswith("arbiter_"):
            return "arbiter", key[len("arbiter_"):]
        return "runtime", key
    if origin == "hub":
        if key in _HUB_OWN:
            return "hub", key
        if key.startswith("standing_"):
            return "standing", key[len("standing_"):]
        if key.startswith("engine_"):
            return route_stat(key[len("engine_"):], "engine")
        return "hub", key
    if origin == "engine":
        ns = _KEY_ROUTES.get(key)
        if ns is not None:
            return ns, key
        for prefix, leaf_ns in _LEAF_ROUTES:
            if key.startswith(prefix):
                return leaf_ns, key[len(prefix):]
        return "engine", key
    return origin, key


def absorb_stats(reg: MetricsRegistry, stats: Mapping[str, Any],
                 origin: str) -> None:
    """Absorb one flat legacy ``stats()`` dict (or benchmark row) into
    ``reg`` under canonical names, keeping flat keys as aliases."""
    for key, value in stats.items():
        if isinstance(value, Mapping):
            for sub, sub_value in value.items():
                ns, short = route_stat(key, origin)
                reg.record(f"{ns}.{short}.{sub}", sub_value)
            continue
        ns, short = route_stat(key, origin)
        reg.record(f"{ns}.{short}", value, alias=key if key != short else None)


def collect_metrics(
    *,
    engine: Optional[Any] = None,
    hub: Optional[Any] = None,
    runtime: Optional[Any] = None,
    standing: Optional[Any] = None,
    pool: Optional[Any] = None,
    serve: Optional[Any] = None,
    ingest: Optional[Any] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Absorb every reachable ``stats()`` dict into one registry.

    Pass whichever handles exist; overlapping sources are fine (the hub
    embeds engine stats, the runtime embeds both) — later absorptions
    just refresh the same canonical gauges.
    """
    reg = registry if registry is not None else METRICS
    if engine is not None:
        absorb_stats(reg, engine.stats(), "engine")
    if hub is not None:
        absorb_stats(reg, hub.stats(), "hub")
    if runtime is not None:
        absorb_stats(reg, runtime.stats(), "runtime")
    if standing is not None:
        absorb_stats(reg, standing.stats(), "standing")
    if pool is not None:
        absorb_stats(reg, pool.stats(), "pool")
    if serve is not None:
        absorb_stats(reg, serve.stats(), "serve")
    if ingest is not None:
        absorb_stats(reg, ingest.stats(), "ingest")
    return reg
