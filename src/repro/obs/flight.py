"""Flight recorder — the last N seconds of spans, dumped on intervention.

The span ring (:mod:`repro.obs.trace`) already holds the recent past;
the flight recorder is the policy layer that snapshots it **at the
moment a supervisor intervenes** (``restart_loop`` / ``quarantine_loop``
in :class:`~repro.core.runtime.LoopRuntime`), so the audit record that
says *what* was done carries the causal trace of *why* — the slow tick,
the stalled scatter, the arbiter deferral that preceded the decision.

Dumps are bounded (oldest evicted) and referenced from audit records by
id, keeping :class:`~repro.core.audit.AuditLog` rows JSON-light.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.trace import TRACER, Span, Tracer

__all__ = ["FlightRecorder", "FLIGHT"]


class FlightRecorder:
    """Snapshot the tracer ring around supervisor interventions."""

    def __init__(self, tracer: Optional[Tracer] = None, *,
                 window_s: float = 30.0, max_dumps: int = 16):
        self.tracer = tracer if tracer is not None else TRACER
        self.window_s = float(window_s)
        self._dumps: deque = deque(maxlen=int(max_dumps))
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def dump(self, trigger: str, **context: Any) -> Optional[str]:
        """Snapshot spans whose end falls inside the window; return the
        dump id (``flight-<n>``) for the audit record, or None when
        tracing is off (nothing recorded ⇒ nothing to attach)."""
        if not self.tracer.enabled:
            return None
        now_us = time.time() * 1e6
        horizon_us = now_us - self.window_s * 1e6
        spans = [s for s in self.tracer.spans() if s[4] + s[5] >= horizon_us]
        self._seq += 1
        dump_id = f"flight-{self._seq:04d}"
        self._dumps.append({
            "id": dump_id,
            "reason": trigger,
            "at": now_us / 1e6,
            "window_s": self.window_s,
            "n_spans": len(spans),
            "context": dict(context),
            "spans": spans,
        })
        return dump_id

    def dumps(self) -> List[Dict[str, Any]]:
        return list(self._dumps)

    def get(self, dump_id: str) -> Optional[Dict[str, Any]]:
        for d in self._dumps:
            if d["id"] == dump_id:
                return d
        return None

    def spans_of(self, dump_id: str) -> List[Span]:
        d = self.get(dump_id)
        return list(d["spans"]) if d else []

    def export_json(self, dump_id: str) -> Optional[str]:
        """One dump as Chrome-trace JSON (loads in Perfetto as-is)."""
        d = self.get(dump_id)
        if d is None:
            return None
        doc = self.tracer.export_chrome(list(d["spans"]))
        doc["otherData"].update(reason=d["reason"], dump_id=d["id"])
        return json.dumps(doc)


#: Process-wide recorder over the process-wide tracer.
FLIGHT = FlightRecorder()
