"""Metrics registry — one taxonomy over the repro's scattered counters.

Before PR 9 every subsystem grew its own ``stats()`` dict with its own
flat names (``cache_hits``, ``pool_respawns_total``, ``fused_served``,
``standing_scan_fallbacks`` …) and every consumer (CLI ``--stats``,
supervisors, tests) re-merged them by hand.  The registry gives those
numbers one home:

* canonical dotted names — ``<namespace>.<key>`` (``cache.hits``,
  ``pool.respawns_total``, ``hub.fused_served``) with the legacy flat
  key kept as an **alias** so nothing downstream has to relearn names;
* three instrument kinds — :class:`Counter` (monotonic),
  :class:`Gauge` (last value), :class:`Histogram` (count/sum/min/max,
  enough for means and rates without bucket bookkeeping);
* ``absorb()`` — snapshot an existing ``stats()`` dict into gauges in
  one call, which is how the CLI unifies its output without every
  subsystem migrating off its dict;
* ``publish()`` — write a snapshot into a :class:`TimeSeriesStore` as
  ``obs_*`` series, so supervisors and standing queries can monitor the
  monitor with the same machinery they use on the fleet (the DCDB
  Wintermute pattern of a monitoring system observing itself).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """Monotonic count of events (resets only with the registry)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last observed value of a quantity that can go either way."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming count/sum/min/max — means without bucket bookkeeping."""

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments plus legacy-alias bookkeeping."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._aliases: Dict[str, str] = {}  # canonical -> legacy flat key

    # -- instruments -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._aliases.clear()

    # -- absorption of legacy stats() dicts ------------------------------
    def absorb(self, namespace: str, stats: Mapping[str, Any],
               *, strip_prefix: str = "") -> None:
        """Snapshot a subsystem ``stats()`` dict into namespaced gauges.

        ``strip_prefix`` handles dicts whose keys already carry a flat
        namespace (``cache_hits`` under ``cache`` → ``cache.hits``); the
        original flat key is remembered as the alias either way.  Nested
        dicts recurse with a dotted sub-namespace; non-numeric values
        are skipped (a stats dict may carry strings or lists).
        """
        for key, value in stats.items():
            if isinstance(value, Mapping):
                self.absorb(f"{namespace}.{key}", value)
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            short = key
            if strip_prefix and short.startswith(strip_prefix):
                short = short[len(strip_prefix):]
            canonical = f"{namespace}.{short}"
            self.gauge(canonical).set(value)
            if key != short:
                self._aliases.setdefault(canonical, key)

    def record(self, canonical: str, value: Any, *,
               alias: Optional[str] = None) -> None:
        """Set one gauge under its canonical name, remembering the
        legacy flat key when it differs (non-numeric values skipped)."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        self.gauge(canonical).set(value)
        if alias and alias != canonical.rsplit(".", 1)[-1]:
            self._aliases.setdefault(canonical, alias)

    def alias_of(self, canonical: str) -> Optional[str]:
        return self._aliases.get(canonical)

    # -- readout ---------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """All current values under canonical names, sorted."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = float(h.count)
            out[f"{name}.sum"] = h.sum
            if h.count:
                out[f"{name}.mean"] = h.mean
                out[f"{name}.max"] = h.max
        return dict(sorted(out.items()))

    def render(self, *, prefix: str = "") -> List[str]:
        """Sorted ``name = value  [legacy_alias]`` lines for the CLI."""
        lines = []
        for name, value in self.snapshot().items():
            if prefix and not name.startswith(prefix):
                continue
            alias = self._aliases.get(name)
            suffix = f"  [{alias}]" if alias else ""
            lines.append(f"{name} = {value:g}{suffix}")
        return lines

    # -- self-publication into the store ---------------------------------
    def publish(self, store, at: float, *,
                prefix: str = "obs") -> List[Tuple[str, float]]:
        """Write the snapshot into ``store`` as ``obs_*`` series.

        Canonical dots become underscores (``cache.hits`` →
        ``obs_cache_hits``) — the store's label-free self-telemetry
        convention (mirrors the runtime's ``loop_*`` series).  Returns
        the (series_name, value) pairs written, for tests and the CLI.
        """
        from repro.telemetry.metric import SeriesKey

        written: List[Tuple[str, float]] = []
        for name, value in self.snapshot().items():
            series = f"{prefix}_{name.replace('.', '_')}"
            store.insert(SeriesKey.of(series), at, float(value))
            written.append((series, value))
        return written


#: Process-wide registry (the CLI/runtime default; tests may make their own).
METRICS = MetricsRegistry()
