"""Span tracing for the autonomy path (PR 9, observability tentpole).

The tracer records **nested spans** — named wall-clock intervals with
parent/child structure — into a bounded ring.  One process-wide
singleton (:data:`TRACER`) keeps instrumentation call sites trivial and
makes the disabled mode a true no-op shim: every hot-path site guards on
``TRACER.enabled`` (a plain attribute load + branch) before touching any
span machinery, so tracing that is switched off costs one predicted
branch per site (priced by the E20 benchmark).

Design points, in the order they matter:

* **Bounded ring** — spans land in a ``deque(maxlen=capacity)``; a
  long-running fleet can trace forever and keep only the recent past,
  which is exactly what the flight recorder (:mod:`repro.obs.flight`)
  wants to dump on a supervisor intervention.
* **Cross-process parenting** — worker processes run their own module
  singleton (fresh interpreter ⇒ fresh ring).  The dispatching side
  passes ``TRACER.current_id()`` across the pipe; the worker adopts it
  via :meth:`Tracer.adopt` so worker-side spans parent under the
  dispatch-side scatter span, then ships its drained spans back in the
  reply for :meth:`Tracer.ingest`.  Span ids embed the pid so ids from
  different processes can never collide.
* **Two clocks** — span *placement* uses ``time.time()`` (comparable
  across processes, needed to line worker spans up under the parent
  timeline) while span *duration* uses ``time.perf_counter()`` (what
  the repo's benchmarks trust).  Chrome's trace viewer only needs the
  start to be roughly aligned; the duration is exact.

The export format is the Chrome trace-event JSON (``chrome://tracing``
/ Perfetto ``legacy JSON``): one ``ph="X"`` complete event per span,
with ``span_id`` / ``parent_id`` carried in ``args`` so tests (and
humans) can reconstruct exact parentage, not just visual nesting.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "TRACER"]

# A finished span, as stored in the ring.  Tuples, not dataclasses: the
# enabled-mode hot path appends one per span and the flight recorder
# serialises them wholesale.
#   (name, pid, span_id, parent_id, ts_us, dur_us, args)
Span = Tuple[str, int, int, Optional[int], float, float, Dict[str, Any]]

_PID_BITS = 22  # span_id = (seq << _PID_BITS) | (pid & mask); pids fit


class _SpanCtx:
    """Context manager for one open span (cheap: slots, no closures)."""

    __slots__ = ("_tracer", "name", "span_id", "args", "_wall_t0", "_perf_t0")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.args = args
        self._wall_t0 = 0.0
        self._perf_t0 = 0.0

    def __enter__(self) -> "_SpanCtx":
        self._wall_t0 = time.time()
        self._perf_t0 = time.perf_counter()
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_us = (time.perf_counter() - self._perf_t0) * 1e6
        tracer = self._tracer
        stack = tracer._stack
        # tolerate a reset() between enter and exit (tests, flight dumps)
        if stack and stack[-1] == self.span_id:
            stack.pop()
        parent = stack[-1] if stack else tracer._adopted_parent
        tracer._ring.append((
            self.name, tracer._pid, self.span_id, parent,
            self._wall_t0 * 1e6, dur_us, self.args,
        ))


class _NullCtx:
    """Shared do-nothing context returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullCtx":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CTX = _NullCtx()


class Tracer:
    """Bounded-ring span tracer with cross-process id propagation."""

    def __init__(self, capacity: int = 65536):
        self.enabled = False
        self._capacity = int(capacity)
        self._ring: deque = deque(maxlen=self._capacity)
        self._stack: List[int] = []
        self._seq = 0
        self._pid = os.getpid()
        self._adopted_parent: Optional[int] = None

    # -- lifecycle -------------------------------------------------------
    def enable(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and int(capacity) != self._capacity:
            self._capacity = int(capacity)
            self._ring = deque(self._ring, maxlen=self._capacity)
        self._pid = os.getpid()  # re-check: may be enabled post-fork
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._ring.clear()
        self._stack.clear()
        self._adopted_parent = None

    def adopt(self, parent_id: Optional[int]) -> None:
        """Parent subsequent top-level spans under a remote span id."""
        self._adopted_parent = parent_id

    # -- recording -------------------------------------------------------
    def span(self, name: str, **args: Any):
        if not self.enabled:
            return _NULL_CTX
        self._seq += 1
        span_id = (self._seq << _PID_BITS) | (self._pid & ((1 << _PID_BITS) - 1))
        return _SpanCtx(self, name, span_id, args)

    def current_id(self) -> Optional[int]:
        """Id of the innermost open span (for cross-process propagation)."""
        return self._stack[-1] if self._stack else self._adopted_parent

    # -- collection ------------------------------------------------------
    def spans(self) -> List[Span]:
        return list(self._ring)

    def drain(self) -> List[Span]:
        out = list(self._ring)
        self._ring.clear()
        return out

    def ingest(self, spans: List[Span]) -> None:
        """Merge spans drained from another process into this ring."""
        self._ring.extend(tuple(s) for s in spans)

    def __len__(self) -> int:
        return len(self._ring)

    # -- export ----------------------------------------------------------
    def export_chrome(self, spans: Optional[List[Span]] = None) -> Dict[str, Any]:
        """Chrome trace-event JSON (``{"traceEvents": [...]}``).

        Each span becomes one ``ph="X"`` complete event; ``span_id`` and
        ``parent_id`` ride in ``args`` so parentage survives the export
        exactly (the viewer nests by time, tools can nest by id).
        """
        events: List[Dict[str, Any]] = []
        main_pid = self._pid
        for name, pid, span_id, parent_id, ts_us, dur_us, args in (
                self.spans() if spans is None else spans):
            ev_args: Dict[str, Any] = {"span_id": span_id}
            if parent_id is not None:
                ev_args["parent_id"] = parent_id
            if args:
                ev_args.update(args)
            events.append({
                "name": name, "ph": "X", "pid": pid, "tid": pid,
                "ts": ts_us, "dur": max(dur_us, 0.01), "cat": "repro",
                "args": ev_args,
            })
        events.sort(key=lambda e: e["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "main_pid": main_pid},
        }

    def export_chrome_json(self, spans: Optional[List[Span]] = None) -> str:
        return json.dumps(self.export_chrome(spans), indent=None)


#: Process-wide tracer.  Hot call sites MUST guard: ``if TRACER.enabled:``.
TRACER = Tracer()
