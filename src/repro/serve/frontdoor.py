"""The multi-tenant query front door.

:class:`QueryFrontDoor` is the externally-facing serving layer: requests
arrive on behalf of named tenants, pass per-tenant admission control
(token-bucket quota, bounded queue, in-flight cap — see
:mod:`repro.serve.admission`), and execute on a small pool of serving
worker threads over any :class:`~repro.query.engine.QueryEngine` shape
(single-store, federated, or the process-parallel scatter engine).

Request lifecycle (also diagrammed in the README)::

    submit ── shed? ──> 429 (rejected/shed)
      │
      ├─ token bucket empty ──> 429 (rejected/quota)
      ├─ queue full ──────────> 429 (rejected/queue_full)
      │
      ├─ hot-result cache hit ──────────> ok  (source="cache")
      │
      └─ enqueue ── deadline passes ────> 504 (expired)
            │
         worker: standing fast path ───> ok  (source="standing")
            │
            ├─ pressure >= degrade ────> ok  (degraded, coarser rollup)
            └─ full scatter execution ─> ok  (source="raw"/"rollup:…")

Under pressure (queue-fill fraction, read by the
:class:`~repro.serve.shed.LoadShedder`) answers first come from the
standing engine and the epoch-keyed hot-result cache, then degrade to
the coarsest rollup tier for tenants that allow it, then the lowest
priority class is shed outright.

Concurrency model: admission/scheduling state lives under one condition
variable; engine execution is serialized by ``_engine_lock`` because
the vectorized engines and the simulation-driven stores are not
thread-safe — concurrency comes from the admission fast paths (cache
hits resolve inline at submit, standing reads are O(merged rows)) while
exactly one full scatter runs at a time.  Ingest shares the same lock
via :meth:`write_gate`, which is the serving side of the flow-control
story the ingest pipeline's backpressure bounds (one lock, two
traffics).  Hot-result cache entries are keyed by the engine's
epoch-derived cache version, so a commit invalidates them implicitly —
a front-door answer can never be staler than the engine's own cache
contract.

The ``clock`` is injectable (seconds, monotonic) so admission, deadline,
and shed behaviour are all deterministically unit-testable.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TRACER
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.engine import QueryResult as EngineResult
from repro.query.kernels import PARTIAL_AGGS
from repro.query.model import MetricQuery
from repro.query.standing import StandingQueryEngine
from repro.serve.admission import ADMIT, AdmissionController, PendingRequest, TenantState
from repro.serve.model import (
    REJECT_DEADLINE,
    REJECT_SHED,
    REJECT_UNKNOWN_TENANT,
    QueryRequest,
    QueryResult,
    TenantSpec,
)
from repro.serve.shed import LoadShedder, ShedConfig

#: latencies kept per tenant for the p99 readout
_LATENCY_WINDOW = 512


def _p99(values: Deque[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


class QueryFrontDoor:
    """Multi-tenant serving front door over a query engine."""

    def __init__(
        self,
        engine: QueryEngine,
        *,
        tenants: Iterable[TenantSpec] = (),
        shed: Optional[ShedConfig] = None,
        standing: Optional[StandingQueryEngine] = None,
        enable_standing: bool = True,
        n_workers: int = 2,
        hot_cache_size: int = 512,
        hot_promote_after: int = 3,
        clock: Optional[Callable[[], float]] = None,
        default_at: Optional[Callable[[], float]] = None,
    ) -> None:
        self.engine = engine
        if standing is None and enable_standing:
            standing = StandingQueryEngine(engine)
        self.standing = standing
        self.shedder = LoadShedder(shed)
        self.admission = AdmissionController()
        self.n_workers = int(n_workers)
        self.hot_cache_size = int(hot_cache_size)
        self.hot_promote_after = int(hot_promote_after)
        self._clock = clock if clock is not None else time.perf_counter
        self._default_at = default_at
        #: guards admission controller, shedder, hot cache, latency rings
        self._cv = threading.Condition()
        #: serializes engine execution and ingest (see :meth:`write_gate`)
        self._engine_lock = threading.RLock()
        self._hot: "OrderedDict[tuple, EngineResult]" = OrderedDict()
        self._sightings: Dict[MetricQuery, int] = {}
        self._latency: Dict[str, Deque[float]] = {}
        self._threads: List[threading.Thread] = []
        self._running = False
        # -- counters ------------------------------------------------------
        self.hot_hits = 0
        self.standing_served = 0
        self.rejected_unknown = 0
        for spec in tenants:
            self.add_tenant(spec)

    # --------------------------------------------------------------- admin
    def add_tenant(self, spec: TenantSpec) -> None:
        with self._cv:
            self.admission.add_tenant(spec)
            self._latency[spec.name] = deque(maxlen=_LATENCY_WINDOW)

    def write_gate(self):
        """The lock writers must hold while mutating the underlying store.

        Serving and ingest contend on one lock, so a burst of commits
        shows up as serving queue pressure (and vice versa: a heavy
        scatter delays the next commit) — exactly the coupled
        flow-control picture the ingest pipeline's drop accounting
        measures from the other side.
        """
        return self._engine_lock

    def start(self) -> "QueryFrontDoor":
        if self._running:
            return self
        self._running = True
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(self.n_workers)
        ]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        with self._cv:
            if not self._running:
                return
            self._running = False
            drained = self.admission.drain()
            self._cv.notify_all()
        for state, entry in drained:
            self._resolve(entry, QueryResult.failure(entry.request, "rejected", "shutdown"))
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "QueryFrontDoor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -------------------------------------------------------------- serving
    def serve(self, request: QueryRequest) -> QueryResult:
        """Submit and block for the response (deadline still applies)."""
        return self.submit(request).result()

    def submit(self, request: QueryRequest) -> "Future[QueryResult]":
        """Admit (or reject) one request; the future resolves to its result.

        Rejections resolve the future immediately; hot-cache hits resolve
        inline without consuming a queue slot or a worker; everything
        else queues for the serving workers.
        """
        fut: "Future[QueryResult]" = Future()
        now = self._clock()
        with self._cv:
            state = self.admission.tenant(request.tenant)
            if state is None:
                self.rejected_unknown += 1
                fut.set_result(
                    QueryResult.failure(request, "rejected", REJECT_UNKNOWN_TENANT)
                )
                return fut
            self.shedder.observe(self.admission.pressure())
            priority = (
                request.priority if request.priority is not None else state.spec.priority
            )
            if self.shedder.should_shed_priority(priority, self.admission.min_priority()):
                state.submitted += 1
                state.shed += 1
                self.shedder.shed_rejections += 1
                fut.set_result(QueryResult.failure(request, "rejected", REJECT_SHED))
                return fut
            decision = self.admission.try_admit(state, now)
            if decision is not ADMIT:
                fut.set_result(QueryResult.failure(request, "rejected", decision))
                return fut
            hit = self._probe_hot(request)
            if hit is not None:
                state.admitted += 1
                state.served += 1
                self.hot_hits += 1
                latency_ms = (self._clock() - now) * 1000.0
                self._latency[state.spec.name].append(latency_ms)
                fut.set_result(
                    QueryResult.from_engine(
                        request, hit, source="cache", latency_ms=latency_ms
                    )
                )
                return fut
            expires = (
                now + request.deadline_ms / 1000.0
                if request.deadline_ms is not None
                else None
            )
            self.admission.enqueue(state, PendingRequest(request, now, expires, fut))
            self._cv.notify()
        return fut

    # ------------------------------------------------------------- internals
    def _resolve_at(self, request: QueryRequest) -> float:
        if request.at is not None:
            return request.at
        if self._default_at is None:
            raise ValueError(
                "request carries no 'at' and the front door has no default clock"
            )
        return self._default_at()

    def _parse(self, request: QueryRequest) -> MetricQuery:
        q = request.query
        return self.engine.parse(q) if isinstance(q, str) else q

    def _probe_hot(self, request: QueryRequest) -> Optional[EngineResult]:
        """Epoch-keyed hot-result probe (called under the scheduler lock).

        Only dict reads on the engine/store — safe to run without the
        engine lock, so cache hits never queue behind a running scatter.
        """
        try:
            q = self._parse(request)
            at = self._resolve_at(request)
        except Exception:
            return None
        key = self._hot_key(q, at)
        hit = self._hot.get(key)
        if hit is not None:
            self._hot.move_to_end(key)
        return hit

    def _hot_key(self, q: MetricQuery, at: float) -> tuple:
        quantum = q.step_s if q.step_s is not None else self.engine.instant_quantum_s
        return QueryCache.make_key(
            q.to_expr(), at - (q.range_s or 0.0), at, quantum,
            version=self.engine._cache_version(q),
        )

    def _worker(self) -> None:
        while True:
            with self._cv:
                if not self._running:
                    return
                chosen, expired = self.admission.next_ready(self._clock())
                if chosen is None and not expired:
                    # short timed wait: deadline expiry must fire even when
                    # no submit/release ever notifies again
                    self._cv.wait(timeout=0.02)
                    continue
            for state, entry in expired:
                self._resolve(
                    entry,
                    QueryResult.failure(
                        entry.request,
                        "expired",
                        REJECT_DEADLINE,
                        latency_ms=(self._clock() - entry.enqueued_at) * 1000.0,
                    ),
                )
            if chosen is None:
                continue
            state, entry = chosen
            self._run_one(state, entry)

    def _run_one(self, state: TenantState, entry: PendingRequest) -> None:
        request = entry.request
        degrade = self.shedder.should_degrade(state.spec)
        result: Optional[QueryResult] = None
        error = False
        try:
            if entry.expired(self._clock()):
                result = QueryResult.failure(request, "expired", REJECT_DEADLINE)
            elif TRACER.enabled:
                with TRACER.span(
                    "serve.request", tenant=request.tenant, expr=request.expr(),
                    degrade=degrade,
                ):
                    result = self._execute(request, entry, degrade)
            else:
                result = self._execute(request, entry, degrade)
        except Exception as exc:  # engine bug or bad query: answer, don't die
            error = True
            result = QueryResult.failure(
                request, "error", f"{type(exc).__name__}: {exc}",
                latency_ms=(self._clock() - entry.enqueued_at) * 1000.0,
            )
        finally:
            with self._cv:
                self.admission.release(state)
                if result is not None and result.ok:
                    state.served += 1
                    if result.degraded:
                        state.degraded += 1
                        self.shedder.degraded_served += 1
                    self._latency[state.spec.name].append(result.latency_ms)
                elif result is not None and result.status == "expired":
                    state.expired += 1
                elif error:
                    state.errors += 1
                self._cv.notify()
        self._resolve(entry, result)

    def _execute(
        self, request: QueryRequest, entry: PendingRequest, degrade: bool
    ) -> QueryResult:
        q = self._parse(request)
        at = self._resolve_at(request)
        with self._engine_lock:
            if self.standing is not None:
                self._maybe_promote(q)
                if q in self.standing.shapes:
                    hit = self.standing.query(q, at=at)
                    if hit is not None:
                        self.standing_served += 1
                        return QueryResult.from_engine(
                            request, hit, source="standing",
                            latency_ms=(self._clock() - entry.enqueued_at) * 1000.0,
                        )
            run_q = q
            degraded = False
            if degrade:
                coarse = self._coarsest_step(q)
                if coarse is not None:
                    run_q = dataclasses.replace(q, step_s=coarse)
                    degraded = True
            res = self.engine.query(run_q, at=at)
            if not degraded:
                self._remember_hot(q, at, res)
        latency_ms = (self._clock() - entry.enqueued_at) * 1000.0
        if entry.expired(self._clock()):
            return QueryResult.failure(
                request, "expired", REJECT_DEADLINE, latency_ms=latency_ms
            )
        return QueryResult.from_engine(
            request, res, degraded=degraded, latency_ms=latency_ms
        )

    def _coarsest_step(self, q: MetricQuery) -> Optional[float]:
        """Coarsest rollup resolution ``q`` can degrade to, or ``None``.

        Only range queries over partial-servable aggregators degrade:
        replacing ``step_s`` with a tier resolution keeps the answer a
        *true* aggregate of the same window, just at coarser grain — the
        tier planner serves it straight from rollup rows.  Rates,
        percentiles, and instants keep exact execution.
        """
        if q.step_s is None or q.agg not in PARTIAL_AGGS:
            return None
        resolutions = self.engine.tier_resolutions()
        if not resolutions:
            return None
        coarse = max(resolutions)
        return coarse if coarse > q.step_s else None

    def _maybe_promote(self, q: MetricQuery) -> None:
        """Auto-register repeatedly seen shapes with the standing engine."""
        if not StandingQueryEngine.eligible(q) or q in self.standing.shapes:
            return
        seen = self._sightings.get(q, 0) + 1
        if len(self._sightings) > 4096:
            self._sightings.clear()
        self._sightings[q] = seen
        if seen >= self.hot_promote_after:
            self.standing.register(q)

    def _remember_hot(self, q: MetricQuery, at: float, res: EngineResult) -> None:
        key = self._hot_key(q, at)
        with self._cv:
            self._hot[key] = res
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_cache_size:
                self._hot.popitem(last=False)

    @staticmethod
    def _resolve(entry: PendingRequest, result: QueryResult) -> None:
        fut = entry.future
        if fut is not None and not fut.done():  # type: ignore[union-attr]
            fut.set_result(result)  # type: ignore[union-attr]

    # --------------------------------------------------------------- readout
    def p99_ms(self, tenant: Optional[str] = None) -> float:
        with self._cv:
            if tenant is not None:
                return _p99(self._latency.get(tenant, deque()))
            pooled: Deque[float] = deque()
            for ring in self._latency.values():
                pooled.extend(ring)
            return _p99(pooled)

    def stats(self) -> Dict[str, object]:
        """Flat serving totals plus one nested mapping per tenant.

        Shaped for ``absorb_stats(METRICS, fd.stats(), "serve")``: flat
        keys land as ``serve.<key>``, nested tenant dicts as
        ``serve.tenant_<name>.<key>`` — admitted/shed/degraded/queue
        depth/p99 per tenant, as the taxonomy requires.
        """
        with self._cv:
            out: Dict[str, object] = dict(self.admission.stats())
            out["level"] = float(self.shedder.level)
            out["shed_transitions"] = float(self.shedder.transitions)
            out["degraded_served"] = float(self.shedder.degraded_served)
            out["shed_rejections"] = float(self.shedder.shed_rejections)
            out["hot_hits"] = float(self.hot_hits)
            out["hot_size"] = float(len(self._hot))
            out["standing_served"] = float(self.standing_served)
            out["rejected_unknown"] = float(self.rejected_unknown)
            out["workers"] = float(len(self._threads))
            pooled: Deque[float] = deque()
            for ring in self._latency.values():
                pooled.extend(ring)
            out["p99_ms"] = _p99(pooled)
            for state in self.admission.tenants():
                tstats = state.stats()
                tstats["p99_ms"] = _p99(self._latency[state.spec.name])
                tstats["priority"] = float(state.spec.priority)
                out[f"tenant_{state.spec.name}"] = tstats
            return out
