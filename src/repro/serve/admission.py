"""Per-tenant admission control: token buckets, bounded queues, deadlines.

The :class:`AdmissionController` is the front door's gatekeeper.  Each
tenant gets

* a **token bucket** refilled at its ``qps`` quota (burst-capped), so a
  greedy tenant's excess requests bounce with 429-style ``quota``
  rejections instead of swamping the queue;
* a **bounded admission queue** — requests that pass the bucket wait
  here for a serving slot; when it is full, new requests bounce with
  ``queue_full`` (the queue *is* the backpressure signal the load
  shedder reads);
* an **in-flight cap** — at most ``max_inflight`` of the tenant's
  queries execute concurrently, so one tenant cannot occupy every
  serving worker.

Scheduling is deadline-aware round-robin: :meth:`next_ready` rotates
through tenants (fair across them regardless of per-tenant arrival
rate — this is what the quota-isolation gate leans on), skips tenants
at their in-flight cap, and expires queue entries whose wall-clock
deadline passed instead of wasting execution on answers nobody can use.

The controller is clock-agnostic (every method takes ``now`` in
seconds) and does no locking of its own — the front door serializes
access under its scheduler lock; unit tests drive it with a fake clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.serve.model import (
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    QueryRequest,
    TenantSpec,
)

#: admission decisions
ADMIT = "admit"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capped at ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last: Optional[float] = None

    def refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        self.refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class PendingRequest:
    """One admitted-but-not-yet-executing queue entry."""

    request: QueryRequest
    enqueued_at: float
    #: absolute wall deadline (``enqueued_at + deadline``), or ``None``
    expires_at: Optional[float]
    #: resolved by the front door when the request completes; the
    #: controller never touches it (kept generic so unit tests can pass
    #: anything)
    future: object = None

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


@dataclass
class TenantState:
    """Mutable admission state + accounting for one tenant."""

    spec: TenantSpec
    bucket: TokenBucket
    queue: Deque[PendingRequest] = field(default_factory=deque)
    inflight: int = 0
    # -- accounting (all monotonic) --------------------------------------
    submitted: int = 0
    admitted: int = 0
    rejected_quota: int = 0
    rejected_queue_full: int = 0
    shed: int = 0
    expired: int = 0
    served: int = 0
    degraded: int = 0
    errors: int = 0

    def stats(self) -> Dict[str, float]:
        return {
            "submitted": float(self.submitted),
            "admitted": float(self.admitted),
            "rejected_quota": float(self.rejected_quota),
            "rejected_queue_full": float(self.rejected_queue_full),
            "shed": float(self.shed),
            "expired": float(self.expired),
            "served": float(self.served),
            "degraded": float(self.degraded),
            "errors": float(self.errors),
            "queue_depth": float(len(self.queue)),
            "inflight": float(self.inflight),
        }


class AdmissionController:
    """Token-bucket quotas + bounded queues + fair deadline-aware dispatch."""

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantState] = {}
        #: round-robin cursor over the tenant order
        self._rr = 0

    # ------------------------------------------------------------- tenants
    def add_tenant(self, spec: TenantSpec) -> TenantState:
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        state = TenantState(spec, TokenBucket(spec.qps, spec.bucket_burst))
        self._tenants[spec.name] = state
        return state

    def tenant(self, name: str) -> Optional[TenantState]:
        return self._tenants.get(name)

    def tenants(self) -> List[TenantState]:
        return list(self._tenants.values())

    def min_priority(self) -> Optional[int]:
        """The lowest (first-shed) priority class currently registered."""
        if not self._tenants:
            return None
        return min(s.spec.priority for s in self._tenants.values())

    # ----------------------------------------------------------- admission
    def try_admit(self, state: TenantState, now: float) -> str:
        """Bucket + queue check for one arriving request.

        Returns :data:`ADMIT` (caller must :meth:`enqueue`), or a
        rejection reason.  Accounting for the reject paths happens here;
        ``admitted`` is counted by :meth:`enqueue` so callers cannot
        admit without queuing.
        """
        state.submitted += 1
        if not state.bucket.try_take(now):
            state.rejected_quota += 1
            return REJECT_QUOTA
        if len(state.queue) >= state.spec.queue_depth:
            state.rejected_queue_full += 1
            return REJECT_QUEUE_FULL
        return ADMIT

    def enqueue(self, state: TenantState, pending: PendingRequest) -> None:
        state.queue.append(pending)
        state.admitted += 1

    # ------------------------------------------------------------ dispatch
    def next_ready(
        self, now: float
    ) -> Tuple[Optional[Tuple[TenantState, PendingRequest]], List[Tuple[TenantState, PendingRequest]]]:
        """The next executable entry, plus every entry that expired.

        Rotates the round-robin cursor across tenants so back-to-back
        calls interleave tenants fairly; a tenant at its in-flight cap
        is skipped (its queue ages, and deadline expiry — not this
        scheduler — bounds how long).  The chosen entry's tenant has its
        ``inflight`` incremented; the caller must :meth:`release` it.
        """
        expired: List[Tuple[TenantState, PendingRequest]] = []
        states = list(self._tenants.values())
        n = len(states)
        chosen: Optional[Tuple[TenantState, PendingRequest]] = None
        for off in range(n):
            state = states[(self._rr + off) % n]
            # expiry sweep happens even for capped tenants: their queued
            # entries must still time out on schedule
            while state.queue and state.queue[0].expired(now):
                entry = state.queue.popleft()
                state.expired += 1
                expired.append((state, entry))
            if chosen is None and state.queue and state.inflight < state.spec.max_inflight:
                chosen = (state, state.queue.popleft())
                state.inflight += 1
                self._rr = (self._rr + off + 1) % n
        return chosen, expired

    def release(self, state: TenantState) -> None:
        state.inflight -= 1

    # ------------------------------------------------------------ pressure
    def pressure(self) -> float:
        """Queue-fill fraction in [0, 1] — the load shedder's input.

        The *maximum* per-tenant fill, not the mean: one saturated
        tenant queue is a pressure event even when others idle (it is
        exactly the tenant the degrade ladder should act on).
        """
        worst = 0.0
        for state in self._tenants.values():
            fill = len(state.queue) / state.spec.queue_depth
            if fill > worst:
                worst = fill
        return min(worst, 1.0)

    def queued_total(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    def drain(self) -> List[Tuple[TenantState, PendingRequest]]:
        """Pop every queued entry (front-door shutdown path)."""
        out: List[Tuple[TenantState, PendingRequest]] = []
        for state in self._tenants.values():
            while state.queue:
                out.append((state, state.queue.popleft()))
        return out

    # ------------------------------------------------------------- readout
    def stats(self) -> Dict[str, float]:
        totals = {
            "tenants": float(len(self._tenants)),
            "queued": float(self.queued_total()),
            "pressure": self.pressure(),
        }
        for key in (
            "submitted", "admitted", "rejected_quota", "rejected_queue_full",
            "shed", "expired", "served", "degraded", "errors",
        ):
            totals[key] = float(sum(getattr(s, key) for s in self._tenants.values()))
        return totals
