"""Typed request/response model for the serving boundary.

Everything crossing the front door is a :class:`QueryRequest` in and a
:class:`QueryResult` out — never a bare engine tuple.  The engine
internals (:class:`repro.query.engine.QueryResult` and its frozen
arrays) stay unchanged and bit-identical; this module only re-shapes the
*public* boundary so responses carry the serving metadata operators
need: which tenant asked, which deadline applied, where the answer came
from (``standing`` / ``cache`` / ``rollup:<res>s`` / ``raw``), and
whether pressure degraded it to a coarser rollup tier.

Status taxonomy (HTTP-flavored, since the front door is the proxy for a
production serving API):

==============  =====================================================
``ok``          answered; ``degraded`` says whether exactly
``rejected``    never admitted — ``reason`` is ``quota`` (token
                bucket empty), ``queue_full`` (bounded admission
                queue at capacity), or ``shed`` (load shedder
                dropped the tenant's priority class) — all 429-style
``expired``     admitted but its deadline passed while queued or
                before execution finished (504-style)
``error``       the engine raised; ``reason`` carries the message
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.query.engine import QueryResult as EngineResult
from repro.query.engine import ResultSeries
from repro.query.model import MetricQuery

#: statuses a response can carry
STATUSES = ("ok", "rejected", "expired", "error")

#: rejection reasons (the ``reason`` field of a ``rejected`` response)
REJECT_QUOTA = "quota"
REJECT_QUEUE_FULL = "queue_full"
REJECT_SHED = "shed"
REJECT_DEADLINE = "deadline"
REJECT_UNKNOWN_TENANT = "unknown_tenant"


@dataclass(frozen=True)
class TenantSpec:
    """Admission contract for one named tenant.

    ``qps`` and ``burst`` parameterize the token bucket (requests per
    wall-clock second; ``burst`` defaults to one second of quota),
    ``max_inflight`` caps the tenant's concurrently executing queries,
    ``queue_depth`` bounds its admission queue, and ``priority`` orders
    load shedding — the *lowest* priority class present is shed first.
    ``allow_degraded`` opts the tenant into coarser-rollup answers under
    pressure; tenants that need exact answers set it ``False`` and keep
    full execution (they shed earlier instead).
    """

    name: str
    qps: float = 100.0
    burst: Optional[float] = None
    max_inflight: int = 4
    queue_depth: int = 64
    priority: int = 1
    allow_degraded: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be positive when set")
        if self.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")

    @property
    def bucket_burst(self) -> float:
        return self.burst if self.burst is not None else max(self.qps, 1.0)


@dataclass(frozen=True)
class QueryRequest:
    """One query on behalf of a tenant, with its serving contract.

    ``query`` is an expression string or a parsed
    :class:`~repro.query.model.MetricQuery`; ``at`` is the window end in
    store time (``None`` → the front door's current default, usually
    the simulation clock); ``deadline_ms`` is a *wall-clock* budget from
    submission — expire rather than answer late; ``priority`` overrides
    the tenant's shed priority for this request only.
    """

    query: Union[str, MetricQuery]
    tenant: str = "default"
    at: Optional[float] = None
    deadline_ms: Optional[float] = None
    priority: Optional[int] = None

    def expr(self) -> str:
        return self.query if isinstance(self.query, str) else self.query.to_expr()


@dataclass(frozen=True)
class QueryResult:
    """The serving-boundary response (wraps, never re-shapes, engine output).

    ``series`` aliases the engine result's frozen arrays — a non-degraded
    ``ok`` response is bit-identical to direct engine execution.
    ``source`` tells where the answer came from (``standing``, ``cache``,
    ``raw``, ``rollup:<res>s``); ``degraded`` marks answers the load
    shedder downgraded to a coarser rollup tier than requested.
    """

    request: QueryRequest
    status: str
    series: Tuple[ResultSeries, ...] = ()
    t0: float = 0.0
    t1: float = 0.0
    source: str = ""
    degraded: bool = False
    reason: Optional[str] = None
    tenant: str = "default"
    latency_ms: float = 0.0
    engine_result: Optional[EngineResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}; choose from {STATUSES}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rejected(self) -> bool:
        return self.status in ("rejected", "expired")

    def scalar(self) -> Optional[float]:
        """Single value of a one-series instant answer (None when empty)."""
        if self.engine_result is None:
            return None
        return self.engine_result.scalar()

    @classmethod
    def from_engine(
        cls,
        request: QueryRequest,
        result: EngineResult,
        *,
        source: Optional[str] = None,
        degraded: bool = False,
        latency_ms: float = 0.0,
    ) -> "QueryResult":
        return cls(
            request=request,
            status="ok",
            series=result.series,
            t0=result.t0,
            t1=result.t1,
            source=source if source is not None else result.source,
            degraded=degraded,
            tenant=request.tenant,
            latency_ms=latency_ms,
            engine_result=result,
        )

    @classmethod
    def failure(
        cls,
        request: QueryRequest,
        status: str,
        reason: str,
        *,
        latency_ms: float = 0.0,
    ) -> "QueryResult":
        return cls(
            request=request,
            status=status,
            reason=reason,
            tenant=request.tenant,
            latency_ms=latency_ms,
        )
