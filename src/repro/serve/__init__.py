"""Multi-tenant query serving: the front door, admission, shedding.

Public surface of the serving tentpole (consumed through
:mod:`repro.api` by external callers):

* :class:`~repro.serve.model.TenantSpec`,
  :class:`~repro.serve.model.QueryRequest`,
  :class:`~repro.serve.model.QueryResult` — the typed boundary.
* :class:`~repro.serve.frontdoor.QueryFrontDoor` — admission + fast
  paths + worker execution over any engine shape.
* :class:`~repro.serve.admission.AdmissionController` /
  :class:`~repro.serve.shed.LoadShedder` — the policy pieces, importable
  for tests and tuning.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.frontdoor import QueryFrontDoor
from repro.serve.model import QueryRequest, QueryResult, TenantSpec
from repro.serve.shed import LoadShedder, ShedConfig

__all__ = [
    "AdmissionController",
    "LoadShedder",
    "QueryFrontDoor",
    "QueryRequest",
    "QueryResult",
    "ShedConfig",
    "TenantSpec",
    "TokenBucket",
]
