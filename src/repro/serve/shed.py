"""Pressure-graded load shedding for the query front door.

The shedder turns the admission controller's queue-fill ``pressure``
reading into a three-step degradation ladder — the serving analogue of
the ingest pipeline's adaptive commit interval:

=====  ==============  ====================================================
level  name            behaviour
=====  ==============  ====================================================
0      ``normal``      full execution; standing/cache fast paths are
                       opportunistic accelerations only
1      ``degrade``     tenants with ``allow_degraded`` get answers
                       downgraded to the coarsest rollup tier (marked
                       ``degraded=True``, ``source="rollup:<res>s"``);
                       exact-only tenants keep full execution
2      ``shed``        additionally, arriving requests from the lowest
                       priority class present are rejected outright with
                       429-style ``shed`` responses before they touch the
                       bucket or queue
=====  ==============  ====================================================

Hysteresis: the level *enters* at ``degrade_pressure``/``shed_pressure``
and *exits* a notch lower (``hysteresis`` below the threshold), so a
queue oscillating around the boundary does not flap between exact and
degraded answers on every request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.serve.model import TenantSpec

#: shed levels
NORMAL = 0
DEGRADE = 1
SHED = 2

_LEVEL_NAMES = {NORMAL: "normal", DEGRADE: "degrade", SHED: "shed"}


@dataclass(frozen=True)
class ShedConfig:
    """Thresholds of the degradation ladder (fractions of queue fill)."""

    degrade_pressure: float = 0.5
    shed_pressure: float = 0.85
    hysteresis: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.degrade_pressure <= 1.0:
            raise ValueError("degrade_pressure must be in (0, 1]")
        if not self.degrade_pressure <= self.shed_pressure <= 1.0:
            raise ValueError("shed_pressure must be in [degrade_pressure, 1]")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")


class LoadShedder:
    """Maps pressure to a shed level and decides who gets degraded/shed."""

    def __init__(self, config: Optional[ShedConfig] = None) -> None:
        self.config = config or ShedConfig()
        self._level = NORMAL
        # -- accounting ---------------------------------------------------
        self.transitions = 0
        self.degraded_served = 0
        self.shed_rejections = 0

    # -------------------------------------------------------------- level
    @property
    def level(self) -> int:
        return self._level

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES[self._level]

    def observe(self, pressure: float) -> int:
        """Fold one pressure reading into the ladder; returns the level."""
        cfg = self.config
        level = self._level
        if level < SHED and pressure >= cfg.shed_pressure:
            level = SHED
        elif level < DEGRADE and pressure >= cfg.degrade_pressure:
            level = DEGRADE
        elif level == SHED and pressure < cfg.shed_pressure - cfg.hysteresis:
            level = DEGRADE if pressure >= cfg.degrade_pressure else NORMAL
        elif level == DEGRADE and pressure < cfg.degrade_pressure - cfg.hysteresis:
            level = NORMAL
        if level != self._level:
            self.transitions += 1
            self._level = level
        return self._level

    # ----------------------------------------------------------- decisions
    def should_degrade(self, spec: TenantSpec) -> bool:
        """Downgrade this tenant's answers to the coarsest rollup tier?"""
        return self._level >= DEGRADE and spec.allow_degraded

    def should_shed(self, spec: TenantSpec, min_priority: Optional[int]) -> bool:
        """Reject this tenant's arriving request outright?

        Only the *lowest* priority class present is shed; higher classes
        keep (possibly degraded) service.  When every tenant shares one
        priority, everyone is in the lowest class and all shed together —
        that is intentional: uniform priorities mean nobody volunteered
        to be more important.
        """
        return self.should_shed_priority(spec.priority, min_priority)

    def should_shed_priority(self, priority: int, min_priority: Optional[int]) -> bool:
        """Same decision against an effective (request-overridden) priority."""
        return (
            self._level >= SHED
            and min_priority is not None
            and priority <= min_priority
        )

    # ------------------------------------------------------------- readout
    def stats(self) -> Dict[str, float]:
        return {
            "level": float(self._level),
            "transitions": float(self.transitions),
            "degraded_served": float(self.degraded_served),
            "shed_rejections": float(self.shed_rejections),
        }
