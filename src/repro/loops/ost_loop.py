"""The OST use case (Section III case 3).

Goal: from "continuous evaluation of storage back-end write
performance", have the application "close files using a poorly
performing OST ... then reopen them using different OSTs, or explicitly
request to avoid that OST".

Detection is relative: an OST whose recent achieved bandwidth falls
below ``slow_fraction`` of the fleet median is flagged.  The response
tells every affected writer to avoid the OST; recovery (bandwidth back
above ``recover_fraction`` of the median) clears the avoidance for new
placements.

The case runs under the :class:`~repro.core.runtime.LoopRuntime` from
:func:`ost_case_spec`: the Monitor phase is a single declarative query
(``last(ost_write_bw_mbps) group by (ost)``) over series published by
the :class:`~repro.loops.bridges.FilesystemTelemetryBridge`, replacing
the legacy direct ``fs.ost_bandwidth_mbps()`` reads
(:class:`OstBandwidthMonitor`, kept for comparison and component
interchange).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.runtime import LoopRuntime, LoopSpec, MonitorQuery
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.loops.bridges import FilesystemTelemetryBridge
from repro.sim.engine import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem


@dataclass
class OstCaseConfig:
    """Detection thresholds for the OST loop."""

    slow_fraction: float = 0.5  # flagged below this fraction of the median
    min_observations: int = 3  # EWMA warm-up per OST
    loop_period_s: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.slow_fraction < 1.0:
            raise ValueError("slow_fraction must be in (0, 1)")


class OstBandwidthMonitor(Monitor):
    """Reads per-OST achieved-bandwidth EWMAs from the filesystem."""

    name = "ost-bandwidth-monitor"

    def __init__(self, fs: ParallelFileSystem) -> None:
        self.fs = fs

    def observe(self, now: float) -> Optional[Observation]:
        values: Dict[str, float] = {}
        for ost_id in self.fs.osts:
            bw = self.fs.ost_bandwidth_mbps(ost_id)
            if not math.isnan(bw):
                values[f"bw:{ost_id}"] = bw
        if not values:
            return None
        return Observation(now, self.name, values=values)


class SlowOstAnalyzer(Analyzer):
    """Flags OSTs serving well below the fleet median."""

    name = "slow-ost-analyzer"

    def __init__(self, config: OstCaseConfig) -> None:
        self.config = config

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        bw = {
            key.split(":", 1)[1]: value
            for key, value in observation.values.items()
            if key.startswith("bw:")
        }
        symptoms = []
        metrics: Dict[str, float] = {}
        if len(bw) >= 2:
            median = float(np.median(list(bw.values())))
            metrics["median_bw"] = median
            threshold = self.config.slow_fraction * median
            for ost_id, value in sorted(bw.items()):
                metrics[f"bw:{ost_id}"] = value
                if value < threshold:
                    severity = min(1.0, 1.0 - value / max(median, 1e-9))
                    symptoms.append(
                        Symptom(
                            f"slow_ost:{ost_id}",
                            severity,
                            evidence=f"{ost_id} at {value:.0f} MB/s vs median {median:.0f} MB/s",
                        )
                    )
        return AnalysisReport(observation.time, self.name, tuple(symptoms), metrics, 1.0)


class AvoidOstPlanner(Planner):
    """Plans avoid-OST responses for writers striped over slow OSTs."""

    name = "avoid-ost-planner"

    def __init__(self, writers: Sequence[PeriodicWriter]) -> None:
        self.writers = list(writers)

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        slow = {
            s.name.split(":", 1)[1] for s in report.symptoms if s.name.startswith("slow_ost:")
        }
        if not slow:
            return Plan(report.time, self.name)
        actions = []
        for writer in self.writers:
            affected = slow.intersection(writer.file.stripe_osts)
            if not affected:
                continue
            already = knowledge.recall(f"avoiding:{writer.client_id}", frozenset())
            if affected <= already:
                continue
            actions.append(
                Action(
                    "avoid_osts",
                    writer.client_id,
                    params={},
                    rationale=f"{writer.client_id} striped over slow OST(s) {sorted(affected)}",
                )
            )
            knowledge.remember(f"avoiding:{writer.client_id}", frozenset(already | affected))
            knowledge.remember(f"avoid_set:{writer.client_id}", sorted(slow))
        rationale = "; ".join(a.rationale for a in actions)
        return Plan(report.time, self.name, tuple(actions), 1.0, rationale)


class WriterExecutor(Executor):
    """Delivers avoid-OST requests to the application-side writers."""

    name = "writer-executor"

    def __init__(self, engine: Engine, writers: Sequence[PeriodicWriter]) -> None:
        self.engine = engine
        self.writers = {w.client_id: w for w in writers}

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        now = self.engine.now
        results = []
        for action in plan.actions:
            writer = self.writers.get(action.target)
            if writer is None:
                results.append(ExecutionResult(action, now, honored=False, detail="unknown writer"))
                continue
            avoid = set(knowledge.recall(f"avoid_set:{action.target}", []))
            writer.avoid_osts(avoid)
            results.append(
                ExecutionResult(
                    action, now, honored=True, detail=f"reopening without {sorted(avoid)}"
                )
            )
        return results


def ost_case_spec(
    engine: Engine,
    fs: ParallelFileSystem,
    writers: Sequence[PeriodicWriter],
    *,
    config: Optional[OstCaseConfig] = None,
    name: str = "ost-case",
    priority: int = 0,
) -> LoopSpec:
    """Declarative spec for the OST case (monitor = one grouped query)."""
    config = config if config is not None else OstCaseConfig()

    def build(now: float, inputs) -> Optional[Observation]:
        result = inputs["bw"]
        values: Dict[str, float] = {
            f"bw:{series.label('ost')}": float(series.values[-1])
            for series in result.series
            if series.values.size
        }
        if not values:
            return None
        return Observation(now, "ost-bandwidth-monitor", values=values)

    return LoopSpec(
        name=name,
        priority=priority,
        queries=(MonitorQuery("bw", "last(ost_write_bw_mbps) group by (ost)"),),
        build_observation=build,
        analyzer_factory=lambda: SlowOstAnalyzer(config),
        planner_factory=lambda: AvoidOstPlanner(writers),
        executor_factory=lambda: WriterExecutor(engine, writers),
        period_s=config.loop_period_s,
    )


class OstCaseManager:
    """Assembled OST autonomy loop over one filesystem and its writers.

    Thin compat wrapper: builds :func:`ost_case_spec`, wires the
    filesystem telemetry bridge, and hosts the loop on a
    :class:`~repro.core.runtime.LoopRuntime` (private unless one is
    passed in).
    """

    def __init__(
        self,
        engine: Engine,
        fs: ParallelFileSystem,
        writers: Sequence[PeriodicWriter],
        *,
        config: Optional[OstCaseConfig] = None,
        audit: Optional[AuditTrail] = None,
        runtime: Optional[LoopRuntime] = None,
        priority: int = 0,
    ) -> None:
        self.config = config if config is not None else OstCaseConfig()
        self.runtime = LoopRuntime.for_case(engine, runtime=runtime, audit=audit)
        self.bridge = FilesystemTelemetryBridge(fs, self.runtime.store)
        self.handle = self.runtime.add(
            ost_case_spec(engine, fs, writers, config=self.config, priority=priority)
        )

    def start(self) -> None:
        self.handle.start()

    def stop(self) -> None:
        self.handle.stop()

    @property
    def loop(self) -> MAPEKLoop:
        return self.handle.loop

    @property
    def failovers(self) -> int:
        return self.loop.actions_executed
