"""The I/O QoS use case (Section III case 2).

Goal: "adapt QoS parameters based on the current application performance
and system I/O load to decrease interference, reduce tail latency, and
provide more consistent results for deadline dependent workflows."

The loop protects one *deadline tenant* (a workflow whose writes must
land within a latency target) by adapting the token-bucket allocations
of best-effort tenants with an AIMD policy: when the deadline tenant's
recent latency violates its target, background allocations shrink
multiplicatively; when the system is comfortably healthy, they recover
additively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.runtime import LoopRuntime, LoopSpec
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.query.engine import QueryEngine
from repro.sim.engine import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass
class IoQosConfig:
    """Targets and AIMD parameters for the I/O-QoS loop."""

    deadline_tenant: str = "workflow"
    latency_target_s: float = 2.0
    headroom_fraction: float = 0.5  # recovery when worst <= fraction × target
    recent_window: int = 5
    #: telemetry window the monitor queries; None → recent_window × the
    #: deadline tenant's write period (≈ the last recent_window writes)
    observation_window_s: Optional[float] = None
    decrease_factor: float = 0.5
    increase_mbps: float = 50.0
    min_rate_mbps: float = 50.0
    max_rate_mbps: float = 2000.0
    loop_period_s: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.latency_target_s <= 0:
            raise ValueError("latency_target_s must be positive")
        if not 0.0 < self.headroom_fraction < 1.0:
            raise ValueError("headroom_fraction must be in (0, 1)")


class IoLoadMonitor(Monitor):
    """Observes the deadline tenant's recent latency and system I/O load.

    The monitor is a small telemetry pipeline of its own: completed
    transfers are published into a time-series store as
    ``io_write_latency_s{client=...}`` (plus ``fs_load_fraction``), and
    the observation is then *queried back* through the query engine —
    the same serving path dashboards use — instead of peeking at writer
    internals.
    """

    name = "io-load-monitor"

    def __init__(
        self,
        fs: ParallelFileSystem,
        writers: Sequence[PeriodicWriter],
        config: IoQosConfig,
        *,
        query_engine: Optional[QueryEngine] = None,
    ) -> None:
        self.fs = fs
        self.writers = {w.client_id: w for w in writers}
        self.config = config
        # Instant queries end at a fresh `now` each tick: caching would
        # serve sub-quantum stale observations, so the default is uncached.
        self.query_engine = (
            query_engine
            if query_engine is not None
            else QueryEngine(TimeSeriesStore(), enable_cache=False)
        )
        self.store = self.query_engine.store
        self._ingested = {w.client_id: 0 for w in writers}
        self._load_key = SeriesKey.of("fs_load_fraction")

    def _window_s(self, deadline_writer: PeriodicWriter) -> float:
        if self.config.observation_window_s is not None:
            return self.config.observation_window_s
        return self.config.recent_window * deadline_writer.period_s

    def _ingest(self, now: float) -> None:
        """Publish transfers completed since the last observation."""
        for client_id, writer in self.writers.items():
            start = self._ingested[client_id]
            for transfer in writer.transfers[start:]:
                self.store.insert(
                    SeriesKey.of("io_write_latency_s", client=client_id),
                    transfer.t_end,
                    transfer.duration,
                )
            self._ingested[client_id] = len(writer.transfers)
        self.store.insert(self._load_key, now, self.fs.load_fraction())

    def observe(self, now: float) -> Optional[Observation]:
        deadline_writer = self.writers.get(self.config.deadline_tenant)
        if deadline_writer is None or not deadline_writer.transfers:
            return None
        self._ingest(now)
        window = self._window_s(deadline_writer)
        # `group by (client)` keeps selection inside the output labels, so
        # a shared QueryHub can fuse these reads across tenant loops
        selector = f'io_write_latency_s{{client="{self.config.deadline_tenant}"}}[{window:g}s]'
        suffix = " group by (client)"
        worst = self.query_engine.scalar(f"max({selector}){suffix}", at=now)
        mean = self.query_engine.scalar(f"mean({selector}){suffix}", at=now)
        count = self.query_engine.scalar(f"count({selector}){suffix}", at=now)
        if worst is None or mean is None:
            # stalled tenant: no transfer landed inside the window — fall
            # back to its most recent completions so the loop still reacts
            recent = deadline_writer.transfers[-self.config.recent_window :]
            latencies = [t.duration for t in recent]
            worst, mean, count = float(np.max(latencies)), float(np.mean(latencies)), len(recent)
        fs_load = self.query_engine.scalar(f"last(fs_load_fraction[{window:g}s])", at=now)
        values = {
            "deadline_p_latency": float(worst),
            "deadline_mean_latency": float(mean),
            "fs_load": float(fs_load) if fs_load is not None else self.fs.load_fraction(),
        }
        return Observation(now, self.name, values=values, context={"recent_n": int(count)})


class QosAnalyzer(Analyzer):
    """Diagnoses latency-target violations and spare headroom."""

    name = "qos-analyzer"

    def __init__(self, config: IoQosConfig) -> None:
        self.config = config

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        worst = observation.values["deadline_p_latency"]
        target = self.config.latency_target_s
        symptoms = []
        if worst > target:
            severity = min(1.0, (worst - target) / target)
            symptoms.append(
                Symptom(
                    "latency_violation",
                    severity,
                    evidence=f"worst recent latency {worst:.2f}s > target {target:.2f}s",
                )
            )
        elif worst <= self.config.headroom_fraction * target:
            symptoms.append(
                Symptom("headroom", 0.1, evidence=f"worst latency {worst:.2f}s well under target")
            )
        return AnalysisReport(
            observation.time,
            self.name,
            tuple(symptoms),
            metrics={"worst_latency": worst, "fs_load": observation.values["fs_load"]},
            confidence=min(1.0, observation.context.get("recent_n", 0) / self.config.recent_window),
        )


class AimdQosPlanner(Planner):
    """AIMD over background tenants' sustained rates."""

    name = "aimd-qos-planner"

    def __init__(self, config: IoQosConfig, background_tenants: Sequence[str]) -> None:
        self.config = config
        self.background = list(background_tenants)

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        cfg = self.config
        actions = []
        if report.has_symptom("latency_violation"):
            for tenant in self.background:
                current = knowledge.recall(f"rate:{tenant}", cfg.max_rate_mbps)
                new_rate = max(cfg.min_rate_mbps, current * cfg.decrease_factor)
                if new_rate < current:
                    actions.append(
                        Action(
                            "set_qos_rate",
                            tenant,
                            params={"rate_mbps": new_rate},
                            rationale=f"violation: throttle {tenant} {current:.0f}→{new_rate:.0f} MB/s",
                        )
                    )
        elif report.has_symptom("headroom"):
            for tenant in self.background:
                current = knowledge.recall(f"rate:{tenant}", cfg.max_rate_mbps)
                new_rate = min(cfg.max_rate_mbps, current + cfg.increase_mbps)
                if new_rate > current:
                    actions.append(
                        Action(
                            "set_qos_rate",
                            tenant,
                            params={"rate_mbps": new_rate},
                            rationale=f"headroom: restore {tenant} {current:.0f}→{new_rate:.0f} MB/s",
                        )
                    )
        rationale = "; ".join(a.rationale for a in actions)
        return Plan(report.time, self.name, tuple(actions), report.confidence, rationale)


class QosExecutor(Executor):
    """Applies allocation changes through the filesystem's QoS manager."""

    name = "qos-executor"

    def __init__(self, fs: ParallelFileSystem, *, burst_factor_s: float = 2.0) -> None:
        self.fs = fs
        self.burst_factor_s = burst_factor_s

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        now = self.fs.engine.now
        results = []
        for action in plan.actions:
            if action.kind != "set_qos_rate":
                results.append(ExecutionResult(action, now, honored=False, detail="unknown kind"))
                continue
            rate = action.param("rate_mbps")
            burst = rate * self.burst_factor_s
            self.fs.qos.set_allocation(action.target, rate, burst, now=now)
            knowledge.remember(f"rate:{action.target}", rate)
            results.append(
                ExecutionResult(
                    action, now, honored=True, detail=f"rate={rate:.0f} MB/s burst={burst:.0f} MB"
                )
            )
        return results


def io_qos_spec(
    fs: ParallelFileSystem,
    writers: Sequence[PeriodicWriter],
    *,
    config: Optional[IoQosConfig] = None,
    name: str = "io-qos-case",
    priority: int = 0,
) -> LoopSpec:
    """Declarative spec for the I/O-QoS case.

    The monitor's query set is dynamic (windows track the deadline
    tenant's write period), so the spec wires a ``monitor_factory`` that
    reads through the runtime's shared :class:`~repro.core.runtime.QueryHub`
    instead of a static query list.
    """
    config = config if config is not None else IoQosConfig()
    background = [w.client_id for w in writers if w.client_id != config.deadline_tenant]
    return LoopSpec(
        name=name,
        priority=priority,
        monitor_factory=lambda runtime: IoLoadMonitor(
            fs, writers, config, query_engine=runtime.hub
        ),
        analyzer_factory=lambda: QosAnalyzer(config),
        planner_factory=lambda: AimdQosPlanner(config, background),
        executor_factory=lambda: QosExecutor(fs),
        knowledge_factory=KnowledgeBase,
        period_s=config.loop_period_s,
    )


class IoQosCaseManager:
    """Assembled I/O-QoS autonomy loop over a filesystem and its tenants.

    Thin compat wrapper hosting :func:`io_qos_spec` on a
    :class:`~repro.core.runtime.LoopRuntime`; the monitor publishes and
    queries through the runtime's shared store/hub.
    """

    def __init__(
        self,
        engine: Engine,
        fs: ParallelFileSystem,
        writers: Sequence[PeriodicWriter],
        *,
        config: Optional[IoQosConfig] = None,
        audit: Optional[AuditTrail] = None,
        query_engine: Optional[QueryEngine] = None,
        runtime: Optional[LoopRuntime] = None,
        priority: int = 0,
    ) -> None:
        self.config = config if config is not None else IoQosConfig()
        self.runtime = LoopRuntime.for_case(
            engine, runtime=runtime, query_engine=query_engine, audit=audit
        )
        self.handle = self.runtime.add(
            io_qos_spec(fs, writers, config=self.config, priority=priority)
        )
        self.monitor = self.handle.loop.monitor
        self.query_engine = self.runtime.query_engine

    def start(self) -> None:
        self.handle.start()

    def stop(self) -> None:
        self.handle.stop()

    @property
    def loop(self) -> MAPEKLoop:
        return self.handle.loop

    @property
    def adjustments(self) -> int:
        return self.loop.actions_executed


#: Back-compat alias (pre-runtime name).
IoQosManagerLoop = IoQosCaseManager
