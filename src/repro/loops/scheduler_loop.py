"""The Scheduler use case — the paper's initial autonomy loop (Fig. 3).

One classical MAPE-K loop per running application:

* **Monitor** — read new progress markers from the side channel
  (``rank 0 drops time-steps periodically to a file or memory region``).
* **Analyze** — feed the markers to a TTC forecaster; compare the
  predicted completion against the job's current walltime deadline,
  using run-history priors when the marker stream is still short.
* **Plan** — when completion is predicted to overrun the deadline,
  request an extension sized from the forecast's upper bound plus a
  safety margin; when extensions are exhausted/denied, fall back to
  signalling a checkpoint (the paper's extensibility path).
* **Execute** — call the scheduler's extension hook, which may deny or
  shorten; record whether the request was honored.
* **Assess/Knowledge** — at job end, score each extension against the
  actual overrun and store a run record for future priors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analytics.forecast import Forecaster, make_forecaster
from repro.cluster.job import Job, JobState
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.confidence import combined_confidence
from repro.core.guards import ActionBudgetGuard, ConfidenceGuard
from repro.core.humanloop import HumanOnTheLoopNotifier
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.runtime import LoopHandle, LoopRuntime, LoopSpec, MonitorQuery
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.analytics.similarity import JobRecord
from repro.loops.bridges import SchedulerTelemetryBridge
from repro.sim.engine import Engine
from repro.telemetry.markers import ProgressMarker, ProgressMarkerChannel


class JobProgressMonitor(Monitor):
    """Reads new progress markers for one job from the marker channel."""

    def __init__(self, channel: ProgressMarkerChannel, scheduler: Scheduler, job_id: str) -> None:
        self.channel = channel
        self.scheduler = scheduler
        self.job_id = job_id
        self.name = f"progress-monitor-{job_id}"
        self._cursor = -1.0

    def observe(self, now: float) -> Optional[Observation]:
        job = self.scheduler.jobs.get(self.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return None
        new_markers = self.channel.read_since(self.job_id, self._cursor)
        if new_markers:
            self._cursor = new_markers[-1].time
        last = self.channel.last(self.job_id)
        values: Dict[str, float] = {
            "deadline": job.deadline,
            "time_limit_s": job.time_limit_s,
            "start_time": job.start_time,
        }
        if last is not None:
            values["last_step"] = last.step
            values["last_marker_time"] = last.time
            if last.total_steps:
                values["total_steps"] = last.total_steps
        return Observation(
            now,
            self.name,
            values=values,
            context={"new_markers": new_markers, "job_id": self.job_id},
        )


class ProgressAnalyzer(Analyzer):
    """Forecasts time-to-completion and diagnoses predicted overruns."""

    def __init__(self, forecaster: Optional[Forecaster] = None, *, forecaster_name: str = "ols") -> None:
        self.forecaster = forecaster if forecaster is not None else make_forecaster(forecaster_name)
        self.name = f"progress-analyzer-{self.forecaster.name}"

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        for marker in observation.context.get("new_markers", ()):
            self.forecaster.update(marker.time, marker.step)
        now = observation.time
        deadline = observation.values["deadline"]
        total_steps = observation.values.get("total_steps")
        metrics: Dict[str, float] = {"deadline": deadline}
        symptoms: List[Symptom] = []
        confidence = 0.0
        if total_steps is not None:
            result = self.forecaster.forecast(now, total_steps)
            if result is not None:
                metrics.update(
                    eta=result.eta,
                    eta_lo=result.eta_lo,
                    eta_hi=result.eta_hi,
                    rate=result.rate,
                    n_markers=float(result.n_markers),
                )
                horizon = max(1.0, deadline - observation.values["start_time"])
                confidence = combined_confidence(result, knowledge, horizon)
                if result.eta_hi > deadline:
                    overrun = result.eta_hi - deadline
                    severity = min(1.0, overrun / max(1.0, 0.25 * horizon))
                    symptoms.append(
                        Symptom(
                            "predicted_overrun",
                            severity,
                            evidence=f"eta_hi={result.eta_hi:.0f}s beyond deadline={deadline:.0f}s "
                            f"by {overrun:.0f}s",
                        )
                    )
        else:
            # no totals in markers: fall back to run-history prior
            prior = knowledge.recall("runtime_prior")
            if prior is not None:
                metrics["prior_runtime_s"] = prior
        return AnalysisReport(now, self.name, tuple(symptoms), metrics, confidence)


@dataclass
class ExtensionPlanner(Planner):
    """Plans walltime extensions, falling back to checkpoint requests.

    ``safety_margin_s`` pads the request beyond the forecast upper
    bound; ``act_within_s`` avoids premature action when the deadline is
    still far (late-binding keeps forecasts sharp and budgets unspent).
    """

    safety_margin_s: float = 300.0
    act_within_s: float = 1800.0
    min_extension_s: float = 60.0
    max_extension_s: float = 14400.0
    checkpoint_fallback: bool = True
    name: str = "extension-planner"

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        overrun = report.symptom("predicted_overrun")
        if overrun is None:
            return Plan(report.time, self.name, confidence=report.confidence)
        deadline = report.metrics["deadline"]
        if deadline - report.time > self.act_within_s:
            # too early: re-evaluate closer to the deadline
            return Plan(report.time, self.name, confidence=report.confidence)
        job_id = str(knowledge.recall("job_id"))
        if knowledge.recall("extensions_blocked", False):
            if self.checkpoint_fallback and knowledge.recall("supports_checkpoint", True):
                action = Action(
                    "signal_checkpoint",
                    job_id,
                    rationale="extensions exhausted; requesting checkpoint before kill",
                )
                return Plan(
                    report.time, self.name, (action,), report.confidence, action.rationale
                )
            return Plan(report.time, self.name, confidence=report.confidence)
        needed = report.metrics["eta_hi"] - deadline + self.safety_margin_s
        extra = float(min(self.max_extension_s, max(self.min_extension_s, needed)))
        action = Action(
            "request_extension",
            job_id,
            params={"extra_s": extra},
            rationale=f"forecast overrun {overrun.evidence}; requesting +{extra:.0f}s",
        )
        return Plan(report.time, self.name, (action,), report.confidence, action.rationale)


class SchedulerExecutor(Executor):
    """Executes extension/checkpoint actions against the scheduler.

    Denials are remembered in Knowledge (``extensions_blocked``) so the
    planner can pivot to the checkpoint fallback — the loop "needs
    awareness of whether or not the request was honored".
    """

    name = "scheduler-executor"

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        results: List[ExecutionResult] = []
        now = self.scheduler.engine.now
        for action in plan.actions:
            if action.kind == "request_extension":
                response = self.scheduler.request_extension(
                    action.target, action.param("extra_s")
                )
                if response.denied:
                    knowledge.remember("extensions_blocked", True)
                results.append(
                    ExecutionResult(
                        action,
                        now,
                        honored=not response.denied,
                        detail=response.reason,
                        response={"granted_s": response.granted_s},
                    )
                )
            elif action.kind == "signal_checkpoint":
                ok = self.scheduler.signal_checkpoint(action.target)
                if ok:
                    knowledge.remember("checkpoint_requested", True)
                results.append(
                    ExecutionResult(
                        action, now, honored=ok, detail="checkpoint started" if ok else "no hook"
                    )
                )
            else:
                results.append(
                    ExecutionResult(action, now, honored=False, detail=f"unknown kind {action.kind}")
                )
        return results


@dataclass
class SchedulerCaseConfig:
    """Assembly options for the Scheduler case."""

    forecaster_name: str = "ols"
    loop_period_s: float = 60.0
    safety_margin_s: float = 300.0
    act_within_s: float = 1800.0
    checkpoint_fallback: bool = True
    min_confidence: float = 0.0  # 0 disables the confidence gate
    budget_max_extensions: int = 3
    budget_max_total_s: float = 7200.0
    phase_latency: PhaseLatency = field(default_factory=PhaseLatency)


def scheduler_job_spec(
    job_id: str,
    *,
    config: Optional[SchedulerCaseConfig] = None,
    knowledge: Optional[KnowledgeBase] = None,
    executor: Optional[Executor] = None,
    scheduler: Optional[Scheduler] = None,
    extra_guard_factories: Sequence = (),
    on_iteration=None,
    start_at: Optional[float] = None,
    priority: int = 0,
) -> LoopSpec:
    """Declarative per-job spec for the Scheduler case.

    The Monitor phase is five grouped instant queries over the job's
    lifecycle gauges (published by
    :class:`~repro.loops.bridges.SchedulerTelemetryBridge`) plus a
    cursor-tracked ``samples`` read of the mirrored progress-marker
    series — the paper's side channel consumed through the query layer.
    Reads are deliberately unfused: each job's loop is phase-aligned to
    its own start time, so widened gauge passes would not be shared.
    """
    cfg = config if config is not None else SchedulerCaseConfig()
    if executor is None:
        if scheduler is None:
            raise ValueError("pass either an executor or a scheduler to build one from")
        executor = SchedulerExecutor(scheduler)

    def _gauge(inputs, slot: str) -> Optional[float]:
        result = inputs[slot]
        return result.scalar() if result.series else None

    def build(now: float, inputs) -> Optional[Observation]:
        # per-monitor memory (not a spec-closure dict): the spec can be
        # instantiated again without inheriting another instance's markers
        state = inputs["_memory"]
        running = _gauge(inputs, "running")
        if running is None or running < 1.0:
            return None
        deadline = _gauge(inputs, "deadline")
        limit = _gauge(inputs, "limit")
        start = _gauge(inputs, "start")
        if deadline is None or limit is None or start is None:
            return None
        times, steps = inputs["markers"]
        new_markers = [
            ProgressMarker(job_id, float(t), float(s)) for t, s in zip(times, steps)
        ]
        if times.size:
            state["last"] = (float(times[-1]), float(steps[-1]))
        values: Dict[str, float] = {
            "deadline": deadline,
            "time_limit_s": limit,
            "start_time": start,
        }
        last = state.get("last")
        if last is not None:
            values["last_step"] = last[1]
            values["last_marker_time"] = last[0]
            total = _gauge(inputs, "total")
            if total:
                values["total_steps"] = total
        return Observation(
            now,
            f"progress-monitor-{job_id}",
            values=values,
            context={"new_markers": new_markers, "job_id": job_id},
        )

    selector = f'{{job="{job_id}"}}'
    return LoopSpec(
        name=f"sched-case-{job_id}",
        priority=priority,
        # fuse=False: per-job loops are phased to their job's start, so
        # widened reads would never be shared across loops within a tick
        queries=(
            MonitorQuery("running", f"last(job_running{selector}) group by (job)", fuse=False),
            MonitorQuery("deadline", f"last(job_deadline_s{selector}) group by (job)", fuse=False),
            MonitorQuery("limit", f"last(job_time_limit_s{selector}) group by (job)", fuse=False),
            MonitorQuery("start", f"last(job_start_time_s{selector}) group by (job)", fuse=False),
            MonitorQuery("total", f"last(job_progress_total{selector}) group by (job)", fuse=False),
            MonitorQuery("markers", f"last(job_progress_steps{selector})", mode="samples"),
        ),
        build_observation=build,
        analyzer_factory=lambda: ProgressAnalyzer(forecaster_name=cfg.forecaster_name),
        planner_factory=lambda: ExtensionPlanner(
            safety_margin_s=cfg.safety_margin_s,
            act_within_s=cfg.act_within_s,
            checkpoint_fallback=cfg.checkpoint_fallback,
        ),
        executor_factory=lambda: executor,
        knowledge_factory=(lambda: knowledge) if knowledge is not None else None,
        guard_factories=tuple(extra_guard_factories),
        period_s=cfg.loop_period_s,
        phase_latency=cfg.phase_latency,
        start_at=start_at,
        on_iteration=on_iteration,
    )


class SchedulerCaseManager:
    """Spawns one loop per running job on the runtime; assesses at job end.

    Thin compat wrapper: each job start registers a
    :func:`scheduler_job_spec` with the hosted
    :class:`~repro.core.runtime.LoopRuntime`; job end removes it and
    scores its plans.  The marker channel is mirrored into the runtime's
    store so the monitors consume markers through the query layer.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        channel: ProgressMarkerChannel,
        *,
        config: Optional[SchedulerCaseConfig] = None,
        audit: Optional[AuditTrail] = None,
        shared_knowledge: Optional[KnowledgeBase] = None,
        executor_factory=None,
        notifier: Optional[HumanOnTheLoopNotifier] = None,
        runtime: Optional[LoopRuntime] = None,
        priority: int = 0,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.channel = channel
        self.config = config if config is not None else SchedulerCaseConfig()
        self.audit = audit
        self.shared = shared_knowledge if shared_knowledge is not None else KnowledgeBase()
        self.executor_factory = executor_factory
        self.notifier = notifier
        self.priority = priority
        self.runtime = LoopRuntime.for_case(
            engine, runtime=runtime, store=channel.mirror_store, audit=audit
        )
        if channel.mirror_store is None:
            channel.attach_mirror(self.runtime.store)
        elif channel.mirror_store is not self.runtime.store:
            # monitors read markers from the runtime's store; a foreign
            # mirror would leave them silently blind
            raise ValueError(
                "marker channel mirrors into a different store than the "
                "shared runtime queries"
            )
        self.bridge = SchedulerTelemetryBridge(scheduler, self.runtime.store)
        self.loops: Dict[str, MAPEKLoop] = {}
        self._handles: Dict[str, LoopHandle] = {}
        self.assessments: List[float] = []
        scheduler.on_job_start.append(self._job_started)
        scheduler.on_job_end.append(self._job_ended)

    # ------------------------------------------------------------ lifecycle
    def _job_started(self, job: Job) -> None:
        cfg = self.config
        knowledge = KnowledgeBase()
        knowledge.remember("job_id", job.job_id)
        knowledge.remember("supports_checkpoint", job.profile.supports_checkpoint)
        knowledge.run_history = self.shared.run_history  # shared priors
        prior = self.shared.run_history.predict_runtime(
            self._features(job), app_name=job.profile.name
        )
        if prior is not None:
            knowledge.remember("runtime_prior", prior[0])
        guard_factories = [
            lambda: ActionBudgetGuard(
                kinds={"request_extension"},
                max_actions_per_target=cfg.budget_max_extensions,
                max_amount_per_target=cfg.budget_max_total_s,
                amount_param="extra_s",
            )
        ]
        if cfg.min_confidence > 0:
            guard_factories.append(lambda: ConfidenceGuard(cfg.min_confidence))
        executor = (
            self.executor_factory(self.scheduler)
            if self.executor_factory is not None
            else SchedulerExecutor(self.scheduler)
        )
        on_iteration = None
        if self.notifier is not None:
            # human-ON-the-loop (Section IV): the loop acts autonomously
            # and the operator receives explanations asynchronously
            def on_iteration(iteration, _job_id=job.job_id):
                if iteration.acted and iteration.plan is not None:
                    self.notifier.notify(
                        self.engine.now,
                        f"sched-case-{_job_id}",
                        iteration.plan.rationale or "action executed",
                        confidence=iteration.plan.confidence,
                        honored=any(r.honored for r in iteration.results),
                    )

        spec = scheduler_job_spec(
            job.job_id,
            config=cfg,
            knowledge=knowledge,
            executor=executor,
            extra_guard_factories=guard_factories,
            on_iteration=on_iteration,
            start_at=self.engine.now + cfg.loop_period_s,
            priority=self.priority,
        )
        handle = self.runtime.add(spec, start=True)
        self._handles[job.job_id] = handle
        self.loops[job.job_id] = handle.loop

    def _job_ended(self, job: Job) -> None:
        handle = self._handles.pop(job.job_id, None)
        loop = self.loops.pop(job.job_id, None)
        if handle is None or loop is None:
            return
        self.runtime.remove(handle.spec.name)
        self._assess(job, loop.knowledge)
        self.shared.run_history.add(
            JobRecord(
                job.job_id,
                job.profile.name,
                self._features(job),
                runtime_s=job.runtime or 0.0,
                succeeded=job.state is JobState.COMPLETED,
            )
        )

    # ------------------------------------------------------------ knowledge
    @staticmethod
    def _features(job: Job) -> Dict[str, float]:
        return {
            "n_nodes": float(job.n_nodes),
            "walltime_request_s": float(job.walltime_request_s),
            "total_steps": float(job.profile.total_steps),
        }

    def _assess(self, job: Job, knowledge: KnowledgeBase) -> None:
        """Score every extension plan against what actually happened.

        A granted extension scores by how much of it was *needed*: the
        ideal grant covers the true overrun with modest headroom.  A
        rescued job (would have timed out, completed after extension)
        scores near 1; an extension on a job that timed out anyway, or
        mostly-unused padding, scores low.
        """
        now = self.engine.now
        for outcome in knowledge.unassessed_outcomes():
            granted = sum(
                r.response.get("granted_s", 0.0) for r in outcome.results if r.honored
            )
            if granted <= 0:
                # denied plans: neutral-low (the loop learned the hook's limits)
                knowledge.assess_outcome(outcome, 0.3, now)
                self.assessments.append(0.3)
                continue
            if job.state is JobState.COMPLETED:
                used = max(0.0, (job.end_time - job.start_time) - job.walltime_request_s)
                efficiency = min(1.0, used / granted) if granted > 0 else 0.0
                score = 0.5 + 0.5 * efficiency  # completion dominates
            elif job.state is JobState.TIMEOUT:
                score = 0.1  # extension spent, job still lost
            else:
                score = 0.3
            knowledge.assess_outcome(outcome, score, now)
            self.assessments.append(score)

    # ----------------------------------------------------------------- stats
    def active_loops(self) -> int:
        return len(self.loops)

    def mean_assessment(self) -> Optional[float]:
        if not self.assessments:
            return None
        return sum(self.assessments) / len(self.assessments)
