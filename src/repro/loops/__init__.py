"""The five Section III use cases as concrete MAPE-K autonomy loops.

Each module assembles Monitor/Analyzer/Planner/Executor implementations
for one managed system, plus a manager that attaches loops to the
substrate:

* :mod:`scheduler_loop` — the paper's initial case (Fig. 3): walltime
  extension with checkpoint fallback.
* :mod:`maintenance_loop` — checkpoint jobs ahead of maintenance windows.
* :mod:`io_qos_loop` — AIMD adaptation of QoS token buckets.
* :mod:`ost_loop` — detect slow OSTs, close and reopen files elsewhere.
* :mod:`misconfig_loop` — detect misconfigured jobs, advise or fix.
"""

from repro.loops.scheduler_loop import (
    ExtensionPlanner,
    JobProgressMonitor,
    ProgressAnalyzer,
    SchedulerCaseConfig,
    SchedulerCaseManager,
    SchedulerExecutor,
)
from repro.loops.maintenance_loop import MaintenanceCaseManager, MaintenancePlanner
from repro.loops.io_qos_loop import IoQosConfig, IoQosManagerLoop
from repro.loops.ost_loop import OstCaseConfig, OstCaseManager
from repro.loops.misconfig_loop import MisconfigCaseConfig, MisconfigCaseManager

__all__ = [
    "ExtensionPlanner",
    "IoQosConfig",
    "IoQosManagerLoop",
    "JobProgressMonitor",
    "MaintenanceCaseManager",
    "MaintenancePlanner",
    "MisconfigCaseConfig",
    "MisconfigCaseManager",
    "OstCaseConfig",
    "OstCaseManager",
    "ProgressAnalyzer",
    "SchedulerCaseConfig",
    "SchedulerCaseManager",
    "SchedulerExecutor",
]


def register_components(registry) -> None:
    """Register use-case components for swap-by-name (question ii / E12)."""
    registry.register("monitor", "job-progress", JobProgressMonitor)
    registry.register("analyzer", "progress", ProgressAnalyzer)
    registry.register("planner", "extension", ExtensionPlanner)
    registry.register("executor", "scheduler", SchedulerExecutor)
