"""The five Section III use cases as concrete MAPE-K autonomy loops.

Each module assembles Monitor/Analyzer/Planner/Executor implementations
for one managed system and exports two entry points with a uniform
shape:

* a ``*_case_spec`` / ``*_spec`` builder returning the declarative
  :class:`~repro.core.runtime.LoopSpec` for the case, and
* a ``*CaseManager`` compat wrapper (engine-first, keyword-only
  ``config``) that hosts the spec on a
  :class:`~repro.core.runtime.LoopRuntime` — private unless a shared
  runtime is passed via ``runtime=``, in which case the case joins that
  runtime's fused query hub and plan arbiter.

The three monitors that used to read simulator objects directly
(:mod:`ost_loop`, :mod:`scheduler_loop`, :mod:`maintenance_loop`) now
observe telemetry series published by :mod:`repro.loops.bridges`; the
other two were already query-backed and keep limited substrate access
for configuration data (job launch configs, writer identities).

* :mod:`scheduler_loop` — the paper's initial case (Fig. 3): walltime
  extension with checkpoint fallback.
* :mod:`maintenance_loop` — checkpoint jobs ahead of maintenance windows.
* :mod:`io_qos_loop` — AIMD adaptation of QoS token buckets.
* :mod:`ost_loop` — detect slow OSTs, close and reopen files elsewhere.
* :mod:`misconfig_loop` — detect misconfigured jobs, advise or fix.
"""

from repro.loops.bridges import (
    FilesystemTelemetryBridge,
    MaintenanceTelemetryBridge,
    SchedulerTelemetryBridge,
)
from repro.loops.scheduler_loop import (
    ExtensionPlanner,
    JobProgressMonitor,
    ProgressAnalyzer,
    SchedulerCaseConfig,
    SchedulerCaseManager,
    SchedulerExecutor,
    scheduler_job_spec,
)
from repro.loops.maintenance_loop import (
    MaintenanceCaseConfig,
    MaintenanceCaseManager,
    MaintenancePlanner,
    maintenance_case_spec,
)
from repro.loops.io_qos_loop import (
    IoQosCaseManager,
    IoQosConfig,
    IoQosManagerLoop,
    io_qos_spec,
)
from repro.loops.ost_loop import OstCaseConfig, OstCaseManager, ost_case_spec
from repro.loops.misconfig_loop import (
    MisconfigCaseConfig,
    MisconfigCaseManager,
    misconfig_case_spec,
)

__all__ = [
    "ExtensionPlanner",
    "FilesystemTelemetryBridge",
    "IoQosCaseManager",
    "IoQosConfig",
    "IoQosManagerLoop",
    "JobProgressMonitor",
    "MaintenanceCaseConfig",
    "MaintenanceCaseManager",
    "MaintenancePlanner",
    "MaintenanceTelemetryBridge",
    "MisconfigCaseConfig",
    "MisconfigCaseManager",
    "OstCaseConfig",
    "OstCaseManager",
    "ProgressAnalyzer",
    "SchedulerCaseConfig",
    "SchedulerCaseManager",
    "SchedulerExecutor",
    "SchedulerTelemetryBridge",
    "io_qos_spec",
    "maintenance_case_spec",
    "misconfig_case_spec",
    "ost_case_spec",
    "scheduler_job_spec",
]


def register_components(registry) -> None:
    """Register use-case components for swap-by-name (question ii / E12)."""
    from repro.core.supervisor import (
        FleetHealthAnalyzer,
        FleetHealthPlanner,
        SupervisorConfig,
    )

    registry.register("monitor", "job-progress", JobProgressMonitor)
    registry.register("analyzer", "progress", ProgressAnalyzer)
    registry.register("planner", "extension", ExtensionPlanner)
    registry.register("executor", "scheduler", SchedulerExecutor)
    # the meta-loop components speak the same typed contracts, so fleet
    # supervision is interchangeable like any use-case loop (E12)
    registry.register(
        "analyzer", "fleet-health", lambda: FleetHealthAnalyzer(SupervisorConfig())
    )
    registry.register(
        "planner", "fleet-health", lambda: FleetHealthPlanner(SupervisorConfig())
    )
