"""The Misconfiguration use case (Section III case 4).

Goal: detect "unintended mismatch of threads to cores, underutilization
of CPUs or GPUs, or wrong library search paths"; then either inform the
user with suggestions or correct the configuration on the fly.

The loop sweeps running jobs, builds a :class:`JobConfigView` per job
from launch configuration plus telemetry summaries, runs the rule set
from :mod:`repro.analytics.misconfig`, and plans per-finding responses:
online-fixable findings above ``fix_threshold`` are corrected through
the application hook; everything else becomes a user notification with
the rule's suggestion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analytics.misconfig import (
    JobConfigView,
    MisconfigAnalyzer as RuleEngine,
    MisconfigFinding,
    MisconfigKind,
)
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.humanloop import HumanOnTheLoopNotifier
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.runtime import LoopRuntime, LoopSpec
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.query.engine import QueryEngine
from repro.query.model import LabelMatcher, MetricQuery
from repro.sim.engine import Engine
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass
class MisconfigCaseConfig:
    """Observation and response policy for the misconfiguration loop."""

    observation_window_s: float = 600.0
    min_runtime_s: float = 300.0  # don't judge jobs younger than this
    fix_threshold: float = 0.5  # severity at/above which online fixes apply
    online_fixes_enabled: bool = True  # False = advise-only deployment
    loop_period_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fix_threshold <= 1.0:
            raise ValueError("fix_threshold must be in [0, 1]")


class JobConfigMonitor(Monitor):
    """Builds JobConfigViews for running jobs from config + telemetry.

    Utilization summaries come from the query engine: one grouped query
    per job (``mean(node_cpu_util{node=~"..."}[window]) group by (node)``)
    instead of a hand-rolled window scan per node.
    """

    name = "job-config-monitor"

    def __init__(
        self,
        scheduler: Scheduler,
        store: TimeSeriesStore,
        config: MisconfigCaseConfig,
        *,
        query_engine: Optional[QueryEngine] = None,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.config = config
        # Observation windows end at a fresh `now` each tick — run uncached
        # by default so just-ingested telemetry is never served stale.
        self.query_engine = (
            query_engine
            if query_engine is not None
            else QueryEngine(store, enable_cache=False)
        )

    def observe(self, now: float) -> Optional[Observation]:
        views = []
        for job in self.scheduler.running_jobs():
            started = job.start_time if job.start_time is not None else now
            age = now - started
            if age < self.config.min_runtime_s:
                continue
            views.append(self._view(job, now, age))
        if not views:
            return None
        return Observation(
            now, self.name, values={"jobs_inspected": float(len(views))}, context={"views": views}
        )

    def _view(self, job, now: float, age: float) -> JobConfigView:
        window_s = min(age, self.config.observation_window_s)
        utils: List[float] = []
        if window_s > 0 and job.assigned_nodes:  # zero-age jobs have no window yet
            node_pattern = "|".join(re.escape(n) for n in job.assigned_nodes)
            query = MetricQuery(
                "node_cpu_util",
                agg="mean",
                matchers=(LabelMatcher("node", "=~", node_pattern),),
                range_s=window_s,
                group_by=("node",),
            )
            # young jobs have age-dependent windows whose widened results
            # would never be shared across jobs — fuse only once the
            # window has converged to the configured one
            converged = window_s >= self.config.observation_window_s
            result = self.query_engine.query(query, at=now, fuse=None if converged else False)
            utils = [float(s.values[-1]) for s in result.series]
        cpu_util = sum(utils) / len(utils) if utils else float("nan")
        node = self.scheduler.nodes[job.assigned_nodes[0]]
        threads = job.launch.threads if job.launch.threads is not None else node.spec.cores
        gpu_util = float("nan")
        if node.spec.gpus > 0:
            app = self.scheduler.app(job.job_id)
            if app is not None:
                gpu_util = (
                    0.0
                    if (app.profile.uses_gpu and not job.launch.gpu_offload_enabled)
                    else (0.9 if app.profile.uses_gpu else 0.0)
                )
        return JobConfigView(
            job_id=job.job_id,
            cores_allocated=node.spec.cores,
            gpus_allocated=node.spec.gpus,
            mem_allocated_gb=node.spec.mem_gb,
            threads_requested=threads,
            library_paths=job.launch.library_paths,
            expected_libraries=job.launch.expected_libraries,
            cpu_util_mean=cpu_util,
            gpu_util_mean=gpu_util,
            mem_used_gb_p95=float("nan"),
            observation_s=min(age, self.config.observation_window_s),
        )


class MisconfigLoopAnalyzer(Analyzer):
    """Runs the rule engine over observed job views."""

    name = "misconfig-analyzer"

    def __init__(self, rules: Optional[RuleEngine] = None) -> None:
        self.rules = rules if rules is not None else RuleEngine()
        self.findings_by_job: Dict[str, List[MisconfigFinding]] = {}

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        symptoms = []
        all_findings: List[MisconfigFinding] = []
        for view in observation.context.get("views", ()):
            findings = self.rules.analyze(view)
            if findings:
                self.findings_by_job[view.job_id] = findings
                all_findings.extend(findings)
                worst = findings[0]
                symptoms.append(
                    Symptom(
                        f"misconfig:{view.job_id}",
                        worst.severity,
                        evidence=f"{worst.kind.value}: {worst.explanation}",
                    )
                )
        knowledge.remember("latest_findings", all_findings)
        return AnalysisReport(
            observation.time,
            self.name,
            tuple(symptoms),
            metrics={"findings": float(len(all_findings))},
            confidence=1.0,
        )


class InformOrFixPlanner(Planner):
    """Per finding: online fix above threshold, advisory otherwise."""

    name = "inform-or-fix-planner"

    def __init__(self, config: MisconfigCaseConfig) -> None:
        self.config = config

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        findings: List[MisconfigFinding] = knowledge.recall("latest_findings", [])
        actions = []
        for finding in findings:
            handled = knowledge.recall(f"handled:{finding.job_id}:{finding.kind.value}", False)
            if handled:
                continue
            action = self._response_for(finding)
            if action is not None:
                actions.append(action)
                knowledge.remember(f"handled:{finding.job_id}:{finding.kind.value}", True)
        rationale = "; ".join(a.rationale for a in actions[:3])
        return Plan(report.time, self.name, tuple(actions), 1.0, rationale)

    def _response_for(self, finding: MisconfigFinding) -> Optional[Action]:
        fix_worthy = (
            self.config.online_fixes_enabled
            and finding.fixable_online
            and finding.severity >= self.config.fix_threshold
        )
        if fix_worthy and finding.kind is MisconfigKind.THREAD_CORE_MISMATCH:
            return Action(
                "fix_threads",
                finding.job_id,
                params=dict(finding.fix_params),
                rationale=f"{finding.kind.value}: {finding.suggestion}",
            )
        if fix_worthy and finding.kind is MisconfigKind.WRONG_LIBRARY_PATH:
            return Action(
                "fix_library",
                finding.job_id,
                rationale=f"{finding.kind.value}: {finding.suggestion}",
            )
        return Action(
            "notify_user",
            finding.job_id,
            rationale=f"{finding.kind.value}: {finding.explanation} — {finding.suggestion}",
        )


class FixOrNotifyExecutor(Executor):
    """Applies fixes through the app hook; routes advisories to the notifier."""

    name = "fix-or-notify-executor"

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        notifier: Optional[HumanOnTheLoopNotifier] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.notifier = notifier
        self.fixes_applied = 0
        self.notifications_sent = 0

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        now = self.engine.now
        results = []
        for action in plan.actions:
            if action.kind in ("fix_threads", "fix_library"):
                app = self.scheduler.app(action.target)
                if app is None:
                    results.append(ExecutionResult(action, now, honored=False, detail="job gone"))
                    continue
                if action.kind == "fix_threads":
                    threads = int(action.param("threads", 0))
                    if threads <= 0:
                        results.append(
                            ExecutionResult(action, now, honored=False, detail="no thread count")
                        )
                        continue
                    app.apply_thread_fix(threads)
                    detail = f"threads set to {threads}"
                else:
                    app.apply_library_fix()
                    detail = "site libraries prepended"
                self.fixes_applied += 1
                results.append(ExecutionResult(action, now, honored=True, detail=detail))
            elif action.kind == "notify_user":
                self.notifications_sent += 1
                if self.notifier is not None:
                    self.notifier.notify(now, "misconfig-case", action.rationale)
                results.append(ExecutionResult(action, now, honored=True, detail="user notified"))
            else:
                results.append(ExecutionResult(action, now, honored=False, detail="unknown kind"))
        return results


def misconfig_case_spec(
    engine: Engine,
    scheduler: Scheduler,
    *,
    config: Optional[MisconfigCaseConfig] = None,
    notifier: Optional[HumanOnTheLoopNotifier] = None,
    name: str = "misconfig-case",
    priority: int = 0,
) -> LoopSpec:
    """Declarative spec for the Misconfiguration case.

    Per-job utilization views need one grouped query per running job
    with an age-dependent window, so the spec wires a
    ``monitor_factory`` reading through the runtime's shared hub — the
    hub fuses the per-job ``node_cpu_util`` selections into one widened
    pass per tick once job windows converge.
    """
    config = config if config is not None else MisconfigCaseConfig()
    return LoopSpec(
        name=name,
        priority=priority,
        monitor_factory=lambda runtime: JobConfigMonitor(
            scheduler, runtime.store, config, query_engine=runtime.hub
        ),
        analyzer_factory=MisconfigLoopAnalyzer,
        planner_factory=lambda: InformOrFixPlanner(config),
        executor_factory=lambda: FixOrNotifyExecutor(engine, scheduler, notifier),
        period_s=config.loop_period_s,
    )


class MisconfigCaseManager:
    """Assembled misconfiguration loop over a scheduler + telemetry store.

    Thin compat wrapper hosting :func:`misconfig_case_spec` on a
    :class:`~repro.core.runtime.LoopRuntime` built over the telemetry
    store the utilization queries read from.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        store: TimeSeriesStore,
        *,
        config: Optional[MisconfigCaseConfig] = None,
        audit: Optional[AuditTrail] = None,
        notifier: Optional[HumanOnTheLoopNotifier] = None,
        query_engine: Optional[QueryEngine] = None,
        runtime: Optional[LoopRuntime] = None,
        priority: int = 0,
    ) -> None:
        self.config = config if config is not None else MisconfigCaseConfig()
        self.runtime = LoopRuntime.for_case(
            engine, runtime=runtime, store=store, query_engine=query_engine, audit=audit
        )
        self.handle = self.runtime.add(
            misconfig_case_spec(
                engine,
                scheduler,
                config=self.config,
                notifier=notifier,
                priority=priority,
            )
        )
        self.executor = self.handle.loop.executor
        self.query_engine = self.runtime.query_engine

    def start(self) -> None:
        self.handle.start()

    def stop(self) -> None:
        self.handle.stop()

    @property
    def loop(self) -> MAPEKLoop:
        return self.handle.loop

    @property
    def fixes_applied(self) -> int:
        return self.executor.fixes_applied

    @property
    def notifications_sent(self) -> int:
        return self.executor.notifications_sent
