"""Telemetry bridges: publish managed-system state as metric series.

The runtime's premise is that Monitor phases read *telemetry* through
the query engine, never simulator objects.  Three of the five case
monitors used to reach directly into the scheduler, the maintenance
manager, or the filesystem; these bridges close that gap by publishing
the observables those monitors need into a
:class:`~repro.telemetry.tsdb.TimeSeriesStore`, event-driven from the
substrate's own hooks (job start/end, extension decisions, maintenance
announcements, transfer completions) — so the series are exactly as
fresh as the state they mirror and the query-backed monitors observe
bit-identical values to the legacy direct reads.

Published series:

========================  =======================  =========================
metric                    labels                   value
========================  =======================  =========================
``job_running``           ``job``                  1 while running, 0 at end
``job_deadline_s``        ``job``                  current kill deadline
``job_time_limit_s``      ``job``                  walltime incl. extensions
``job_start_time_s``      ``job``                  start timestamp
``job_node_running``      ``job``, ``node``        1 per assigned node, 0 at end
``maint_window_start``    ``window``, ``node``     window start time, per node
``ost_write_bw_mbps``     ``ost``                  achieved-bandwidth EWMA
========================  =======================  =========================

(Progress markers are mirrored by
:class:`~repro.telemetry.markers.ProgressMarkerChannel` itself as
``job_progress_steps`` / ``job_progress_total``.)
"""

from __future__ import annotations

import math
import zlib

from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.scheduler import ExtensionResponse, Scheduler
from repro.cluster.job import Job
from repro.storage.filesystem import ParallelFileSystem, Transfer
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

__all__ = [
    "FilesystemTelemetryBridge",
    "MaintenanceTelemetryBridge",
    "SchedulerTelemetryBridge",
]


class SchedulerTelemetryBridge:
    """Publishes per-job lifecycle gauges from scheduler hooks."""

    def __init__(self, scheduler: Scheduler, store: TimeSeriesStore) -> None:
        self.scheduler = scheduler
        self.store = store
        scheduler.on_job_start.append(self._job_started)
        scheduler.on_job_end.append(self._job_ended)
        scheduler.on_extension.append(self._extension)
        # jobs already running when the bridge attaches still get gauges
        for job in scheduler.running_jobs():
            self._job_started(job)

    def _now(self) -> float:
        return self.scheduler.engine.now

    def _job_started(self, job: Job) -> None:
        now = self._now()
        self.store.insert(SeriesKey.of("job_running", job=job.job_id), now, 1.0)
        self.store.insert(
            SeriesKey.of("job_start_time_s", job=job.job_id), now, float(job.start_time)
        )
        self._publish_deadline(job, now)

    def _extension(self, job: Job, response: ExtensionResponse) -> None:
        self._publish_deadline(job, self._now())

    def _publish_deadline(self, job: Job, now: float) -> None:
        if job.deadline is not None:
            self.store.insert(
                SeriesKey.of("job_deadline_s", job=job.job_id), now, float(job.deadline)
            )
        self.store.insert(
            SeriesKey.of("job_time_limit_s", job=job.job_id), now, float(job.time_limit_s)
        )

    def _job_ended(self, job: Job) -> None:
        self.store.insert(SeriesKey.of("job_running", job=job.job_id), self._now(), 0.0)


class MaintenanceTelemetryBridge:
    """Publishes maintenance windows and job-node placement gauges."""

    def __init__(
        self,
        scheduler: Scheduler,
        maintenance: MaintenanceManager,
        store: TimeSeriesStore,
    ) -> None:
        self.scheduler = scheduler
        self.maintenance = maintenance
        self.store = store
        maintenance.on_announce.append(self._announced)
        scheduler.on_job_start.append(self._job_started)
        scheduler.on_job_end.append(self._job_ended)
        now = scheduler.engine.now
        for event in maintenance.events:
            if event.t_announce <= now:
                self._announced(event)
        for job in scheduler.running_jobs():
            self._job_started(job)

    @staticmethod
    def window_id(event: MaintenanceEvent) -> str:
        """Stable id derived from the window's identity, not publish order.

        Multiple bridges feeding one shared store (or a rebuilt bridge)
        must agree on ids, or distinct windows would merge under a
        colliding per-instance counter.
        """
        digest = zlib.crc32(repr((event.t_start, sorted(event.nodes))).encode())
        return f"w{digest:08x}"

    def _announced(self, event: MaintenanceEvent) -> None:
        now = self.scheduler.engine.now
        window_id = self.window_id(event)
        for node in sorted(event.nodes):
            self.store.insert(
                SeriesKey.of("maint_window_start", window=window_id, node=node),
                now,
                float(event.t_start),
            )

    def _job_started(self, job: Job) -> None:
        now = self.scheduler.engine.now
        for node in job.assigned_nodes:
            self.store.insert(
                SeriesKey.of("job_node_running", job=job.job_id, node=node), now, 1.0
            )

    def _job_ended(self, job: Job) -> None:
        now = self.scheduler.engine.now
        for node in job.assigned_nodes:
            self.store.insert(
                SeriesKey.of("job_node_running", job=job.job_id, node=node), now, 0.0
            )


class FilesystemTelemetryBridge:
    """Publishes per-OST achieved-bandwidth EWMAs on transfer completion.

    The EWMAs only move when a transfer finishes, so sampling them at
    completion time gives query-backed monitors the exact value a direct
    ``fs.ost_bandwidth_mbps()`` read would return at any later instant.
    """

    def __init__(self, fs: ParallelFileSystem, store: TimeSeriesStore) -> None:
        self.fs = fs
        self.store = store
        fs.on_transfer.append(self._transfer_done)

    def _transfer_done(self, transfer: Transfer) -> None:
        now = self.fs.engine.now
        # only the OSTs this transfer touched have moved EWMAs; the rest
        # would be redundant rows (and spurious epoch bumps) if republished
        for ost_id in transfer.ost_ids:
            bw = self.fs.ost_bandwidth_mbps(ost_id)
            if not math.isnan(bw):
                self.store.insert(SeriesKey.of("ost_write_bw_mbps", ost=ost_id), now, bw)
