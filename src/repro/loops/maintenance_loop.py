"""The Maintenance use case (Section III case 1).

Goal: "Responses to system maintenance events to ensure continuity of
running jobs."  The loop watches maintenance announcements; for every
running job on affected nodes it plans a checkpoint early enough that
the checkpoint finishes before the window opens.  The paper notes this
case "would use equivalent application interaction as invoking
asynchronous checkpointing" — it shares the checkpoint hook with the
Scheduler case.

The case runs under the :class:`~repro.core.runtime.LoopRuntime` from
:func:`maintenance_case_spec`: announced windows and job placement are
observed as telemetry series (``maint_window_start`` /
``job_node_running``, published by the
:class:`~repro.loops.bridges.MaintenanceTelemetryBridge`) through two
declarative grouped queries, replacing the legacy direct
scheduler/manager reads (:class:`MaintenanceMonitor`, kept for
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.runtime import LoopRuntime, LoopSpec, MonitorQuery
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.loops.bridges import MaintenanceTelemetryBridge
from repro.sim.engine import Engine


@dataclass
class MaintenanceCaseConfig:
    """Assembly options for the Maintenance case."""

    period_s: float = 120.0
    lead_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.lead_factor <= 0:
            raise ValueError("lead_factor must be positive")


@dataclass(frozen=True)
class WindowInfo:
    """A maintenance window as reconstructed from telemetry.

    Duck-typed stand-in for :class:`MaintenanceEvent` in observation
    contexts — the analyzer only consumes ``t_start``.
    """

    window_id: str
    t_start: float
    nodes: frozenset


class MaintenanceMonitor(Monitor):
    """Observes announced windows and the jobs currently exposed to them."""

    name = "maintenance-monitor"

    def __init__(self, scheduler: Scheduler, manager: MaintenanceManager) -> None:
        self.scheduler = scheduler
        self.manager = manager
        self._announced: List[MaintenanceEvent] = []
        manager.on_announce.append(self._announced.append)

    def observe(self, now: float) -> Optional[Observation]:
        upcoming = [e for e in self._announced if e.t_start > now]
        if not upcoming:
            return None
        exposures = []
        for event in upcoming:
            for job in self.scheduler.running_jobs():
                if any(n in event.nodes for n in job.assigned_nodes):
                    exposures.append((job.job_id, event))
        return Observation(
            now,
            self.name,
            values={"upcoming_windows": float(len(upcoming))},
            context={"exposures": exposures},
        )


class MaintenanceAnalyzer(Analyzer):
    """Flags jobs that will still be running when their window opens."""

    name = "maintenance-analyzer"

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        symptoms = []
        at_risk = []
        for job_id, event in observation.context.get("exposures", ()):
            app = self.scheduler.app(job_id)
            job = self.scheduler.jobs.get(job_id)
            if app is None or job is None:
                continue
            time_to_window = event.t_start - observation.time
            # exposure is real if the job cannot finish before the window
            expected_remaining = app.remaining_seconds_nominal()
            if expected_remaining > time_to_window:
                unsaved_steps = app.steps_done - app.last_checkpoint_step
                severity = min(1.0, unsaved_steps / max(1.0, app.profile.total_steps))
                symptoms.append(
                    Symptom(
                        "maintenance_exposure",
                        severity,
                        evidence=f"job {job_id}: window in {time_to_window:.0f}s, "
                        f"{unsaved_steps:.0f} unsaved steps",
                    )
                )
                at_risk.append((job_id, event, time_to_window))
        return AnalysisReport(
            observation.time,
            self.name,
            tuple(symptoms),
            metrics={"jobs_at_risk": float(len(at_risk))},
            confidence=1.0,
        )


@dataclass
class MaintenancePlanner(Planner):
    """Checkpoints exposed jobs once the window is close enough.

    ``lead_factor`` scales the checkpoint cost into the trigger lead:
    act when ``time_to_window <= lead_factor * checkpoint_cost`` so the
    checkpoint completes with headroom but progress is preserved as
    late as possible (less redone work after restart).
    """

    scheduler: Scheduler
    lead_factor: float = 3.0
    name: str = "maintenance-planner"

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        actions = []
        # re-derive at-risk jobs from symptom evidence stored by analyzer;
        # planner consults the scheduler for checkpoint costs
        for symptom in report.symptoms:
            if symptom.name != "maintenance_exposure":
                continue
            job_id = symptom.evidence.split()[1].rstrip(":")
            app = self.scheduler.app(job_id)
            if app is None or not app.profile.supports_checkpoint:
                continue
            already = knowledge.recall(f"ckpt_planned:{job_id}", False)
            if already:
                continue
            # parse the window lead from evidence is fragile; recompute
            window_start = self._next_window_start(job_id, report.time)
            if window_start is None:
                continue
            lead = self.lead_factor * app.profile.checkpoint_cost_s
            if window_start - report.time <= lead:
                actions.append(
                    Action(
                        "signal_checkpoint",
                        job_id,
                        rationale=f"maintenance at t={window_start:.0f}; "
                        f"checkpointing {job_id} now",
                    )
                )
                knowledge.remember(f"ckpt_planned:{job_id}", True)
        rationale = "; ".join(a.rationale for a in actions)
        return Plan(report.time, self.name, tuple(actions), 1.0, rationale)

    def _next_window_start(self, job_id: str, now: float) -> Optional[float]:
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            return None
        starts = [
            r.t_start
            for r in self.scheduler.reservations
            if r.t_start > now and any(r.covers(n) for n in job.assigned_nodes)
        ]
        return min(starts) if starts else None


class CheckpointExecutor(Executor):
    """Sends checkpoint signals through the scheduler hook."""

    name = "checkpoint-executor"

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        now = self.scheduler.engine.now
        results = []
        for action in plan.actions:
            ok = self.scheduler.signal_checkpoint(action.target)
            results.append(
                ExecutionResult(
                    action, now, honored=ok, detail="checkpoint started" if ok else "hook refused"
                )
            )
        return results


def maintenance_case_spec(
    scheduler: Scheduler,
    *,
    config: Optional[MaintenanceCaseConfig] = None,
    name: str = "maintenance-case",
    priority: int = 0,
) -> LoopSpec:
    """Declarative spec for the Maintenance case.

    The monitor joins two grouped queries — announced windows per node
    and job placement per node — into the same exposure list the legacy
    direct-read monitor produced.
    """
    config = config if config is not None else MaintenanceCaseConfig()

    def build(now: float, inputs) -> Optional[Observation]:
        windows: Dict[str, WindowInfo] = {}
        for series in inputs["windows"].series:
            if not series.values.size:
                continue
            wid = series.label("window") or ""
            t_start = float(series.values[-1])
            prior = windows.get(wid)
            nodes = {series.label("node") or ""}
            if prior is not None:
                nodes |= set(prior.nodes)
            windows[wid] = WindowInfo(wid, t_start, frozenset(nodes))
        upcoming = sorted(
            (w for w in windows.values() if w.t_start > now),
            key=lambda w: (w.t_start, w.window_id),
        )
        if not upcoming:
            return None
        job_nodes: Dict[str, Set[str]] = {}
        for series in inputs["placement"].series:
            if series.values.size and series.values[-1] >= 1.0:
                job_nodes.setdefault(series.label("job") or "", set()).add(
                    series.label("node") or ""
                )
        exposures: List[Tuple[str, WindowInfo]] = []
        for window in upcoming:
            for job_id in sorted(job_nodes):
                if job_nodes[job_id] & window.nodes:
                    exposures.append((job_id, window))
        return Observation(
            now,
            "maintenance-monitor",
            values={"upcoming_windows": float(len(upcoming))},
            context={"exposures": exposures},
        )

    return LoopSpec(
        name=name,
        priority=priority,
        queries=(
            MonitorQuery("windows", "last(maint_window_start) group by (window,node)"),
            MonitorQuery("placement", "last(job_node_running) group by (job,node)"),
        ),
        build_observation=build,
        analyzer_factory=lambda: MaintenanceAnalyzer(scheduler),
        planner_factory=lambda: MaintenancePlanner(scheduler, lead_factor=config.lead_factor),
        executor_factory=lambda: CheckpointExecutor(scheduler),
        period_s=config.period_s,
    )


class MaintenanceCaseManager:
    """One site-wide loop watching all maintenance announcements.

    Thin compat wrapper over :func:`maintenance_case_spec` +
    :class:`~repro.loops.bridges.MaintenanceTelemetryBridge` hosted on a
    :class:`~repro.core.runtime.LoopRuntime`.  ``period_s`` and
    ``lead_factor`` kwargs are kept as shorthand for the corresponding
    :class:`MaintenanceCaseConfig` fields.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        maintenance: MaintenanceManager,
        *,
        config: Optional[MaintenanceCaseConfig] = None,
        period_s: Optional[float] = None,
        lead_factor: Optional[float] = None,
        audit: Optional[AuditTrail] = None,
        runtime: Optional[LoopRuntime] = None,
        priority: int = 0,
    ) -> None:
        if config is None:
            config = MaintenanceCaseConfig(
                period_s=period_s if period_s is not None else 120.0,
                lead_factor=lead_factor if lead_factor is not None else 3.0,
            )
        elif period_s is not None or lead_factor is not None:
            raise ValueError("pass either config or period_s/lead_factor, not both")
        self.config = config
        self.runtime = LoopRuntime.for_case(engine, runtime=runtime, audit=audit)
        self.bridge = MaintenanceTelemetryBridge(scheduler, maintenance, self.runtime.store)
        self.handle = self.runtime.add(
            maintenance_case_spec(scheduler, config=config, priority=priority)
        )

    def start(self) -> None:
        self.handle.start()

    def stop(self) -> None:
        self.handle.stop()

    @property
    def loop(self) -> MAPEKLoop:
        return self.handle.loop

    @property
    def checkpoints_triggered(self) -> int:
        return self.loop.actions_executed
