"""The Maintenance use case (Section III case 1).

Goal: "Responses to system maintenance events to ensure continuity of
running jobs."  The loop watches maintenance announcements; for every
running job on affected nodes it plans a checkpoint early enough that
the checkpoint finishes before the window opens.  The paper notes this
case "would use equivalent application interaction as invoking
asynchronous checkpointing" — it shares the checkpoint hook with the
Scheduler case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.cluster.job import JobState
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.scheduler import Scheduler
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)
from repro.sim.engine import Engine


class MaintenanceMonitor(Monitor):
    """Observes announced windows and the jobs currently exposed to them."""

    name = "maintenance-monitor"

    def __init__(self, scheduler: Scheduler, manager: MaintenanceManager) -> None:
        self.scheduler = scheduler
        self.manager = manager
        self._announced: List[MaintenanceEvent] = []
        manager.on_announce.append(self._announced.append)

    def observe(self, now: float) -> Optional[Observation]:
        upcoming = [e for e in self._announced if e.t_start > now]
        if not upcoming:
            return None
        exposures = []
        for event in upcoming:
            for job in self.scheduler.running_jobs():
                if any(n in event.nodes for n in job.assigned_nodes):
                    exposures.append((job.job_id, event))
        return Observation(
            now,
            self.name,
            values={"upcoming_windows": float(len(upcoming))},
            context={"exposures": exposures},
        )


class MaintenanceAnalyzer(Analyzer):
    """Flags jobs that will still be running when their window opens."""

    name = "maintenance-analyzer"

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        symptoms = []
        at_risk = []
        for job_id, event in observation.context.get("exposures", ()):
            app = self.scheduler.app(job_id)
            job = self.scheduler.jobs.get(job_id)
            if app is None or job is None:
                continue
            time_to_window = event.t_start - observation.time
            # exposure is real if the job cannot finish before the window
            expected_remaining = app.remaining_seconds_nominal()
            if expected_remaining > time_to_window:
                unsaved_steps = app.steps_done - app.last_checkpoint_step
                severity = min(1.0, unsaved_steps / max(1.0, app.profile.total_steps))
                symptoms.append(
                    Symptom(
                        "maintenance_exposure",
                        severity,
                        evidence=f"job {job_id}: window in {time_to_window:.0f}s, "
                        f"{unsaved_steps:.0f} unsaved steps",
                    )
                )
                at_risk.append((job_id, event, time_to_window))
        return AnalysisReport(
            observation.time,
            self.name,
            tuple(symptoms),
            metrics={"jobs_at_risk": float(len(at_risk))},
            confidence=1.0,
        )


@dataclass
class MaintenancePlanner(Planner):
    """Checkpoints exposed jobs once the window is close enough.

    ``lead_factor`` scales the checkpoint cost into the trigger lead:
    act when ``time_to_window <= lead_factor * checkpoint_cost`` so the
    checkpoint completes with headroom but progress is preserved as
    late as possible (less redone work after restart).
    """

    scheduler: Scheduler
    lead_factor: float = 3.0
    name: str = "maintenance-planner"

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        actions = []
        # re-derive at-risk jobs from symptom evidence stored by analyzer;
        # planner consults the scheduler for checkpoint costs
        for symptom in report.symptoms:
            if symptom.name != "maintenance_exposure":
                continue
            job_id = symptom.evidence.split()[1].rstrip(":")
            app = self.scheduler.app(job_id)
            if app is None or not app.profile.supports_checkpoint:
                continue
            already = knowledge.recall(f"ckpt_planned:{job_id}", False)
            if already:
                continue
            # parse the window lead from evidence is fragile; recompute
            window_start = self._next_window_start(job_id, report.time)
            if window_start is None:
                continue
            lead = self.lead_factor * app.profile.checkpoint_cost_s
            if window_start - report.time <= lead:
                actions.append(
                    Action(
                        "signal_checkpoint",
                        job_id,
                        rationale=f"maintenance at t={window_start:.0f}; "
                        f"checkpointing {job_id} now",
                    )
                )
                knowledge.remember(f"ckpt_planned:{job_id}", True)
        rationale = "; ".join(a.rationale for a in actions)
        return Plan(report.time, self.name, tuple(actions), 1.0, rationale)

    def _next_window_start(self, job_id: str, now: float) -> Optional[float]:
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            return None
        starts = [
            r.t_start
            for r in self.scheduler.reservations
            if r.t_start > now and any(r.covers(n) for n in job.assigned_nodes)
        ]
        return min(starts) if starts else None


class CheckpointExecutor(Executor):
    """Sends checkpoint signals through the scheduler hook."""

    name = "checkpoint-executor"

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        now = self.scheduler.engine.now
        results = []
        for action in plan.actions:
            ok = self.scheduler.signal_checkpoint(action.target)
            results.append(
                ExecutionResult(
                    action, now, honored=ok, detail="checkpoint started" if ok else "hook refused"
                )
            )
        return results


class MaintenanceCaseManager:
    """One site-wide loop watching all maintenance announcements."""

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        maintenance: MaintenanceManager,
        *,
        period_s: float = 120.0,
        lead_factor: float = 3.0,
        audit: Optional[AuditTrail] = None,
    ) -> None:
        self.loop = MAPEKLoop(
            engine,
            "maintenance-case",
            monitor=MaintenanceMonitor(scheduler, maintenance),
            analyzer=MaintenanceAnalyzer(scheduler),
            planner=MaintenancePlanner(scheduler, lead_factor=lead_factor),
            executor=CheckpointExecutor(scheduler),
            period_s=period_s,
            audit=audit,
        )

    def start(self) -> None:
        self.loop.start()

    def stop(self) -> None:
        self.loop.stop()

    @property
    def checkpoints_triggered(self) -> int:
        return self.loop.actions_executed
