"""The one public surface: ``repro.api.Client``.

Everything outside the package (notebooks, dashboards, the CLI, the
experiment drivers) talks to a simulated cluster through a
:class:`Client` — a thin facade that wires a
:class:`~repro.cluster.Cluster`, the memoized query engine for its store
shape, and a :class:`~repro.serve.QueryFrontDoor` into one object with a
stable import path::

    from repro.api import Client, ClusterConfig, QueryRequest, TenantSpec

    with Client.from_config(ClusterConfig(n_nodes=32, shards=4)) as client:
        client.run(until=600.0)
        r = client.query("mean(node_cpu_util[300s] by 30s)")
        print(r.status, r.source, r.scalar())

Every read goes through the front door, so external traffic always gets
admission control, deadline handling, the typed
:class:`~repro.serve.QueryRequest`/:class:`~repro.serve.QueryResult`
boundary, and the serving fast paths (hot-result cache, standing
engine).  The raw engine stays reachable as :attr:`Client.engine` for
code that needs engine-level semantics (loop wiring, property tests) —
that is an intentional escape hatch, not the public path.

Deprecated-but-working older entry points (``Cluster.query_engine()``,
per-command engine construction in the CLI) now warn once and delegate
to the same internals; see the README migration note.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.obs import METRICS, TRACER, MetricsRegistry, collect_metrics
from repro.serve import QueryFrontDoor, QueryRequest, QueryResult, ShedConfig, TenantSpec
from repro.sim.engine import Engine

__all__ = [
    "Client",
    "ClusterConfig",
    "QueryFrontDoor",
    "QueryRequest",
    "QueryResult",
    "ShedConfig",
    "TenantSpec",
]

#: rollup cascade a client builds by default (finest → coarsest); matches
#: the resolutions the experiments standardized on
DEFAULT_ROLLUP_RESOLUTIONS: Tuple[float, ...] = (10.0, 60.0, 600.0)

#: the implicit tenant every client can serve without configuration
DEFAULT_TENANT = TenantSpec("default", qps=1000.0, max_inflight=8, queue_depth=256)


def _attach_rollup_fold(engine, sim: Engine) -> None:
    """Drive rollup folding from the simulation clock (idempotent).

    Without a fold task the tiers stay empty and the degrade ladder
    would silently serve empty coarse answers.
    """
    try:
        if getattr(engine, "shard_rollups", None):
            engine.attach_rollups(sim)
        elif getattr(engine, "rollups", None) is not None:
            engine.rollups.attach(sim)
    except RuntimeError:
        pass  # an earlier client over the same cluster already attached


class Client:
    """Public facade over a cluster, its query engine, and the front door."""

    def __init__(
        self,
        cluster: Cluster,
        front_door: QueryFrontDoor,
        *,
        owns_cluster: bool = False,
    ) -> None:
        self.cluster = cluster
        self.front_door = front_door
        self.engine = front_door.engine
        self._owns_cluster = owns_cluster
        front_door.start()

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_config(
        cls,
        config: Optional[ClusterConfig] = None,
        *,
        sim: Optional[Engine] = None,
        tenants: Iterable[TenantSpec] = (),
        rollup_resolutions: Optional[Tuple[float, ...]] = DEFAULT_ROLLUP_RESOLUTIONS,
        shed: Optional[ShedConfig] = None,
        n_workers: int = 2,
    ) -> "Client":
        """Build a cluster from ``config`` and serve it.

        Creates the simulation engine too unless one is passed; the
        cluster is owned by the client and released by :meth:`close`.
        """
        sim = sim if sim is not None else Engine()
        cluster = Cluster(sim, config)
        return cls.from_cluster(
            cluster,
            tenants=tenants,
            rollup_resolutions=rollup_resolutions,
            shed=shed,
            n_workers=n_workers,
            owns_cluster=True,
        )

    @classmethod
    def from_cluster(
        cls,
        cluster: Cluster,
        *,
        tenants: Iterable[TenantSpec] = (),
        rollup_resolutions: Optional[Tuple[float, ...]] = DEFAULT_ROLLUP_RESOLUTIONS,
        shed: Optional[ShedConfig] = None,
        n_workers: int = 2,
        owns_cluster: bool = False,
    ) -> "Client":
        """Serve an existing (possibly already-running) cluster."""
        engine = cluster._query_engine(rollup_resolutions=rollup_resolutions)
        if rollup_resolutions is not None:
            _attach_rollup_fold(engine, cluster.engine)
        tenants = list(tenants)
        if not any(t.name == DEFAULT_TENANT.name for t in tenants):
            tenants.append(DEFAULT_TENANT)
        front_door = QueryFrontDoor(
            engine,
            tenants=tenants,
            shed=shed,
            n_workers=n_workers,
            default_at=lambda: cluster.engine.now,
        )
        return cls(cluster, front_door, owns_cluster=owns_cluster)

    # --------------------------------------------------------------- serving
    def query(
        self,
        query,
        *,
        tenant: str = "default",
        at: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> QueryResult:
        """Serve one query synchronously through the front door."""
        return self.front_door.serve(
            QueryRequest(query, tenant=tenant, at=at, deadline_ms=deadline_ms,
                         priority=priority)
        )

    def query_async(
        self,
        query,
        *,
        tenant: str = "default",
        at: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ):
        """Submit without blocking; returns a future of the result."""
        return self.front_door.submit(
            QueryRequest(query, tenant=tenant, at=at, deadline_ms=deadline_ms,
                         priority=priority)
        )

    def samples(
        self, query, *, at: Optional[float] = None, since: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw sample extraction (no binning), engine-lock protected."""
        if at is None:
            at = self.cluster.engine.now
        with self.front_door.write_gate():
            return self.engine.samples(query, at=at, since=since)

    def add_tenant(self, spec: TenantSpec) -> None:
        self.front_door.add_tenant(spec)

    # ------------------------------------------------------------ simulation
    def run(self, until: float) -> float:
        """Advance the simulation under the serving write gate."""
        with self.front_door.write_gate():
            return self.cluster.run(until)

    @property
    def now(self) -> float:
        return self.cluster.engine.now

    # --------------------------------------------------------------- readout
    def stats(self) -> Dict[str, object]:
        """Serving + engine counters in one nested dict."""
        return {"serve": self.front_door.stats(), "engine": self.engine.stats()}

    def metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Absorb serving + engine + runtime stats into a metrics registry."""
        reg = registry if registry is not None else METRICS
        collect_metrics(engine=self.engine, serve=self.front_door, registry=reg)
        if self.front_door.standing is not None:
            collect_metrics(standing=self.front_door.standing, registry=reg)
        self.cluster.collect_metrics(registry=reg)
        return reg

    def trace(self, *, enable: Optional[bool] = None) -> List:
        """Toggle tracing and/or read the recent span ring.

        ``trace(enable=True)`` turns the process tracer on,
        ``trace(enable=False)`` off; either way the currently buffered
        spans are returned.
        """
        if enable is True:
            TRACER.enable()
        elif enable is False:
            TRACER.disable()
        return TRACER.spans()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.front_door.stop()
        if self._owns_cluster:
            self.cluster.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
