"""Discrete-event simulation engine.

The engine maintains a priority queue of :class:`Event` objects ordered by
``(time, priority, seq)``.  ``seq`` is a monotonically increasing counter,
which makes event ordering *stable*: two events scheduled for the same
simulated time with the same priority always fire in the order they were
scheduled.  Determinism of the whole simulation then only depends on
deterministic callbacks and seeded RNG streams (see :mod:`repro.sim.rng`).

Time is a ``float`` in seconds.  The engine never advances past events:
callbacks run exactly at their scheduled time, and scheduling into the past
raises :class:`SimTimeError`.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, Optional


class SimTimeError(ValueError):
    """Raised when an event is scheduled before the current simulation time."""


class StopSimulation(Exception):
    """Raise from a callback to stop the simulation immediately.

    ``Engine.run`` catches this, making it a cooperative stop signal for
    callbacks that detect a terminal condition (e.g. all jobs finished).
    """


# Queue entries are plain ``(time, priority, seq, event)`` tuples: ``seq``
# is unique per engine, so tuple comparison never reaches the event, and
# heap pushes/pops cost C-level tuple compares instead of dataclass
# ``__lt__`` dispatch — this is the hottest allocation in large
# simulations (every scheduled sample, hop, and commit passes through).


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at`; user code typically only keeps a reference
    in order to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "kwargs", "cancelled", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.fn, "__name__", repr(self.fn))
        return f"<Event t={self.time:.6g} prio={self.priority} {name} [{state}]>"


class PeriodicTask:
    """A callback that re-schedules itself every ``period`` seconds.

    The callback receives the engine time implicitly through ``engine.now``.
    Returning ``False`` from the callback stops the task; calling
    :meth:`stop` stops it externally.  An optional per-tick ``jitter_fn``
    (e.g. drawing from an RNG stream) perturbs each firing time, which the
    telemetry samplers use to model realistic sampling jitter.
    """

    def __init__(
        self,
        engine: "Engine",
        period: float,
        fn: Callable[[], Any],
        *,
        start_at: Optional[float] = None,
        priority: int = 0,
        jitter_fn: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.engine = engine
        self.period = period
        self.fn = fn
        self.priority = priority
        self.jitter_fn = jitter_fn
        self.label = label or getattr(fn, "__name__", "periodic")
        self._stopped = False
        self._event: Optional[Event] = None
        first = engine.now if start_at is None else start_at
        self._schedule_next(max(first, engine.now))

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self, at: float) -> None:
        if self._stopped:
            return
        jitter = self.jitter_fn() if self.jitter_fn is not None else 0.0
        t = max(self.engine.now, at + jitter)
        self._event = self.engine.schedule_at(t, self._tick, priority=self.priority, label=self.label)

    def _tick(self) -> None:
        self._event = None
        if self._stopped:
            return
        result = self.fn()
        if result is False:
            self._stopped = True
            return
        self._schedule_next(self.engine.now + self.period)


class Engine:
    """The discrete-event simulator.

    Typical use::

        eng = Engine()
        eng.schedule(10.0, lambda: print("at t=10"))
        eng.run(until=100.0)

    The engine also exposes lightweight instrumentation used by the
    benchmark harness: ``events_executed`` and per-label counters.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.events_executed = 0
        self._running = False
        self._trace_hooks: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, fn, *args, priority=priority, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` at an absolute simulation time."""
        if math.isnan(time):
            raise SimTimeError("cannot schedule an event at NaN time")
        if time < self._now:
            raise SimTimeError(f"cannot schedule at t={time} (now is t={self._now})")
        self._seq += 1
        event = Event(float(time), priority, self._seq, fn, args, kwargs, label=label)
        heapq.heappush(self._queue, (event.time, priority, event.seq, event))
        return event

    def every(
        self,
        period: float,
        fn: Callable[[], Any],
        *,
        start_at: Optional[float] = None,
        priority: int = 0,
        jitter_fn: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> PeriodicTask:
        """Create a :class:`PeriodicTask` firing every ``period`` seconds."""
        return PeriodicTask(
            self, period, fn, start_at=start_at, priority=priority, jitter_fn=jitter_fn, label=label
        )

    # ---------------------------------------------------------------- running
    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook invoked before every executed event (debug/metrics)."""
        self._trace_hooks.append(hook)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)[3]
            if event.cancelled:
                continue
            self._now = event.time
            for hook in self._trace_hooks:
                hook(event)
            self.events_executed += 1
            event.fn(*event.args, **event.kwargs)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue empties, ``until`` is reached, or ``max_events``.

        Events scheduled exactly at ``until`` are executed.  Returns the
        simulation time when the run stopped.  A callback may raise
        :class:`StopSimulation` to end the run early.
        """
        if self._running:
            raise RuntimeError("Engine.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self._now = float(until)
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and self._now < until and self.peek() is None:
            # Queue drained before the horizon: advance the clock to it so
            # durations computed by callers reflect the requested window.
            self._now = float(until)
        return self._now

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(n); diagnostics)."""
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    def drain(self, labels: Optional[Iterable[str]] = None) -> int:
        """Cancel pending events (optionally only those with given labels)."""
        wanted = set(labels) if labels is not None else None
        cancelled = 0
        for entry in self._queue:
            ev = entry[3]
            if ev.cancelled:
                continue
            if wanted is None or ev.label in wanted:
                ev.cancel()
                cancelled += 1
        return cancelled
