"""Named, seeded random-number streams.

Experiments must be reproducible bit-for-bit under a fixed root seed even
when components are constructed in different orders.  ``RngRegistry``
derives every stream from ``(root_seed, stream_name)`` using
``numpy.random.SeedSequence`` with a stable hash of the name, so stream
identity depends only on the name — never on creation order.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_entropy(name: str) -> list[int]:
    """Stable 128-bit entropy derived from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("arrivals")          # same object
    >>> a is b
    True

    Two registries with the same seed produce identical streams for the
    same names regardless of the order in which streams are requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, *_name_entropy(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """An independent, *uncached* stream for per-entity randomness.

        Useful when an unbounded population of entities (jobs, nodes) each
        needs its own stream: ``fork("job", job_id)``.
        """
        seq = np.random.SeedSequence([self.seed, index, *_name_entropy(name)])
        return np.random.default_rng(seq)

    def names(self) -> list[str]:
        """Names of all cached streams (sorted for stable output)."""
        return sorted(self._streams)
