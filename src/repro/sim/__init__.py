"""Deterministic discrete-event simulation substrate.

Every other subsystem in this repository (cluster, storage, telemetry,
MAPE-K loops) runs on top of this engine.  The engine is intentionally
minimal: a time-ordered event queue with stable tie-breaking, periodic
tasks, and named seeded random streams so that every experiment in the
benchmark harness is exactly reproducible.
"""

from repro.sim.engine import Engine, Event, PeriodicTask, SimTimeError, StopSimulation
from repro.sim.rng import RngRegistry

__all__ = [
    "Engine",
    "Event",
    "PeriodicTask",
    "RngRegistry",
    "SimTimeError",
    "StopSimulation",
]
