"""Observability overhead benchmark (E20, Section IV).

PR 9 threads span tracing (:mod:`repro.obs.trace`) through the autonomy
hot paths — hub serving, standing reads, engine execution, federated
scatter, columnar ingest.  The bargain is only honest if the
instrumentation is priced: **disabled tracing must cost ≤2%** on the
E14 ingest and E19 standing-serving paths (one attribute load + branch
per guarded site), and **enabled tracing ≤5%** (one ring append per
span).  E20 measures both, with the same paired/interleaved wall-clock
discipline E19b established:

* **Ingest overhead** — the identical columnar commit stream (with a
  registered standing grid, so the E19 per-commit listener path is in
  the loop) into three stores: a baseline pass and a second
  tracer-disabled pass (the A/A control that prices the guard branches
  *and* the methodology's noise floor together), plus a tracer-enabled
  pass.  Commits rotate store order and stalled commits (wall above
  1.5× that side's median) are excluded pairwise.

* **Standing serving** — an E19-style hub tick loop (standing engine
  registered, every read served from maintained state through the
  ``hub.query`` → ``standing.read`` span pair) where each tick's query
  sweep runs three times — baseline-disabled, again-disabled (A/A), and
  enabled — in rotating order with standing snapshots cleared before
  every sweep so each does identical work.  Result equality between the
  disabled and enabled sweeps is asserted on sampled ticks (spans must
  never perturb values).

Gates (full run only; ``--smoke`` checks wiring + exactness):
``disabled_overhead ≤ 1.02`` and ``enabled_overhead ≤ 1.05`` on both
halves.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.core.runtime import QueryHub
from repro.experiments.standing_exp import (
    METRIC,
    _intern,
    _loop_queries,
    _node_ids,
    _prefill,
    _values_at,
)
from repro.obs.trace import TRACER
from repro.query import MetricQuery, QueryEngine
from repro.query.fuse import widen
from repro.query.standing import StandingQueryEngine
from repro.telemetry.tsdb import TimeSeriesStore

#: (mode name, tracer enabled?) — "base" and "off" are both disabled;
#: their ratio is the A/A control that prices the guard branch at the
#: methodology's own noise floor.
_MODES = (("base", False), ("off", False), ("on", True))


def _set_tracer(enabled: bool) -> None:
    if enabled:
        TRACER.enable()
    else:
        TRACER.disable()


def _keep_mask(walls: Dict[str, np.ndarray]) -> np.ndarray:
    """Pairwise stall exclusion: drop rounds where any side stalled."""
    keep = np.ones(next(iter(walls.values())).shape, dtype=bool)
    for w in walls.values():
        keep &= w < 1.5 * np.median(w)
    return keep


def run_obs_ingest_overhead(
    *,
    seed: int = 0,
    n_series: int = 4096,
    ticks: int = 30,
    rounds: int = 8,
    sample_period_s: float = 10.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
) -> Dict[str, float]:
    """E20a: tracing overhead on the columnar ingest + standing-update path."""
    node_ids = _node_ids(n_series)
    rng = np.random.default_rng(seed)
    base = np.clip(rng.normal(0.5, 0.2, size=n_series), 0.05, 0.95)
    n_commits = ticks * rounds
    capacity = n_commits + ticks + 16

    shape = MetricQuery(METRIC, agg="mean", range_s=window_s, step_s=step_s,
                        group_by=("node",))
    # Three identical stores all receiving every commit, but the tracer
    # *state* rotates over the store slots per commit — each state visits
    # each store equally often, so store-identity effects (allocation
    # order, page locality) cancel out of the state-vs-state ratios.
    stores: List[TimeSeriesStore] = []
    ids: List[np.ndarray] = []
    for _ in _MODES:
        store = TimeSeriesStore(default_capacity=capacity)
        st = StandingQueryEngine(QueryEngine(store, enable_cache=False))
        assert st.register(shape)
        stores.append(store)
        ids.append(_intern(store, node_ids))

    def commit(slot: int, t: float, values: np.ndarray) -> float:
        wall_t0 = time.perf_counter()
        stores[slot].append_batch(ids[slot], np.full(n_series, t), values)
        return time.perf_counter() - wall_t0

    was_enabled = TRACER.enabled
    try:
        TRACER.disable()
        for tick in range(ticks):  # untimed warm-up on every side
            t = (tick + 1) * sample_period_s
            values = _values_at(base, t)
            for slot in range(len(_MODES)):
                commit(slot, t, values)
        walls = {mode: np.empty(n_commits) for mode, _ in _MODES}
        for i in range(n_commits):
            t = (ticks + i + 1) * sample_period_s
            values = _values_at(base, t)
            for slot in range(len(_MODES)):
                mode, enabled = _MODES[(i + slot) % len(_MODES)]
                _set_tracer(enabled)
                walls[mode][i] = commit(slot, t, values)
            TRACER.disable()
    finally:
        _set_tracer(was_enabled)

    keep = _keep_mask(walls)
    sums = {mode: float(w[keep].sum()) for mode, w in walls.items()}
    samples = float(n_series * int(keep.sum()))
    return {
        "seed": float(seed),
        "n_series": float(n_series),
        "commits": float(keep.sum()),
        "base_samples_per_s": samples / sums["base"],
        "disabled_samples_per_s": samples / sums["off"],
        "enabled_samples_per_s": samples / sums["on"],
        "disabled_overhead": sums["off"] / sums["base"],
        "enabled_overhead": sums["on"] / sums["base"],
    }


def run_obs_standing_overhead(
    *,
    seed: int = 0,
    n_loops: int = 64,
    nodes_per_loop: int = 8,
    ticks: int = 30,
    period_s: float = 60.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
    sample_period_s: float = 10.0,
    check_every: int = 5,
    repeats: int = 3,
) -> Dict[str, float]:
    """E20b: tracing overhead on the E19 standing hub-serving path."""
    n_nodes = n_loops * nodes_per_loop
    node_ids = _node_ids(n_nodes)
    rng = np.random.default_rng(seed)
    base = np.clip(rng.normal(0.5, 0.2, size=n_nodes), 0.05, 0.95)
    capacity = int((window_s + ticks * period_s) / sample_period_s) + 16
    queries = _loop_queries(node_ids, n_loops, window_s, step_s)
    commits_per_tick = int(round(period_s / sample_period_s))

    store = TimeSeriesStore(default_capacity=capacity)
    engine = QueryEngine(store, enable_cache=False)
    st = StandingQueryEngine(engine)
    hub = QueryHub(engine, fuse=True, standing=st)
    # the loops' narrow reads all widen to one shared shape; registering
    # it up front means every hub read runs hub.query -> standing.read
    # (the instrumented pair being priced) from the first tick
    assert st.register(widen(queries[0]))
    sids = _intern(store, node_ids)
    _prefill(store, sids, base, window_s, sample_period_s)

    walls = {mode: np.empty(ticks) for mode, _ in _MODES}
    mismatches = 0
    standing_reads_before = st.stats()["reads_served"]
    was_enabled = TRACER.enabled
    spans_recorded = 0
    try:
        TRACER.disable()
        TRACER.reset()
        for tick in range(ticks):
            t_tick = window_s + (tick + 1) * period_s
            for j in range(commits_per_tick):
                t = t_tick - period_s + (j + 1) * sample_period_s
                store.append_batch(sids, np.full(n_nodes, float(t)),
                                   _values_at(base, t))
            results: Dict[str, List] = {}
            # min over `repeats` sweeps per mode filters scheduler noise
            # (the overhead being priced is a few percent; a single
            # preemption mid-sweep is bigger than that)
            for rep in range(repeats):
                for j in range(len(_MODES)):
                    mode, enabled = _MODES[(tick + rep + j) % len(_MODES)]
                    st.clear_snapshots()  # identical work per sweep
                    _set_tracer(enabled)
                    wall_t0 = time.perf_counter()
                    results[mode] = [hub.query(q, at=t_tick) for q in queries]
                    wall = time.perf_counter() - wall_t0
                    TRACER.disable()
                    if rep == 0 or wall < walls[mode][tick]:
                        walls[mode][tick] = wall
            if tick % check_every == 0:  # spans must not perturb values
                for got, want in zip(results["on"], results["base"]):
                    ok = len(got.series) == len(want.series) and all(
                        a.labels == b.labels
                        and np.array_equal(a.values, b.values)
                        for a, b in zip(got.series, want.series)
                    )
                    mismatches += 0 if ok else 1
        spans_recorded = len(TRACER)
    finally:
        TRACER.reset()
        _set_tracer(was_enabled)

    keep = _keep_mask(walls)
    sums = {mode: float(w[keep].sum()) for mode, w in walls.items()}
    served = (st.stats()["reads_served"] - standing_reads_before)
    queries_counted = float(n_loops * int(keep.sum()))
    return {
        "seed": float(seed),
        "n_loops": float(n_loops),
        "n_series": float(n_nodes),
        "ticks": float(keep.sum()),
        "base_queries_per_s": queries_counted / sums["base"],
        "disabled_queries_per_s": queries_counted / sums["off"],
        "enabled_queries_per_s": queries_counted / sums["on"],
        "disabled_overhead": sums["off"] / sums["base"],
        "enabled_overhead": sums["on"] / sums["base"],
        "standing_served": float(served),
        "spans_recorded": float(spans_recorded),
        "match": 1.0 if mismatches == 0 else 0.0,
    }


def run_obs_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_loops: int = 64,
    ticks: int = 30,
) -> Dict[str, Dict[str, float]]:
    """Both E20 halves with shared sizing (the CLI/CI entry)."""
    return {
        "ingest": run_obs_ingest_overhead(seed=seed, n_series=n_series, ticks=ticks),
        "standing": run_obs_standing_overhead(
            seed=seed, n_loops=n_loops,
            nodes_per_loop=max(1, n_series // n_loops), ticks=ticks,
        ),
    }
