"""Storage-design experiment (E10, Section IV).

Measures the raw-data path (time-series insert rates, window/downsample
query latency, cardinality scaling) and the model-metadata path
(knowledge-base model registry and plan-record operations) that
Section IV says MODA storage designs must now balance.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.core.knowledge import KnowledgeBase, ModelEntry
from repro.core.types import Action, ExecutionResult, Plan
from repro.sim import RngRegistry
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def run_tsdb_ingest(
    *,
    seed: int = 0,
    n_series: int = 256,
    points_per_series: int = 2000,
    batch_size: int = 1,
) -> Dict[str, float]:
    """Insert throughput for point vs. batch writes at a given cardinality."""
    rng = RngRegistry(seed=seed).stream("tsdb")
    store = TimeSeriesStore(default_capacity=points_per_series)
    keys = [SeriesKey.of("m", series=str(i)) for i in range(n_series)]
    values = rng.normal(100.0, 10.0, size=points_per_series)
    times = np.arange(points_per_series, dtype=float)

    t0 = time.perf_counter()
    if batch_size <= 1:
        for key in keys:
            for t, v in zip(times, values):
                store.insert(key, float(t), float(v))
    else:
        for key in keys:
            for start in range(0, points_per_series, batch_size):
                end = start + batch_size
                store.insert_batch(key, times[start:end], values[start:end])
    elapsed = time.perf_counter() - t0
    total = n_series * points_per_series
    return {
        "n_series": float(n_series),
        "batch_size": float(batch_size),
        "points": float(total),
        "ingest_s": elapsed,
        "inserts_per_s": total / elapsed,
        "cardinality": float(store.cardinality()),
    }


def run_tsdb_queries(
    *,
    seed: int = 0,
    n_series: int = 256,
    points_per_series: int = 2000,
    n_queries: int = 500,
) -> Dict[str, float]:
    """Window-query and downsample latency on a populated store."""
    rng = RngRegistry(seed=seed).stream("tsdb-q")
    store = TimeSeriesStore(default_capacity=points_per_series)
    keys = [SeriesKey.of("m", series=str(i)) for i in range(n_series)]
    times = np.arange(points_per_series, dtype=float)
    for key in keys:
        store.insert_batch(key, times, rng.normal(100.0, 10.0, size=points_per_series))

    t0 = time.perf_counter()
    for i in range(n_queries):
        key = keys[i % n_series]
        store.query(key, points_per_series * 0.25, points_per_series * 0.75)
    query_us = (time.perf_counter() - t0) / n_queries * 1e6

    t0 = time.perf_counter()
    for i in range(n_queries):
        key = keys[i % n_series]
        store.downsample(key, 0.0, float(points_per_series), step=60.0, agg="mean")
    downsample_us = (time.perf_counter() - t0) / n_queries * 1e6
    return {
        "n_series": float(n_series),
        "query_us": query_us,
        "downsample_us": downsample_us,
    }


def run_knowledge_ops(*, n_models: int = 500, n_plans: int = 2000) -> Dict[str, float]:
    """Model-registry and plan-record throughput (metadata path)."""
    knowledge = KnowledgeBase()
    t0 = time.perf_counter()
    for i in range(n_models):
        knowledge.register_model(
            ModelEntry(
                f"model-{i}",
                model=object(),
                kind="forecaster",
                trained_at=float(i),
                metadata={"mae": 0.1, "n": 100.0},
            )
        )
    model_us = (time.perf_counter() - t0) / n_models * 1e6

    action = Action("extend", "j1", params={"extra_s": 100.0})
    t0 = time.perf_counter()
    for i in range(n_plans):
        plan = Plan(float(i), "p", actions=(action,))
        outcome = knowledge.record_plan(
            plan, [ExecutionResult(action, float(i), honored=True)]
        )
        knowledge.assess_outcome(outcome, 0.8, float(i))
    plan_us = (time.perf_counter() - t0) / n_plans * 1e6
    return {
        "n_models": float(n_models),
        "model_register_us": model_us,
        "n_plans": float(n_plans),
        "plan_record_assess_us": plan_us,
        "effectiveness": knowledge.effectiveness() or 0.0,
    }
