"""Loop-fleet scenarios (experiment E15).

The runtime's scaling claim is that Monitor-phase cost is **sub-linear
in the number of hosted loops** when their reads go through the shared
query hub: a fleet of per-partition loops issuing structurally identical
selections costs one *fused* (widened, cached) query pass per tick
instead of N ad-hoc store scans.  E15 measures exactly that: the same
256-instance watch fleet over per-node utilization telemetry, run once
with fusion + caching disabled (per-loop ad-hoc scans — the seed idiom)
and once through the fused hub, with identical analyzer verdicts
asserted.  A second measurement bounds the runtime's hosting overhead:
the same loops hand-wired as bare ``MAPEKLoop`` + private uncached
engines (the 5-loop seed wiring) vs. hosted on a ``LoopRuntime``.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.component import Analyzer, Executor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop
from repro.core.runtime import (
    LoopRuntime,
    LoopSpec,
    MonitorQuery,
    QueryHub,
    QueryMonitor,
    RuntimeConfig,
)
from repro.core.types import AnalysisReport, ExecutionResult, Observation, Plan, Symptom
from repro.query.engine import QueryEngine
from repro.sim import Engine, RngRegistry
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


# ---------------------------------------------------------------------------
# Minimal watch-loop components (monitor-heavy fleet: analyze flags hot
# nodes, plan stays empty — E15 isolates Monitor-phase cost)


class UtilWatchAnalyzer(Analyzer):
    """Flags nodes whose recent mean utilization exceeds a threshold."""

    name = "util-watch-analyzer"

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold
        self.flags_total = 0

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        symptoms = []
        for key, value in observation.values.items():
            if key.startswith("util:") and value > self.threshold:
                symptoms.append(
                    Symptom(f"hot:{key[5:]}", min(1.0, value), evidence=f"util={value:.2f}")
                )
        self.flags_total += len(symptoms)
        return AnalysisReport(observation.time, self.name, tuple(symptoms))


class SilentPlanner(Planner):
    """Never plans actions (watch-only loops)."""

    name = "silent-planner"

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        return Plan(report.time, self.name)


class NullExecutor(Executor):
    name = "null-executor"

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        return []


def watch_fleet_specs(
    metric: str,
    node_ids: Sequence[str],
    n_loops: int,
    *,
    period_s: float = 60.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
    threshold: float = 0.8,
    cluster_query: bool = False,
    name_prefix: str = "watch",
) -> List[LoopSpec]:
    """One watch-loop spec per contiguous node partition.

    Every spec's monitor is a declarative grouped range query over its
    partition — the fleet shape the fused hub is built for.  With
    ``cluster_query`` each loop additionally reads the fleet-wide mean
    (context for its local verdicts): under per-loop ad-hoc serving that
    identical expression costs one full-store scan *per loop* per tick;
    under the shared hub it is computed once and served from cache.
    """
    if n_loops <= 0 or not node_ids:
        return []
    partitions = np.array_split(np.asarray(node_ids, dtype=object), n_loops)
    queries_extra = (
        (MonitorQuery("cluster", f"mean({metric}[{window_s:g}s])"),) if cluster_query else ()
    )
    specs = []
    for i, part in enumerate(partitions):
        if part.size == 0:
            continue
        alternation = "|".join(re.escape(str(n)) for n in part)
        expr = (
            f'mean({metric}{{node=~"{alternation}"}}[{window_s:g}s] by {step_s:g}s) '
            "group by (node)"
        )

        def build(now: float, inputs, _prefix=f"{name_prefix}-{i}") -> Optional[Observation]:
            result = inputs["util"]
            values = {
                f"util:{series.label('node')}": float(series.values[-1])
                for series in result.series
                if series.values.size
            }
            if not values:
                return None
            cluster = inputs.get("cluster")
            if cluster is not None:
                pooled = cluster.scalar()
                if pooled is not None:
                    values["cluster_mean"] = pooled
            return Observation(now, _prefix, values=values)

        specs.append(
            LoopSpec(
                name=f"{name_prefix}-{i:04d}",
                queries=(MonitorQuery("util", expr),) + queries_extra,
                build_observation=build,
                analyzer_factory=lambda: UtilWatchAnalyzer(threshold),
                planner_factory=SilentPlanner,
                executor_factory=NullExecutor,
                period_s=period_s,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Scenario


def _fill_store(
    store: TimeSeriesStore,
    node_ids: Sequence[str],
    metric: str,
    horizon_s: float,
    sample_period_s: float,
    seed: int,
    hot_fraction: float,
) -> None:
    """Deterministic per-node utilization series with a hot subset."""
    rngs = RngRegistry(seed=seed)
    grid = np.arange(0.0, horizon_s, sample_period_s)
    for idx, node in enumerate(node_ids):
        rng = rngs.fork("util", idx)
        base = 0.95 if rng.random() < hot_fraction else 0.35
        values = np.clip(base + rng.normal(0.0, 0.05, size=grid.size), 0.0, 1.0)
        store.insert_batch(SeriesKey.of(metric, node=node), grid, values)


def _run_fleet(
    *,
    node_ids: Sequence[str],
    n_loops: int,
    seed: int,
    horizon_s: float,
    ticks: int,
    period_s: float,
    window_s: float,
    sample_period_s: float,
    hot_fraction: float,
    config: RuntimeConfig,
    make_store=None,
    make_query_engine=None,
) -> Dict[str, float]:
    """One fleet run; returns wall time, flag counts, and hub stats.

    ``make_store(capacity)`` / ``make_query_engine(store, config)``
    substitute the storage and serving tier (the E18 reruns host the
    same fleet on the sharded and process-parallel engines); the store
    is closed after the run when it exposes ``close()``.
    """
    engine = Engine()
    capacity = int(horizon_s / sample_period_s) + 16
    store = (
        make_store(capacity) if make_store is not None
        else TimeSeriesStore(default_capacity=capacity)
    )
    _fill_store(store, node_ids, "node_cpu_util", horizon_s, sample_period_s, seed, hot_fraction)
    query_engine = make_query_engine(store, config) if make_query_engine is not None else None
    runtime = LoopRuntime(engine, store, query_engine=query_engine, config=config)
    specs = watch_fleet_specs(
        "node_cpu_util",
        node_ids,
        n_loops,
        period_s=period_s,
        window_s=window_s,
        cluster_query=True,
    )
    # start past the warm-up window so every tick sees a full window
    for spec in specs:
        spec.start_at = window_s
    runtime.add_many(specs, start=True)
    wall_t0 = time.perf_counter()
    engine.run(until=window_s + ticks * period_s - 1.0)
    wall_s = time.perf_counter() - wall_t0
    runtime.stop()
    flags = sum(h.loop.analyzer.flags_total for h in runtime.handles.values())
    cycle_ms = sum(
        it.wall_ms for h in runtime.handles.values() for it in h.loop.iterations
    )
    qe = runtime.query_engine
    out = {
        "wall_s": wall_s,
        "cycle_ms": cycle_ms,
        "flags": float(flags),
        "iterations": float(runtime.iterations_total),
        # served_raw/rollup count real executions; cache hits don't
        "queries_executed": float(qe.served_raw + qe.served_rollup),
    }
    out.update({k: v for k, v in runtime.hub.stats().items() if not k.startswith("engine_")})
    # self-telemetry round trip: loops are monitorable through the store
    mean_ms = runtime.query_engine.scalar(
        "mean(loop_iteration_ms)", at=engine.now
    )
    out["mean_loop_iteration_ms"] = float(mean_ms) if mean_ms is not None else float("nan")
    close = getattr(store, "close", None)
    if close is not None:
        close()
    return out


def run_loop_fleet_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 256,
    nodes_per_loop: int = 2,
    ticks: int = 10,
    period_s: float = 60.0,
    window_s: float = 600.0,
    sample_period_s: float = 10.0,
    hot_fraction: float = 0.1,
) -> Dict[str, float]:
    """E15: fused monitoring vs per-loop ad-hoc scans at fleet scale."""
    n_nodes = n_loops * nodes_per_loop
    node_ids = [f"n{i:04d}" for i in range(n_nodes)]
    horizon_s = window_s + ticks * period_s
    common = dict(
        node_ids=node_ids,
        n_loops=n_loops,
        seed=seed,
        horizon_s=horizon_s,
        ticks=ticks,
        period_s=period_s,
        window_s=window_s,
        sample_period_s=sample_period_s,
        hot_fraction=hot_fraction,
    )
    adhoc = _run_fleet(
        config=RuntimeConfig(fuse_queries=False, enable_cache=False), **common
    )
    fused = _run_fleet(config=RuntimeConfig(), **common)
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "n_nodes": float(n_nodes),
        "ticks": float(ticks),
        "adhoc_wall_s": adhoc["wall_s"],
        "fused_wall_s": fused["wall_s"],
        "wall_speedup": adhoc["wall_s"] / max(fused["wall_s"], 1e-12),
        # cycle wall: host time spent inside loop cycles (monitor-dominated
        # for watch loops) — the per-loop serving cost the fusion targets
        "adhoc_cycle_ms": adhoc["cycle_ms"],
        "fused_cycle_ms": fused["cycle_ms"],
        "monitor_speedup": adhoc["cycle_ms"] / max(fused["cycle_ms"], 1e-9),
        "adhoc_queries": adhoc["queries_executed"],
        "fused_queries": fused["queries_executed"],
        "fused_served": fused["fused_served"],
        "flags_adhoc": adhoc["flags"],
        "flags_fused": fused["flags"],
        "match": 1.0 if adhoc["flags"] == fused["flags"] else 0.0,
        "iterations": fused["iterations"],
        "mean_loop_iteration_ms": fused["mean_loop_iteration_ms"],
    }


def run_runtime_overhead(
    *,
    seed: int = 0,
    n_loops: int = 5,
    nodes_per_loop: int = 4,
    ticks: int = 200,
    period_s: float = 60.0,
    window_s: float = 600.0,
    sample_period_s: float = 10.0,
) -> Dict[str, float]:
    """Hosting overhead: LoopRuntime vs hand-wired seed-style loops.

    Both sides run the identical watch components over identical data;
    the hand-wired side is the pre-runtime idiom — bare ``MAPEKLoop``
    per case, each monitor querying a private uncached engine.
    """
    n_nodes = n_loops * nodes_per_loop
    node_ids = [f"n{i:04d}" for i in range(n_nodes)]
    horizon_s = window_s + ticks * period_s

    def fresh_store() -> TimeSeriesStore:
        store = TimeSeriesStore(default_capacity=int(horizon_s / sample_period_s) + 16)
        _fill_store(store, node_ids, "node_cpu_util", horizon_s, sample_period_s, seed, 0.1)
        return store

    until = window_s + ticks * period_s - 1.0

    # --- hand-wired: one loop per case, private uncached engines --------
    engine = Engine()
    store = fresh_store()
    specs = watch_fleet_specs(
        "node_cpu_util", node_ids, n_loops, period_s=period_s, window_s=window_s
    )
    loops: List[MAPEKLoop] = []
    for spec in specs:
        hub = QueryHub(QueryEngine(store, enable_cache=False), fuse=False)
        loop = MAPEKLoop(
            engine,
            spec.name,
            monitor=QueryMonitor(spec.name, spec.queries, spec.build_observation, hub),
            analyzer=spec.analyzer_factory(),
            planner=spec.planner_factory(),
            executor=spec.executor_factory(),
            period_s=spec.period_s,
        )
        loop.start(start_at=window_s)
        loops.append(loop)
    wall_t0 = time.perf_counter()
    engine.run(until=until)
    legacy_wall_s = time.perf_counter() - wall_t0
    legacy_iterations = sum(lp.iterations_run for lp in loops)

    # --- runtime-hosted ---------------------------------------------------
    engine = Engine()
    store = fresh_store()
    runtime = LoopRuntime(engine, store)
    specs = watch_fleet_specs(
        "node_cpu_util", node_ids, n_loops, period_s=period_s, window_s=window_s
    )
    for spec in specs:
        spec.start_at = window_s
    runtime.add_many(specs, start=True)
    wall_t0 = time.perf_counter()
    engine.run(until=until)
    hosted_wall_s = time.perf_counter() - wall_t0

    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "ticks": float(ticks),
        "legacy_wall_s": legacy_wall_s,
        "hosted_wall_s": hosted_wall_s,
        "overhead_ratio": hosted_wall_s / max(legacy_wall_s, 1e-12),
        "iterations_match": 1.0 if runtime.iterations_total == legacy_iterations else 0.0,
    }
