"""Process-parallel shard execution experiment (E18, Section IV).

PR 7 moves shard columns into ``multiprocessing.shared_memory`` and runs
the per-shard scatter/append/fold passes on a persistent worker-process
pool (:mod:`repro.shard.parallel`).  The gather stays the canonical
single-process lexsort/reduceat merge, so the parallel tier must be
**bit-identical** to the serial federated engine for every worker
count — that is asserted here and property-tested against the
single-shard oracle in ``tests/shard/test_parallel.py``.  E18 measures
four things on identical data:

* **Scatter speedup** — the E16 ``group_by`` dashboard query served by
  the serial :class:`~repro.shard.FederatedQueryEngine` vs the
  :class:`~repro.shard.ParallelFederatedQueryEngine` dispatching
  per-shard partial aggregation to the pool.  Gated ≥2.5× at 4 workers
  × 8 shards (4096 series) on a multi-core host.
* **Shared-memory layout overhead** — the identical commit stream into
  plain sharded rings vs shared-memory rings with the pool *off* (the
  pure layout cost, CPU-count independent).  Gated ≤1.2×.
* **E15 fleet rerun** — the fused watch fleet hosted once on the serial
  sharded engine and once on the parallel engine; analyzer verdicts
  must match exactly.
* **E17 supervision rerun** — the self-healing scenario supervised over
  both engines; the audited action traces must be identical and the
  parallel run must still restore staleness within 2× of healthy.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.core.runtime import RuntimeConfig
from repro.experiments.loops_exp import _run_fleet
from repro.experiments.shard_exp import (
    _fill,
    _intern,
    _results_bit_identical,
    _series_keys,
)
from repro.experiments.supervise_exp import run_supervision_scenario
from repro.query.model import MetricQuery
from repro.shard import (
    FederatedQueryEngine,
    ParallelFederatedQueryEngine,
    ParallelShardedStore,
    ShardedTimeSeriesStore,
)


def _check_queries(at: float, step_s: float) -> List[MetricQuery]:
    """The query shapes every scatter pass must serve bit-identically."""
    return [
        MetricQuery("m", agg="mean", range_s=at, step_s=step_s, group_by=("node",)),
        MetricQuery("m", agg="sum", range_s=at, step_s=step_s),
        MetricQuery("m", agg="p95", range_s=at, step_s=step_s, group_by=("node",)),
        MetricQuery("m", agg="rate", range_s=at, step_s=step_s, group_by=("node",)),
        MetricQuery("m", agg="max", range_s=at / 2.0),
    ]


def run_parallel_scatter_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    workers: int = 4,
    ticks: int = 64,
    sample_period_s: float = 10.0,
    step_s: float = 60.0,
    n_queries: int = 5,
    repeats: int = 3,
    identical_worker_counts=(1, 2, 3),
) -> Dict[str, float]:
    """Parallel vs serial federated ``group_by`` serving on identical data.

    Exactness first: for every worker count in
    ``identical_worker_counts`` plus the measured ``workers``, a fresh
    parallel store is filled *through the pool* and every check query
    (range/instant/rate/p95) plus a raw ``samples()`` read must come out
    bit-identical to the serial federated engine — partition invariance
    extended across process boundaries.  Then the E16 dashboard query is
    timed on both engines.
    """
    rng = np.random.default_rng(seed)
    keys = _series_keys(n_series)
    base = rng.normal(100.0, 15.0, size=n_series)
    capacity = ticks + 8
    at = ticks * sample_period_s

    serial_store = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=capacity)
    _fill(serial_store, _intern(serial_store, keys), ticks, sample_period_s, base)
    serial = FederatedQueryEngine(serial_store, enable_cache=False)
    queries = _check_queries(at, step_s)
    want = [serial.query(q, at=at) for q in queries]
    want_samples = serial.samples(queries[0], at=at)

    bit_identical = True
    counts = sorted(set(tuple(identical_worker_counts) + (workers,)))
    timed_engine = None
    timed_store = None
    for w in counts:
        store = ParallelShardedStore(
            n_shards=n_shards, default_capacity=capacity, workers=w
        )
        store.start_parallel()
        _fill(store, _intern(store, keys), ticks, sample_period_s, base)
        engine = ParallelFederatedQueryEngine(store, enable_cache=False)
        for q, ref in zip(queries, want):
            if not _results_bit_identical(engine.query(q, at=at), ref):
                bit_identical = False
        pt, pv = engine.samples(queries[0], at=at)
        if not (
            np.array_equal(pt, want_samples[0]) and np.array_equal(pv, want_samples[1])
        ):
            bit_identical = False
        if engine.serial_fallbacks:
            bit_identical = False  # a fallback means the pool never ran
        if w == workers:
            timed_engine, timed_store = engine, store
        else:
            store.close()

    query = queries[0]

    def timed(engine_obj) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for q_i in range(n_queries):
                engine_obj.query(query, at=at - q_i * sample_period_s)
            best = min(best, time.perf_counter() - t0)
        return best / n_queries

    serial_s = timed(serial)
    parallel_s = timed(timed_engine)
    scatters = timed_engine.parallel_scatters
    timed_store.close()
    return {
        "n_series": float(n_series),
        "n_shards": float(n_shards),
        "workers": float(workers),
        "points": float(serial_store.total_inserts),
        "serial_query_ms": serial_s * 1e3,
        "parallel_query_ms": parallel_s * 1e3,
        "serial_queries_per_s": 1.0 / serial_s,
        "parallel_queries_per_s": 1.0 / parallel_s,
        "scatter_speedup": serial_s / parallel_s,
        "parallel_scatters": float(scatters),
        "worker_counts_checked": float(len(counts)),
        "bit_identical": float(bit_identical),
    }


def run_parallel_ingest_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    workers: int = 2,
    ticks: int = 64,
    sample_period_s: float = 10.0,
    repeats: int = 3,
) -> Dict[str, float]:
    """The identical commit stream through three ingest tiers.

    * plain sharded rings (the PR 4 serial baseline),
    * shared-memory rings with the pool **off** — the pure layout cost
      (``shm_overhead``, gated ≤1.2×, independent of CPU count),
    * shared-memory rings with per-shard appends executing on the pool.

    All three stores must come out bit-identical.
    """
    rng = np.random.default_rng(seed)
    keys = _series_keys(n_series)
    base = rng.normal(100.0, 15.0, size=n_series)
    capacity = ticks + 8

    serial_wall = float("inf")
    serial_store = None
    for _ in range(repeats):
        serial_store = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=capacity)
        serial_wall = min(
            serial_wall,
            _fill(serial_store, _intern(serial_store, keys), ticks, sample_period_s, base),
        )

    def filled_parallel(start_pool: bool):
        store = ParallelShardedStore(
            n_shards=n_shards, default_capacity=capacity, workers=workers
        )
        if start_pool:
            store.start_parallel()
        wall = _fill(store, _intern(store, keys), ticks, sample_period_s, base)
        return store, wall

    shm_wall = float("inf")
    shm_store = None
    for _ in range(repeats):
        if shm_store is not None:
            shm_store.close()
        shm_store, wall = filled_parallel(start_pool=False)
        shm_wall = min(shm_wall, wall)

    parallel_wall = float("inf")
    parallel_store = None
    for _ in range(repeats):
        if parallel_store is not None:
            parallel_store.close()
        parallel_store, wall = filled_parallel(start_pool=True)
        parallel_wall = min(parallel_wall, wall)

    match = True
    for key in keys:
        st, sv = serial_store.query(key, -np.inf, np.inf)
        for store in (shm_store, parallel_store):
            t, v = store.query(key, -np.inf, np.inf)
            if not (np.array_equal(st, t) and np.array_equal(sv, v)):
                match = False
                break
        if not match:
            break
    appends = parallel_store.parallel_appends
    shm_store.close()
    parallel_store.close()

    samples = float(serial_store.total_inserts)
    return {
        "n_series": float(n_series),
        "n_shards": float(n_shards),
        "workers": float(workers),
        "samples": samples,
        "serial_samples_per_s": samples / serial_wall,
        "shm_samples_per_s": samples / shm_wall,
        "parallel_samples_per_s": samples / parallel_wall,
        "shm_overhead": shm_wall / serial_wall,
        "parallel_ingest_speedup": serial_wall / parallel_wall,
        "parallel_appends": float(appends),
        "match": float(match),
    }


# ---------------------------------------------------------------------------
# E15/E17 fleet reruns on the parallel engine


def _sharded_factories(n_shards: int):
    def make_store(capacity: int):
        return ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=capacity)

    def make_engine(store, config):
        return FederatedQueryEngine(store, enable_cache=config.enable_cache)

    return make_store, make_engine


def _parallel_factories(n_shards: int, workers: int, captured: Dict):
    def make_store(capacity: int):
        store = ParallelShardedStore(
            n_shards=n_shards, default_capacity=capacity, workers=workers
        )
        store.start_parallel()
        return store

    def make_engine(store, config):
        engine = ParallelFederatedQueryEngine(store, enable_cache=config.enable_cache)
        captured["engine"] = engine
        return engine

    return make_store, make_engine


def run_parallel_fleet_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 64,
    nodes_per_loop: int = 2,
    ticks: int = 6,
    n_shards: int = 4,
    workers: int = 2,
    period_s: float = 60.0,
    window_s: float = 600.0,
    sample_period_s: float = 10.0,
    hot_fraction: float = 0.1,
) -> Dict[str, float]:
    """E15 rerun: the fused watch fleet hosted on the parallel engine.

    The same fleet runs once over the serial sharded engine and once
    over the shared-memory/worker-pool engine; analyzer verdicts must
    match exactly (the fleet cannot tell which tier served it).
    """
    n_nodes = n_loops * nodes_per_loop
    common = dict(
        node_ids=[f"n{i:04d}" for i in range(n_nodes)],
        n_loops=n_loops,
        seed=seed,
        horizon_s=window_s + ticks * period_s,
        ticks=ticks,
        period_s=period_s,
        window_s=window_s,
        sample_period_s=sample_period_s,
        hot_fraction=hot_fraction,
    )
    s_store, s_engine = _sharded_factories(n_shards)
    serial = _run_fleet(
        config=RuntimeConfig(), make_store=s_store, make_query_engine=s_engine, **common
    )
    captured: Dict = {}
    p_store, p_engine = _parallel_factories(n_shards, workers, captured)
    parallel = _run_fleet(
        config=RuntimeConfig(), make_store=p_store, make_query_engine=p_engine, **common
    )
    engine = captured["engine"]
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "n_shards": float(n_shards),
        "workers": float(workers),
        "serial_wall_s": serial["wall_s"],
        "parallel_wall_s": parallel["wall_s"],
        "flags_serial": serial["flags"],
        "flags_parallel": parallel["flags"],
        "match": 1.0 if serial["flags"] == parallel["flags"] else 0.0,
        "iterations": parallel["iterations"],
        "parallel_scatters": float(engine.parallel_scatters),
        "serial_fallbacks": float(engine.serial_fallbacks),
    }


def run_parallel_supervision_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 32,
    n_shards: int = 4,
    workers: int = 2,
    **kwargs,
) -> Dict[str, float]:
    """E17 rerun: self-healing supervision over the parallel engine.

    Both runs are deterministic and both engines serve bit-identical
    query results, so the supervisors must take the *identical* audited
    action trace on either tier — asserted here alongside the healing
    bound itself.
    """
    s_store, s_engine = _sharded_factories(n_shards)
    serial = run_supervision_scenario(
        seed=seed, n_loops=n_loops, supervise=True,
        make_store=s_store, make_query_engine=s_engine, **kwargs,
    )
    captured: Dict = {}
    p_store, p_engine = _parallel_factories(n_shards, workers, captured)
    parallel = run_supervision_scenario(
        seed=seed, n_loops=n_loops, supervise=True,
        make_store=p_store, make_query_engine=p_engine, **kwargs,
    )
    healthy = float(parallel["healthy_p95_s"])
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "n_shards": float(n_shards),
        "workers": float(workers),
        "healthy_p95_s": healthy,
        "final_p95_s": float(parallel["final_p95_s"]),
        "restores_within_2x": 1.0
        if parallel["final_p95_s"] <= 2.0 * healthy
        else 0.0,
        "restarts": float(parallel["restarts"]),
        "restarts_match": 1.0 if serial["restarts"] == parallel["restarts"] else 0.0,
        "trace_match": 1.0 if serial["trace"] == parallel["trace"] else 0.0,
        "serial_fallbacks": float(captured["engine"].serial_fallbacks),
    }


def run_parallel_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    workers: int = 4,
    ticks: int = 64,
    repeats: int = 3,
    fleet_loops: int = 64,
    supervise_loops: int = 32,
) -> Dict[str, Dict[str, float]]:
    """All four E18 measurements with shared sizing (the CLI/CI entry)."""
    return {
        "scatter": run_parallel_scatter_benchmark(
            seed=seed, n_series=n_series, n_shards=n_shards, workers=workers,
            ticks=ticks, repeats=repeats,
        ),
        "ingest": run_parallel_ingest_benchmark(
            seed=seed, n_series=n_series, n_shards=n_shards,
            workers=min(workers, 2), ticks=ticks, repeats=repeats,
        ),
        "fleet": run_parallel_fleet_benchmark(
            seed=seed, n_loops=fleet_loops, n_shards=min(n_shards, 4),
            workers=min(workers, 2),
        ),
        "supervise": run_parallel_supervision_benchmark(
            seed=seed, n_loops=supervise_loops, n_shards=min(n_shards, 4),
            workers=min(workers, 2),
        ),
    }
