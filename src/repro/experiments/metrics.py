"""Evaluation metrics shared by the experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.cluster.job import JobState
from repro.cluster.scheduler import Scheduler


@dataclass(frozen=True)
class JobOutcomeSummary:
    """Aggregate job outcomes of one scheduler run."""

    n_submitted: int
    n_completed: int
    n_timeout: int
    n_failed: int
    n_killed_maintenance: int
    completion_rate: float
    wasted_node_hours: float
    mean_wait_s: float
    utilization: float
    extensions_requested: int
    extensions_granted: int
    extensions_denied: int
    extension_hours_granted: float
    overhang_node_hours: float

    @staticmethod
    def from_scheduler(scheduler: Scheduler, horizon_s: float) -> "JobOutcomeSummary":
        jobs = list(scheduler.jobs.values())
        terminal = [j for j in jobs if j.is_terminal]
        completed = [j for j in terminal if j.state is JobState.COMPLETED]
        lost = [
            j
            for j in terminal
            if j.state in (JobState.TIMEOUT, JobState.FAILED, JobState.KILLED_MAINTENANCE)
        ]
        wasted = sum(j.node_seconds() for j in lost) / 3600.0
        waits = [j.wait_time for j in jobs if j.wait_time is not None]
        stats = scheduler.stats
        return JobOutcomeSummary(
            n_submitted=stats.submitted,
            n_completed=stats.completed,
            n_timeout=stats.timeout,
            n_failed=stats.failed,
            n_killed_maintenance=stats.killed_maintenance,
            completion_rate=(len(completed) / len(terminal)) if terminal else 0.0,
            wasted_node_hours=wasted,
            mean_wait_s=float(np.mean(waits)) if waits else 0.0,
            utilization=scheduler.utilization(),
            extensions_requested=stats.extensions_requested,
            extensions_granted=stats.extensions_granted,
            extensions_denied=stats.extensions_denied,
            extension_hours_granted=stats.extension_seconds_granted / 3600.0,
            overhang_node_hours=stats.overhang_node_seconds / 3600.0,
        )

    def as_row(self) -> Dict[str, float]:
        return {
            "submitted": self.n_submitted,
            "completed": self.n_completed,
            "timeout": self.n_timeout,
            "maint_killed": self.n_killed_maintenance,
            "completion_rate": round(self.completion_rate, 3),
            "wasted_nh": round(self.wasted_node_hours, 2),
            "mean_wait_s": round(self.mean_wait_s, 1),
            "utilization": round(self.utilization, 3),
            "ext_req": self.extensions_requested,
            "ext_granted": self.extensions_granted,
            "ext_hours": round(self.extension_hours_granted, 2),
            "overhang_nh": round(self.overhang_node_hours, 2),
        }


def detection_metrics(
    predicted: Iterable[Tuple[str, str]],
    actual: Iterable[Tuple[str, str]],
) -> Dict[str, float]:
    """Precision/recall/F1 over ``(entity, label)`` pairs."""
    pred = set(predicted)
    act = set(actual)
    tp = len(pred & act)
    fp = len(pred - act)
    fn = len(act - pred)
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {
        "tp": float(tp),
        "fp": float(fp),
        "fn": float(fn),
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


def latency_summary(durations: Sequence[float]) -> Dict[str, float]:
    """Mean/percentile/CV summary of a latency sample."""
    if not durations:
        return {"n": 0.0}
    arr = np.asarray(durations, dtype=float)
    mean = float(arr.mean())
    return {
        "n": float(arr.size),
        "mean_s": mean,
        "p50_s": float(np.percentile(arr, 50)),
        "p95_s": float(np.percentile(arr, 95)),
        "p99_s": float(np.percentile(arr, 99)),
        "cv": float(arr.std() / mean) if mean > 0 else float("nan"),
    }
