"""Experiment harness: scenarios, metrics, and report rendering.

Every benchmark in ``benchmarks/`` calls a ``run_*`` scenario function
from this package; the same functions power ``repro.experiments.runner``
which regenerates the tables recorded in EXPERIMENTS.md.
"""

from repro.experiments.metrics import JobOutcomeSummary, detection_metrics
from repro.experiments.report import render_table
from repro.experiments.harness import aggregate_rows, replicate
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)
from repro.experiments.patterns_exp import PatternScenarioConfig, run_pattern_scenario
from repro.experiments.storage_exp import run_ioqos_scenario, run_ost_scenario
from repro.experiments.misconfig_exp import run_misconfig_scenario
from repro.experiments.pipeline_exp import run_pipeline_scenario
from repro.experiments.model_exp import run_forecaster_comparison, run_model_ablation
from repro.experiments.maintenance_exp import run_maintenance_scenario
from repro.experiments.tsdb_exp import run_knowledge_ops, run_tsdb_ingest, run_tsdb_queries
from repro.experiments.trust_exp import run_trust_sweep
from repro.experiments.interchange_exp import run_interchange_matrix
from repro.experiments.incentives import incentive_report, render_incentives
from repro.experiments.loops_exp import (
    run_loop_fleet_benchmark,
    run_runtime_overhead,
    watch_fleet_specs,
)

__all__ = [
    "JobOutcomeSummary",
    "PatternScenarioConfig",
    "SchedulerScenarioConfig",
    "aggregate_rows",
    "detection_metrics",
    "incentive_report",
    "render_incentives",
    "render_table",
    "replicate",
    "run_forecaster_comparison",
    "run_interchange_matrix",
    "run_ioqos_scenario",
    "run_knowledge_ops",
    "run_maintenance_scenario",
    "run_misconfig_scenario",
    "run_model_ablation",
    "run_ost_scenario",
    "run_pattern_scenario",
    "run_pipeline_scenario",
    "run_scheduler_scenario",
    "run_loop_fleet_benchmark",
    "run_runtime_overhead",
    "run_trust_sweep",
    "watch_fleet_specs",
    "run_tsdb_ingest",
    "run_tsdb_queries",
]
