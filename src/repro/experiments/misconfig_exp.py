"""Misconfiguration scenario (experiment E7).

Generates a labelled population of jobs — some well-configured, some
with known misconfigurations — runs the Misconfiguration loop, and
scores detection precision/recall plus the core-hours recovered by
online fixes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analytics.misconfig import MisconfigKind
from repro.cluster.application import ApplicationProfile, LaunchConfig
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.runtime import LoopRuntime
from repro.experiments.metrics import detection_metrics
from repro.loops.misconfig_loop import MisconfigCaseConfig, MisconfigCaseManager
from repro.sim import Engine, RngRegistry
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

#: misconfiguration kinds injected by the generator, with launch builders
_INJECTIONS = {
    "thread_core_mismatch": lambda cores: LaunchConfig(threads=max(1, cores // 8)),
    "wrong_library_path": lambda cores: LaunchConfig(
        library_paths=("generic-blas",), expected_libraries=("site-blas",)
    ),
}


def run_misconfig_scenario(
    *,
    seed: int = 0,
    n_jobs: int = 24,
    misconfig_fraction: float = 0.5,
    with_fixes: bool = True,
    horizon_s: float = 30_000.0,
) -> Dict[str, float]:
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    rng = rngs.stream("misconfig")
    store = TimeSeriesStore()
    n_nodes = n_jobs  # one node per job: every job runs immediately
    nodes = [Node(f"n{i:03d}", NodeSpec(cores=32)) for i in range(n_nodes)]
    scheduler = Scheduler(engine, nodes, rng=rngs.stream("scheduler"))
    # the case joins an explicit control plane: fused per-job utilization
    # queries, arbitration, and self-telemetry all flow through it
    control_plane = LoopRuntime(engine, store)
    case = MisconfigCaseManager(
        engine,
        scheduler,
        store,
        config=MisconfigCaseConfig(
            loop_period_s=120.0,
            min_runtime_s=300.0,
            observation_window_s=600.0,
            online_fixes_enabled=with_fixes,
        ),
        runtime=control_plane,
    )
    case.start()

    truth: Set[Tuple[str, str]] = set()
    jobs: List[Job] = []
    kinds = sorted(_INJECTIONS)
    for i in range(n_jobs):
        job_id = f"j{i:03d}"
        runtime = float(rng.uniform(4000.0, 8000.0))
        profile = ApplicationProfile(
            f"app{i % 4}", runtime, 1.0, marker_period_s=60.0, rate_noise_std=0.05
        )
        if rng.random() < misconfig_fraction:
            kind = kinds[int(rng.integers(len(kinds)))]
            launch = _INJECTIONS[kind](32)
            truth.add((job_id, kind))
        else:
            launch = LaunchConfig()
        job = Job(job_id, f"user{i % 4}", profile, walltime_request_s=runtime * 10, launch=launch)
        jobs.append(job)
        scheduler.submit(job)

    # per-node utilization telemetry derived from the running apps
    def sample() -> None:
        for node in nodes:
            util = 0.0
            if node.running_job_id is not None:
                app = scheduler.app(node.running_job_id)
                if app is not None and app.running:
                    util = min(1.0, app.current_rate() / app.profile.base_step_rate)
            store.insert(SeriesKey.of("node_cpu_util", node=node.node_id), engine.now, util)

    engine.every(60.0, sample)
    engine.run(until=horizon_s)

    analyzer = case.loop.analyzer
    predicted: Set[Tuple[str, str]] = set()
    for job_id, findings in analyzer.findings_by_job.items():
        for finding in findings:
            if finding.kind in (
                MisconfigKind.THREAD_CORE_MISMATCH,
                MisconfigKind.WRONG_LIBRARY_PATH,
            ):
                predicted.add((job_id, finding.kind.value))
    det = detection_metrics(predicted, truth)

    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    mis_jobs = [j for j in jobs if any(j.job_id == jid for jid, _ in truth)]
    mis_completed = [j for j in mis_jobs if j.state is JobState.COMPLETED]
    mean_runtime_mis = (
        sum(j.runtime for j in mis_completed) / len(mis_completed) if mis_completed else float("nan")
    )
    hub_stats = control_plane.hub.stats()
    return {
        "with_fixes": with_fixes,
        "seed": seed,
        "n_jobs": float(n_jobs),
        "n_misconfigured": float(len(truth)),
        "precision": det["precision"],
        "recall": det["recall"],
        "f1": det["f1"],
        "fixes_applied": float(case.fixes_applied),
        "notifications": float(case.notifications_sent),
        "completed": float(len(completed)),
        "mean_runtime_misconfigured_s": mean_runtime_mis,
        "monitor_fused_served": hub_stats["fused_served"],
        "monitor_queries_executed": hub_stats["engine_served_raw"]
        + hub_stats["engine_served_rollup"],
    }
