"""Model experiments: forecaster ablation (D1) and the Section IV
small-vs-large model claim (experiment E9).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analytics.forecast import forecaster_names, make_forecaster
from repro.analytics.models import BatchPolynomialModel, RecursiveLeastSquares
from repro.sim import RngRegistry


def _synthetic_run(rng: np.random.Generator, *, n_markers: int = 120, dt: float = 30.0):
    """A synthetic progress trace with a mid-run slowdown and noise.

    Returns (times, steps, true_completion_time, total_steps).
    """
    rate1 = float(rng.uniform(1.0, 3.0))
    rate2 = rate1 * float(rng.uniform(0.4, 0.8))  # slowdown phase
    switch = int(n_markers * 0.5)
    times, steps = [], []
    step = 0.0
    for i in range(n_markers):
        t = i * dt
        rate = rate1 if i < switch else rate2
        step += rate * dt * float(rng.normal(1.0, 0.05))
        times.append(t)
        steps.append(step)
    total_steps = steps[-1] * 1.5  # forecast target beyond observed data
    remaining = total_steps - steps[-1]
    true_completion = times[-1] + remaining / rate2
    return times, steps, true_completion, total_steps


def run_forecaster_comparison(*, seed: int = 0, n_runs: int = 30) -> List[Dict[str, float]]:
    """Per-forecaster ETA accuracy and cost on drifting progress traces."""
    rngs = RngRegistry(seed=seed)
    rows = []
    for name in forecaster_names():
        errors = []
        widths = []
        t_fit = 0.0
        for run_idx in range(n_runs):
            rng = rngs.fork("trace", run_idx)
            times, steps, true_eta, total = _synthetic_run(rng)
            fc = make_forecaster(name)
            t0 = time.perf_counter()
            for t, s in zip(times, steps):
                fc.update(t, s)
            result = fc.forecast(times[-1], total)
            t_fit += time.perf_counter() - t0
            if result is None:
                continue
            errors.append(abs(result.eta - true_eta) / max(1.0, true_eta - times[-1]))
            widths.append(result.interval_width)
        rows.append(
            {
                "forecaster": name,
                "rel_eta_error": float(np.mean(errors)) if errors else float("nan"),
                "interval_width_s": float(np.mean(widths)) if widths else float("nan"),
                "cost_ms_per_run": t_fit / n_runs * 1e3,
                "n_ok": float(len(errors)),
            }
        )
    return rows


def run_model_ablation(
    *,
    seed: int = 0,
    n_samples: int = 1500,
    drift_at: int = 750,
) -> List[Dict[str, float]]:
    """RLS-with-forgetting vs. batch heavyweight model under drift (E9).

    The stream is ``y = a·x + b`` whose coefficients change at
    ``drift_at``; models are scored on rolling one-step-ahead error and
    per-update wall time.
    """
    rng = RngRegistry(seed=seed).stream("ablation")
    models = {
        "rls-forgetting (small, continual)": RecursiveLeastSquares(1, forgetting=0.98),
        "rls-no-forgetting (small, frozen)": RecursiveLeastSquares(1, forgetting=1.0),
        "batch-poly-8 (large, refit-always)": BatchPolynomialModel(degree=8),
    }
    if not 0 < drift_at < n_samples:
        raise ValueError("drift_at must fall inside the stream")
    xs = rng.uniform(0.0, 10.0, size=n_samples)
    noise = rng.normal(0.0, 0.3, size=n_samples)
    # score only the settled second half of each regime
    pre_window = (drift_at // 2, drift_at)
    post_window = (drift_at + (n_samples - drift_at) // 2, n_samples)
    rows = []
    for name, model in models.items():
        post_drift_err: List[float] = []
        pre_drift_err: List[float] = []
        t_update = 0.0
        for i in range(n_samples):
            a, b = (2.0, 1.0) if i < drift_at else (-1.0, 8.0)
            x, y = float(xs[i]), a * float(xs[i]) + b + float(noise[i])
            pred = model.predict([x])
            if pred is not None:
                err = abs(pred - y)
                if pre_window[0] < i < pre_window[1]:
                    pre_drift_err.append(err)
                elif post_window[0] < i:
                    post_drift_err.append(err)
            t0 = time.perf_counter()
            model.update([x], y)
            t_update += time.perf_counter() - t0
        rows.append(
            {
                "model": name,
                "params": float(model.param_count),
                "pre_drift_mae": float(np.mean(pre_drift_err)) if pre_drift_err else float("nan"),
                "post_drift_mae": float(np.mean(post_drift_err)) if post_drift_err else float("nan"),
                "update_us": t_update / n_samples * 1e6,
            }
        )
    return rows
