"""Sharded-store scaling experiment (E16, Section IV).

PR 4 partitions the MODA substrate: series hash-route across N shard
stores and reads federate back through scatter-gather.  This experiment
measures both halves at high cardinality on identical data:

* **Query federation** — cross-series ``group_by`` dashboard queries
  (the shape every per-node watch fleet issues) served by the legacy
  per-group :class:`~repro.query.engine.QueryEngine` over one store vs
  the :class:`~repro.shard.FederatedQueryEngine` over 8 shards.  The
  federated engine must win ≥3× (its scatter stage is one vectorized
  pass per shard; the gather merges partial rows with lexsort/reduceat
  instead of a Python loop per group) **and** return bit-identical
  results to the same engine over a single-shard store — the
  single-store oracle — plus 1e-9-tight agreement with the legacy
  engine.

* **Sharded ingest** — the identical columnar commit stream through
  ``append_batch`` on one store vs the sharded facade's split-and-route
  path, asserting bit-identical stores and no throughput regression
  (the facade sorts once globally and hands shards pre-sorted
  segments).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.query.engine import QueryEngine, QueryResult
from repro.query.model import MetricQuery
from repro.query.standing import StandingQueryEngine
from repro.shard import FederatedQueryEngine, ShardedTimeSeriesStore
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _series_keys(n_series: int) -> List[SeriesKey]:
    return [SeriesKey.of("m", node=f"n{i:05d}") for i in range(n_series)]


def _tick_columns(
    keys_n: int, sids: np.ndarray, tick: int, period: float, base: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    times = np.full(keys_n, tick * period)
    values = base + 0.01 * tick
    return sids, times, values


def _fill(store, sids: np.ndarray, ticks: int, period: float, base: np.ndarray) -> float:
    """Drive the commit stream; returns the ingest wall-clock."""
    n = sids.size
    wall_t0 = time.perf_counter()
    for tick in range(ticks):
        store.append_batch(*_tick_columns(n, sids, tick, period, base))
    return time.perf_counter() - wall_t0


def _intern(store, keys: List[SeriesKey]) -> np.ndarray:
    return np.fromiter(
        (store.registry.id_for(k) for k in keys), dtype=np.int64, count=len(keys)
    )


def _results_bit_identical(a: QueryResult, b: QueryResult) -> bool:
    if len(a.series) != len(b.series):
        return False
    for sa, sb in zip(a.series, b.series):
        if sa.labels != sb.labels:
            return False
        if not (np.array_equal(sa.times, sb.times) and np.array_equal(sa.values, sb.values)):
            return False
    return True


def _results_close(a: QueryResult, b: QueryResult, rtol: float = 1e-9) -> bool:
    if len(a.series) != len(b.series):
        return False
    for sa, sb in zip(a.series, b.series):
        if sa.labels != sb.labels:
            return False
        if not (
            np.allclose(sa.times, sb.times, rtol=0, atol=1e-9)
            and np.allclose(sa.values, sb.values, rtol=rtol, atol=1e-9)
        ):
            return False
    return True


def run_federated_query_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    ticks: int = 64,
    sample_period_s: float = 10.0,
    step_s: float = 60.0,
    n_queries: int = 5,
    repeats: int = 3,
) -> Dict[str, float]:
    """Federated vs unsharded ``group_by`` query serving at cardinality.

    The workload is the watch-fleet shape: one output series per node
    over the full retention window.  Exactness is checked two ways —
    bitwise against the federated engine over a single-shard store (the
    single-store oracle: same data, same canonical reduction, no
    partitioning) and 1e-9-tight against the legacy per-group engine.
    """
    rng = np.random.default_rng(seed)
    keys = _series_keys(n_series)
    base = rng.normal(100.0, 15.0, size=n_series)
    capacity = ticks + 8

    single = TimeSeriesStore(default_capacity=capacity)
    sharded = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=capacity)
    oracle = ShardedTimeSeriesStore(n_shards=1, default_capacity=capacity)

    at = ticks * sample_period_s
    query = MetricQuery(
        "m", agg="mean", range_s=at, step_s=step_s, group_by=("node",)
    )
    fed = FederatedQueryEngine(sharded, enable_cache=False)
    # register the bench shape *before* ingest so the standing pass
    # measures the incremental listener path, not a one-shot backfill
    standing = StandingQueryEngine(fed)
    standing.register(query)
    for store in (single, sharded, oracle):
        _fill(store, _intern(store, keys), ticks, sample_period_s, base)

    qe = QueryEngine(single, enable_cache=False)
    fed_oracle = FederatedQueryEngine(oracle, enable_cache=False)

    res_single = qe.query(query, at=at)
    res_fed = fed.query(query, at=at)
    res_oracle = fed_oracle.query(query, at=at)
    res_standing = standing.query(query, at=at)
    bit_identical = _results_bit_identical(res_fed, res_oracle)
    match = _results_close(res_fed, res_single)
    standing_match = res_standing is not None and _results_close(res_standing, res_single)

    def timed(engine_obj) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for q_i in range(n_queries):
                # vary the evaluation point so the engines execute (the
                # benchmark measures serving, not the result cache)
                engine_obj.query(query, at=at - q_i * sample_period_s)
            best = min(best, time.perf_counter() - t0)
        return best / n_queries

    single_s = timed(qe)
    fed_s = timed(fed)

    def timed_standing() -> float:
        best = float("inf")
        for _ in range(repeats):
            standing.clear_snapshots()  # measure the merge, not dict hits
            t0 = time.perf_counter()
            for q_i in range(n_queries):
                standing.query(query, at=at - q_i * sample_period_s)
            best = min(best, time.perf_counter() - t0)
        return best / n_queries

    standing_s = timed_standing()
    st_stats = standing.stats()
    return {
        "n_series": float(n_series),
        "n_shards": float(n_shards),
        "points": float(single.total_inserts),
        "result_series": float(len(res_fed.series)),
        "single_query_ms": single_s * 1e3,
        "federated_query_ms": fed_s * 1e3,
        "single_queries_per_s": 1.0 / single_s,
        "federated_queries_per_s": 1.0 / fed_s,
        "query_speedup": single_s / fed_s,
        "fanout_mean": fed.stats()["fanout_mean"],
        "bit_identical": float(bit_identical),
        "match": float(match),
        "standing_query_ms": standing_s * 1e3,
        "standing_queries_per_s": 1.0 / standing_s,
        "standing_speedup": single_s / standing_s,
        "standing_match": float(standing_match),
        "standing_registered_shapes": st_stats["registered_shapes"],
        "standing_updates_applied": st_stats["updates_applied"],
        "standing_scan_fallbacks": st_stats["scan_fallbacks"],
    }


def run_sharded_ingest_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    ticks: int = 64,
    sample_period_s: float = 10.0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Identical commit stream into one store vs the sharded facade.

    Best-of-``repeats`` walls on both sides (scheduler-noise guard);
    stores must come out bit-identical, and the sharded path must not
    regress — it pays the same single global lexsort and routes
    pre-sorted segments to shards with no per-shard re-sort.
    """
    rng = np.random.default_rng(seed)
    keys = _series_keys(n_series)
    base = rng.normal(100.0, 15.0, size=n_series)
    capacity = ticks + 8

    single_wall = float("inf")
    sharded_wall = float("inf")
    single = sharded = None
    for _ in range(repeats):
        single = TimeSeriesStore(default_capacity=capacity)
        single_wall = min(
            single_wall, _fill(single, _intern(single, keys), ticks, sample_period_s, base)
        )
        sharded = ShardedTimeSeriesStore(n_shards=n_shards, default_capacity=capacity)
        sharded_wall = min(
            sharded_wall, _fill(sharded, _intern(sharded, keys), ticks, sample_period_s, base)
        )

    match = single.cardinality() == sharded.cardinality()
    if match:
        for key in keys:
            st, sv = single.query(key, -np.inf, np.inf)
            ft, fv = sharded.query(key, -np.inf, np.inf)
            if not (np.array_equal(st, ft) and np.array_equal(sv, fv)):
                match = False
                break

    samples = float(single.total_inserts)
    cards = sharded.shard_cardinalities()
    return {
        "n_series": float(n_series),
        "n_shards": float(n_shards),
        "samples": samples,
        "single_wall_s": single_wall,
        "sharded_wall_s": sharded_wall,
        "single_samples_per_s": samples / single_wall,
        "sharded_samples_per_s": samples / sharded_wall,
        "ingest_speedup": single_wall / sharded_wall,
        "shard_balance": min(cards) / max(cards),
        "match": float(match),
    }


def run_shard_benchmark(
    *,
    seed: int = 0,
    n_series: int = 4096,
    n_shards: int = 8,
    ticks: int = 64,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Both E16 halves with shared sizing (the CLI/CI entry)."""
    return {
        "query": run_federated_query_benchmark(
            seed=seed, n_series=n_series, n_shards=n_shards, ticks=ticks, repeats=repeats
        ),
        "ingest": run_sharded_ingest_benchmark(
            seed=seed, n_series=n_series, n_shards=n_shards, ticks=ticks, repeats=repeats
        ),
    }
