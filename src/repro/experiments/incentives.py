"""Stakeholder incentive reports (methodology question v).

The paper: "Adopting an autonomy loop that increases their jobs'
execution success would incentivize users.  Additional statistics, such
as increase in completed and decrease in resubmitted jobs, would
incentivize administrators to deploy it."

:func:`incentive_report` turns a (baseline, with-loop) pair of
scheduler-scenario rows into exactly those statistics, phrased per
stakeholder, ready for a deployment proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping


@dataclass(frozen=True)
class IncentiveStatement:
    """One stakeholder-facing statistic with its before/after evidence."""

    audience: str  # "users" | "administrators"
    statement: str
    before: float
    after: float

    @property
    def improved(self) -> bool:
        return self.after != self.before


def _pct(value: float) -> str:
    return f"{100.0 * value:.0f}%"


def incentive_report(
    baseline: Mapping[str, float],
    with_loop: Mapping[str, float],
) -> List[IncentiveStatement]:
    """Build the question-v statistics from two scenario rows.

    Both rows must come from
    :func:`repro.experiments.scheduler_case.run_scheduler_scenario`
    (or share its keys: ``completion_rate``, ``completed``, ``timeout``,
    ``resubmissions``, ``wasted_nh``, ``overhang_nh``).
    """
    out: List[IncentiveStatement] = []
    # ---- users: execution success -------------------------------------
    b, a = baseline["completion_rate"], with_loop["completion_rate"]
    out.append(
        IncentiveStatement(
            "users",
            f"job success rate rises from {_pct(b)} to {_pct(a)}",
            b,
            a,
        )
    )
    b, a = baseline["timeout"], with_loop["timeout"]
    out.append(
        IncentiveStatement(
            "users",
            f"jobs lost to walltime kills drop from {b:.0f} to {a:.0f}",
            b,
            a,
        )
    )
    # ---- administrators: throughput and churn ---------------------------
    b, a = baseline["completed"], with_loop["completed"]
    out.append(
        IncentiveStatement(
            "administrators",
            f"completed jobs increase from {b:.0f} to {a:.0f}",
            b,
            a,
        )
    )
    b, a = baseline["resubmissions"], with_loop["resubmissions"]
    out.append(
        IncentiveStatement(
            "administrators",
            f"resubmitted jobs decrease from {b:.0f} to {a:.0f}",
            b,
            a,
        )
    )
    b, a = baseline["wasted_nh"], with_loop["wasted_nh"]
    out.append(
        IncentiveStatement(
            "administrators",
            f"wasted node-hours drop from {b:.1f} to {a:.1f}",
            b,
            a,
        )
    )
    # the cost side operators will ask about (trust, question iv)
    b, a = baseline["overhang_nh"], with_loop["overhang_nh"]
    out.append(
        IncentiveStatement(
            "administrators",
            f"extension overhang (idle hold) changes from {b:.1f} to {a:.1f} node-hours",
            b,
            a,
        )
    )
    return out


def render_incentives(statements: List[IncentiveStatement]) -> str:
    """Human-readable, per-audience rendering."""
    lines: List[str] = []
    for audience in ("users", "administrators"):
        lines.append(f"for {audience}:")
        for s in statements:
            if s.audience == audience:
                lines.append(f"  - {s.statement}")
    return "\n".join(lines)
