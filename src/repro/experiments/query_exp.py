"""Query-serving experiment (E13, Section IV).

Section IV frames MODA storage around insert rate *and* query cost at
high cardinality.  This experiment measures the new serving layer
directly: long-range cross-series dashboard queries executed three ways
over the same store —

* **naive** — the pre-engine idiom: per series, scan the raw window and
  aggregate bin by bin in a Python loop, then merge across series;
* **engine (cold)** — the vectorized engine over tiered rollups,
  result cache disabled;
* **engine (cached)** — the same engine with its LRU cache warm.

All three produce identical values (asserted here), so the comparison
is purely about serving cost.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine
from repro.query.model import MetricQuery
from repro.query.rollup import RollupManager
from repro.sim import RngRegistry
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


def _build_store(
    seed: int, n_series: int, horizon_s: float, sample_period_s: float
) -> TimeSeriesStore:
    rng = RngRegistry(seed=seed).stream("query-exp")
    points = int(horizon_s / sample_period_s)
    store = TimeSeriesStore(default_capacity=points + 8)
    times = np.arange(points, dtype=np.float64) * sample_period_s
    for i in range(n_series):
        values = rng.normal(100.0, 15.0, size=points)
        store.insert_batch(SeriesKey.of("m", node=f"n{i}"), times, values)
    return store


def _naive_scan(
    store: TimeSeriesStore, t0: float, t1: float, step: float
) -> Tuple[List[float], List[float]]:
    """Hand-rolled cross-series mean: per-bin Python loop over raw scans.

    This is what every caller did before the query subsystem existed —
    same absolute-grid semantics as the engine, none of the machinery.
    """
    first = math.floor(t0 / step)
    last = math.floor(t1 / step)
    grid_t0 = first * step
    n_bins = int(last - first + 1)
    sums = [0.0] * n_bins
    counts = [0] * n_bins
    for key in store.series_keys("m"):
        times, values = store.query(key, grid_t0, grid_t0 + n_bins * step)
        bins = np.floor((times - grid_t0) / step).astype(np.int64)
        for b in range(n_bins):
            mask = bins == b
            selected = values[mask & (times < grid_t0 + n_bins * step)]
            if selected.size:
                sums[b] += float(np.sum(selected))
                counts[b] += int(selected.size)
    out_t = [grid_t0 + b * step for b in range(n_bins) if counts[b]]
    out_v = [sums[b] / counts[b] for b in range(n_bins) if counts[b]]
    return out_t, out_v


def run_query_scan_comparison(
    *,
    seed: int = 0,
    n_series: int = 512,
    horizon_s: float = 40_000.0,
    sample_period_s: float = 10.0,
    range_s: float = 36_000.0,
    step_s: float = 300.0,
    rollup_resolutions: Tuple[float, ...] = (60.0, 600.0),
    n_engine_queries: int = 10,
    n_naive_queries: int = 3,
) -> Dict[str, float]:
    """Long-range query latency: naive scan vs engine (cold and cached)."""
    store = _build_store(seed, n_series, horizon_s, sample_period_s)
    rollups = RollupManager(store, resolutions=rollup_resolutions, capacity=8192)
    rollups.fold(horizon_s)

    at = horizon_s
    query = MetricQuery("m", agg="mean", range_s=range_s, step_s=step_s)

    t0 = time.perf_counter()
    for _ in range(n_naive_queries):
        naive_t, naive_v = _naive_scan(store, at - range_s, at, step_s)
    naive_ms = (time.perf_counter() - t0) / n_naive_queries * 1e3

    cold = QueryEngine(store, rollups=rollups, enable_cache=False)
    t0 = time.perf_counter()
    for _ in range(n_engine_queries):
        result = cold.query(query, at=at)
    engine_cold_ms = (time.perf_counter() - t0) / n_engine_queries * 1e3

    cached = QueryEngine(store, rollups=rollups, cache=QueryCache())
    cached.query(query, at=at)  # warm the cache
    t0 = time.perf_counter()
    for _ in range(n_engine_queries):
        cached.query(query, at=at)
    engine_cached_ms = (time.perf_counter() - t0) / n_engine_queries * 1e3

    series = result.first()
    match = (
        series is not None
        and np.allclose(series.times, naive_t)
        and np.allclose(series.values, naive_v, rtol=1e-9)
    )
    return {
        "n_series": float(n_series),
        "points": float(store.total_inserts),
        "range_over_step": range_s / step_s,
        "naive_ms": naive_ms,
        "engine_cold_ms": engine_cold_ms,
        "engine_cached_ms": engine_cached_ms,
        "speedup_cold": naive_ms / engine_cold_ms,
        "speedup_cached": naive_ms / engine_cached_ms,
        "rollup_served": float(result.source.startswith("rollup")),
        "cache_hit_rate": cached.cache.hit_rate,
        "match": float(match),
    }


def run_cache_effectiveness(
    *,
    seed: int = 0,
    n_series: int = 128,
    horizon_s: float = 7200.0,
    n_dashboards: int = 8,
    refresh_period_s: float = 30.0,
    window_s: float = 3600.0,
    step_s: float = 60.0,
) -> Dict[str, float]:
    """A dashboard fleet re-polling the same panels inside one quantum."""
    store = _build_store(seed, n_series, horizon_s, sample_period_s=10.0)
    rollups = RollupManager(store, resolutions=(60.0,), capacity=8192)
    rollups.fold(horizon_s)
    qe = QueryEngine(store, rollups=rollups, cache=QueryCache())
    exprs = [
        f"mean(m[{window_s:g}s] by {step_s:g}s)",
        f"max(m[{window_s:g}s] by {step_s:g}s)",
        f"p95(m[{window_s:g}s] by {step_s:g}s)",
    ]
    t0 = time.perf_counter()
    for tick in range(n_dashboards):
        at = horizon_s + tick * refresh_period_s / n_dashboards  # inside one step quantum
        for expr in exprs:
            qe.query(expr, at=at)
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    stats = qe.stats()
    return {
        "queries": stats["queries_total"],
        "elapsed_ms": elapsed_ms,
        "hit_rate": stats["cache_hit_rate"],
        "rollup_served": stats["served_rollup"],
    }
