"""Pattern-comparison scenario (experiment E2, Fig. 2).

Runs one of the four patterns on the shared regulation task and reports
the four quantities the paper's qualitative claims are about:

* ``rmse`` — control quality (aggregate vs. target) after settling,
* ``osc_std`` — oscillation (std of the settled aggregate),
* ``latency_s`` — nominal observation-to-actuation delay,
* ``msgs_per_elem_cycle`` — coordination traffic,
* ``uncontrolled_frac`` — robustness: fraction of elements left
  unregulated after an injected controller failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.patterns import (
    CoordinatedController,
    DriftingElement,
    HierarchicalController,
    MasterWorkerController,
    classical_loop_for,
)
from repro.sim import Engine, RngRegistry

PATTERNS = ("classical", "master-worker", "coordinated", "hierarchical")


@dataclass
class PatternScenarioConfig:
    seed: int = 0
    pattern: str = "master-worker"
    n_elements: int = 32
    horizon_s: float = 1200.0
    settle_s: float = 400.0
    period_s: float = 5.0
    gain: float = 0.6
    comp_gain: float = 0.3  # coordinated only
    group_size: int = 8  # hierarchical only
    bus_latency_s: float = 0.01
    per_element_cost_s: float = 0.002
    inject_failure_at: Optional[float] = None  # kill a controller component
    drift_mu: float = 0.3
    drift_std: float = 0.5

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}")
        if self.settle_s >= self.horizon_s:
            raise ValueError("settle_s must be below horizon_s")


def run_pattern_scenario(cfg: PatternScenarioConfig) -> Dict[str, float]:
    engine = Engine()
    rngs = RngRegistry(seed=cfg.seed)
    elements = []
    for i in range(cfg.n_elements):
        e = DriftingElement(
            engine,
            f"e{i}",
            rngs.fork("element", i),
            initial=100.0,
            drift_mu=cfg.drift_mu,
            drift_std=cfg.drift_std,
        )
        e.start_disturbance()
        elements.append(e)
    target_total = 100.0 * cfg.n_elements

    controller, kill, latency = _build(engine, elements, target_total, cfg)
    controller_start = getattr(controller, "start")
    controller_start()
    if cfg.inject_failure_at is not None and kill is not None:
        engine.schedule_at(cfg.inject_failure_at, kill)

    samples: List[float] = []
    engine.every(
        cfg.period_s, lambda: samples.append(sum(e.read() for e in elements)), start_at=cfg.settle_s
    )
    snapshot: Dict[str, float] = {}
    engine.schedule_at(
        cfg.settle_s, lambda: snapshot.update({e.element_id: e.read() for e in elements})
    )
    engine.run(until=cfg.horizon_s)

    arr = np.asarray(samples)
    rmse = float(np.sqrt(np.mean((arr - target_total) ** 2)))
    bias = float(np.mean(arr) - target_total)  # proportional-control droop
    osc = float(np.std(arr))
    # an element is "uncontrolled" if it kept drifting at (a large fraction
    # of) the raw disturbance rate after the settle point — this is robust
    # to legitimate setpoint reassignment after controller failures
    window = cfg.horizon_s - cfg.settle_s
    drift_threshold = 0.5 * cfg.drift_mu * window
    uncontrolled = sum(
        1
        for e in elements
        if abs(e.read() - snapshot.get(e.element_id, e.read())) > drift_threshold
    )
    messages = controller.messages_sent() if hasattr(controller, "messages_sent") else 0
    return {
        "pattern": cfg.pattern,
        "n": cfg.n_elements,
        "rmse": rmse,
        "bias": bias,
        "osc_std": osc,
        "latency_s": latency,
        "msgs_per_elem_s": messages / (cfg.n_elements * cfg.horizon_s),
        "messages_total": float(messages),
        "uncontrolled_frac": uncontrolled / cfg.n_elements,
        "failure_injected": cfg.inject_failure_at is not None,
    }


def _build(engine, elements, target_total, cfg: PatternScenarioConfig):
    """Returns (controller, kill_fn, nominal_latency)."""
    if cfg.pattern == "classical":
        loops = [
            classical_loop_for(
                engine, e, setpoint=100.0, period_s=cfg.period_s, gain=cfg.gain
            )
            for e in elements
        ]

        class _Classical:
            cycles = 0

            def start(self):
                for lp in loops:
                    lp.start()

            def messages_sent(self):
                return 0

        kill = (lambda: loops[0].stop()) if cfg.inject_failure_at is not None else None
        return _Classical(), kill, 0.0
    if cfg.pattern == "master-worker":
        ctrl = MasterWorkerController(
            engine,
            elements,
            target_total,
            period_s=cfg.period_s,
            gain=cfg.gain,
            central_cost_per_element_s=cfg.per_element_cost_s,
        )
        ctrl.bus.latency_s = cfg.bus_latency_s
        return ctrl, ctrl.kill_central, ctrl.nominal_decision_latency()
    if cfg.pattern == "coordinated":
        ctrl = CoordinatedController(
            engine,
            elements,
            target_total,
            period_s=cfg.period_s,
            gain=cfg.gain,
            comp_gain=cfg.comp_gain,
            local_cost_s=cfg.per_element_cost_s,
        )
        ctrl.bus.latency_s = cfg.bus_latency_s
        return ctrl, (lambda: ctrl.kill_local(0)), ctrl.nominal_decision_latency()
    ctrl = HierarchicalController(
        engine,
        elements,
        target_total,
        group_size=cfg.group_size,
        period_s=cfg.period_s,
        top_period_s=cfg.period_s * 5,
        gain=cfg.gain,
        local_cost_per_element_s=cfg.per_element_cost_s,
    )
    ctrl.bus.latency_s = cfg.bus_latency_s
    return ctrl, (lambda: ctrl.kill_group_head(0)), ctrl.nominal_decision_latency()
