"""Standing-query serving benchmark (E19, Section IV).

PR 8 turns hot fused monitor shapes into **standing queries**: per-series
partial-aggregate state maintained O(new samples) from ingest-listener
callbacks, so a hub tick reads maintained state instead of re-scanning
its full window (see :mod:`repro.query.standing`).  This experiment
measures the bargain at fleet scale on a *streamed* commit sequence —
the regime the engine is built for, where each tick only adds
``fleet x (period / sample_period)`` new samples to a
``fleet x window`` standing window:

* **Hub serving** — 256 watch loops over 4096 series (the E17b adaptive
  -fusion sizing), each issuing its partition's grouped range query
  every tick through the shared :class:`~repro.core.runtime.QueryHub`.
  The baseline is PR 5's steady state: fused serving, the widened scan
  computed once per tick and shared via the cache.  The standing side
  runs the same hub with a :class:`StandingQueryEngine` attached and
  must *auto-register* the hot shape from tick-sharing statistics (the
  burn-in ticks before registration count against it), then win ≥5× on
  hub throughput.  Exactness is checked against an uncached batch
  engine on sampled ticks, outside the timed sections.

* **Ingest overhead** — the identical columnar commit stream into a
  plain store vs one feeding a registered standing provider; the
  per-commit partial-aggregate update must cost ≤1.1× plain ingest.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.core.runtime import QueryHub
from repro.query import LabelMatcher, MetricQuery, QueryEngine
from repro.query.standing import StandingQueryEngine
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

METRIC = "node_cpu_util"


def _node_ids(n_nodes: int) -> List[str]:
    return [f"n{i:05d}" for i in range(n_nodes)]


def _loop_queries(
    node_ids: Sequence[str], n_loops: int, window_s: float, step_s: float
) -> List[MetricQuery]:
    """One grouped range query per node partition — the watch-fleet
    shape (matcher ⊆ group_by, so every loop shares one widened form)."""
    parts = np.array_split(np.asarray(node_ids, dtype=object), n_loops)
    queries = []
    for part in parts:
        alternation = "|".join(str(n) for n in part)
        queries.append(
            MetricQuery(
                METRIC,
                agg="mean",
                matchers=(LabelMatcher("node", "=~", alternation),),
                range_s=window_s,
                step_s=step_s,
                group_by=("node",),
            )
        )
    return queries


def _values_at(base: np.ndarray, t: float) -> np.ndarray:
    return np.clip(base + 0.1 * np.sin(t / 150.0 + base * 7.0), 0.0, 1.0)


def _prefill(store: TimeSeriesStore, sids: np.ndarray, base: np.ndarray,
             window_s: float, sample_period_s: float) -> None:
    n = sids.size
    for t in np.arange(sample_period_s, window_s + sample_period_s / 2, sample_period_s):
        store.append_batch(sids, np.full(n, float(t)), _values_at(base, float(t)))


def _intern(store: TimeSeriesStore, node_ids: Sequence[str]) -> np.ndarray:
    return np.fromiter(
        (store.registry.id_for(SeriesKey.of(METRIC, node=n)) for n in node_ids),
        dtype=np.int64,
        count=len(node_ids),
    )


def run_standing_hub_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 256,
    nodes_per_loop: int = 16,
    ticks: int = 60,
    period_s: float = 60.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
    sample_period_s: float = 10.0,
    check_every: int = 4,
    check_loops: int = 8,
) -> Dict[str, float]:
    """E19: standing vs fused hub serving on a streamed commit sequence."""
    n_nodes = n_loops * nodes_per_loop
    node_ids = _node_ids(n_nodes)
    rng = np.random.default_rng(seed)
    base = np.clip(rng.normal(0.5, 0.2, size=n_nodes), 0.05, 0.95)
    capacity = int((window_s + ticks * period_s) / sample_period_s) + 16
    queries = _loop_queries(node_ids, n_loops, window_s, step_s)
    commits_per_tick = int(round(period_s / sample_period_s))

    def run_side(standing: bool) -> Dict[str, float]:
        store = TimeSeriesStore(default_capacity=capacity)
        engine = QueryEngine(store)  # cached: the fused-serving economics
        st = StandingQueryEngine(engine) if standing else None
        hub = QueryHub(engine, fuse=True, standing=st)
        reference = QueryEngine(store, enable_cache=False)
        sids = _intern(store, node_ids)
        _prefill(store, sids, base, window_s, sample_period_s)
        serve_wall = 0.0
        mismatches = 0
        for tick in range(1, ticks + 1):
            t_tick = window_s + tick * period_s
            for j in range(commits_per_tick):
                t = t_tick - period_s + (j + 1) * sample_period_s
                store.append_batch(sids, np.full(n_nodes, float(t)), _values_at(base, t))
            wall_t0 = time.perf_counter()
            results = [hub.query(q, at=t_tick) for q in queries]
            serve_wall += time.perf_counter() - wall_t0
            if tick % check_every == 0:  # exactness spot-check, untimed
                for idx in range(0, n_loops, max(1, n_loops // check_loops)):
                    got, want = results[idx], reference.query(queries[idx], at=t_tick)
                    ok = len(got.series) == len(want.series) and all(
                        a.labels == b.labels
                        and np.allclose(a.times, b.times, rtol=0, atol=1e-9)
                        and np.allclose(a.values, b.values, rtol=1e-9, atol=1e-9)
                        for a, b in zip(got.series, want.series)
                    )
                    mismatches += 0 if ok else 1
        out = {
            "serve_wall_s": serve_wall,
            "queries_per_s": (n_loops * ticks) / serve_wall,
            "mismatches": float(mismatches),
            "fused_served": float(hub.fused_served),
            "standing_served": float(hub.standing_served),
        }
        if st is not None:
            stats = st.stats()
            out["standing_shapes"] = stats["registered_shapes"]
            out["standing_updates"] = stats["updates_applied"]
            out["standing_fallbacks"] = stats["scan_fallbacks"]
        return out

    fused = run_side(standing=False)
    standing = run_side(standing=True)
    return {
        "seed": float(seed),
        "n_loops": float(n_loops),
        "n_series": float(n_nodes),
        "ticks": float(ticks),
        "fused_queries_per_s": fused["queries_per_s"],
        "standing_queries_per_s": standing["queries_per_s"],
        "hub_speedup": standing["queries_per_s"] / fused["queries_per_s"],
        "fused_served": fused["fused_served"],
        "standing_served": standing["standing_served"],
        "auto_registered_shapes": standing["standing_shapes"],
        "standing_updates": standing["standing_updates"],
        "standing_fallbacks": standing["standing_fallbacks"],
        "match": 1.0 if fused["mismatches"] + standing["mismatches"] == 0 else 0.0,
    }


def run_standing_ingest_overhead(
    *,
    seed: int = 0,
    n_series: int = 4096,
    ticks: int = 30,
    rounds: int = 8,
    sample_period_s: float = 10.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
) -> Dict[str, float]:
    """E19b: per-commit standing-update cost over plain columnar ingest.

    Identical commit streams into two persistent stores, one carrying a
    registered grid (the hub's hot shape) fed by the ingest listener.
    The listener's true cost is a few percent of a columnar commit, so
    independent best-of runs — which compare two different draws of
    scheduler noise — can't resolve it.  Instead each commit is timed
    *paired*: the same columns land on both stores back to back, the
    order alternating per commit, and commits where either side hit a
    stall (wall above 1.5× its side's median — GC pause, scheduler
    preemption) are excluded pairwise before the walls are summed.
    """
    node_ids = _node_ids(n_series)
    rng = np.random.default_rng(seed)
    base = np.clip(rng.normal(0.5, 0.2, size=n_series), 0.05, 0.95)
    n_commits = ticks * rounds
    capacity = n_commits + ticks + 16

    plain = TimeSeriesStore(default_capacity=capacity)
    standing_store = TimeSeriesStore(default_capacity=capacity)
    st = StandingQueryEngine(QueryEngine(standing_store, enable_cache=False))
    assert st.register(
        MetricQuery(METRIC, agg="mean", range_s=window_s, step_s=step_s,
                    group_by=("node",))
    )
    plain_ids = _intern(plain, node_ids)
    standing_ids = _intern(standing_store, node_ids)

    def commit(store: TimeSeriesStore, ids: np.ndarray, t: float,
               values: np.ndarray) -> float:
        wall_t0 = time.perf_counter()
        store.append_batch(ids, np.full(n_series, t), values)
        return time.perf_counter() - wall_t0

    # untimed warm-up commits on both sides (allocator, ring/grid growth)
    for tick in range(ticks):
        t = (tick + 1) * sample_period_s
        values = _values_at(base, t)
        commit(plain, plain_ids, t, values)
        commit(standing_store, standing_ids, t, values)
    p_walls = np.empty(n_commits)
    s_walls = np.empty(n_commits)
    for i in range(n_commits):
        t = (ticks + i + 1) * sample_period_s
        values = _values_at(base, t)
        if i % 2:
            p_walls[i] = commit(plain, plain_ids, t, values)
            s_walls[i] = commit(standing_store, standing_ids, t, values)
        else:
            s_walls[i] = commit(standing_store, standing_ids, t, values)
            p_walls[i] = commit(plain, plain_ids, t, values)
    keep = (p_walls < 1.5 * np.median(p_walls)) & (s_walls < 1.5 * np.median(s_walls))
    plain_wall = float(p_walls[keep].sum())
    standing_wall = float(s_walls[keep].sum())
    samples = float(n_series * int(keep.sum()))
    return {
        "seed": float(seed),
        "n_series": float(n_series),
        "commits": float(keep.sum()),
        "samples": samples,
        "plain_samples_per_s": samples / plain_wall,
        "standing_samples_per_s": samples / standing_wall,
        "standing_overhead": standing_wall / plain_wall,
    }


def run_standing_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 256,
    nodes_per_loop: int = 16,
    ticks: int = 60,
) -> Dict[str, Dict[str, float]]:
    """Both E19 halves with shared sizing (the CLI/CI entry)."""
    return {
        "hub": run_standing_hub_benchmark(
            seed=seed, n_loops=n_loops, nodes_per_loop=nodes_per_loop, ticks=ticks
        ),
        "ingest": run_standing_ingest_overhead(
            seed=seed, n_series=n_loops * nodes_per_loop
        ),
    }
