"""Replication helpers: run a scenario over seeds, aggregate rows."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np


def replicate(
    fn: Callable[[int], Mapping[str, float]],
    seeds: Iterable[int],
) -> List[Dict[str, float]]:
    """Run ``fn(seed)`` for each seed; collect the result rows."""
    return [dict(fn(seed)) for seed in seeds]


def aggregate_rows(rows: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Mean of numeric keys across replications; ``<key>_std`` companions.

    Non-numeric values are taken from the first row unchanged.
    """
    if not rows:
        return {}
    out: Dict[str, float] = {}
    keys = rows[0].keys()
    for key in keys:
        values = [r.get(key) for r in rows]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            arr = np.asarray(values, dtype=float)
            out[key] = float(arr.mean())
            if len(rows) > 1:
                out[f"{key}_std"] = float(arr.std(ddof=1))
        else:
            out[key] = values[0]
    return out
