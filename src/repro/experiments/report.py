"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows ``columns`` when given, else insertion order of
    the first row.  Missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    table = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    out.append(sep)
    for r in table:
        out.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(out)
