"""Trust-control experiment (E11, methodology question iv).

Sweeps the loop-side extension budgets ("limits on the number and
overall time of extensions for a single application") and reports the
trade the paper says operators must see before they trust autonomy:
jobs rescued vs. extension overhang (granted-but-unused limit, the
proxy for untaken backfill opportunities).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)


def run_trust_sweep(
    *,
    seed: int = 0,
    budgets: List[int] = (0, 1, 2, 3, 5),
    budget_total_s: float = 14_400.0,
    n_jobs: int = 24,
    n_nodes: int = 12,
    horizon_s: float = 300_000.0,
) -> List[Dict[str, float]]:
    rows = []
    for budget in budgets:
        if budget == 0:
            cfg = SchedulerScenarioConfig(
                seed=seed, mode="none", n_jobs=n_jobs, n_nodes=n_nodes, horizon_s=horizon_s
            )
        else:
            cfg = SchedulerScenarioConfig(
                seed=seed,
                mode="autonomous",
                n_jobs=n_jobs,
                n_nodes=n_nodes,
                horizon_s=horizon_s,
                budget_max_extensions=budget,
                budget_max_total_s=budget_total_s,
            )
        row = run_scheduler_scenario(cfg)
        rows.append(
            {
                "max_extensions": float(budget),
                "completion_rate": row["completion_rate"],
                "wasted_nh": row["wasted_nh"],
                "ext_granted": row["ext_granted"],
                "ext_hours": row["ext_hours"],
                "overhang_nh": row["overhang_nh"],
                "mean_wait_s": row["mean_wait_s"],
            }
        )
    return rows
