"""Maintenance scenario (experiment E4).

Long-running jobs meet a scheduled maintenance window.  Without the
loop, jobs on affected nodes are killed with all progress lost and must
restart from scratch; with the loop, a checkpoint lands before the
window and resubmitted jobs resume from it.  The headline metrics are
lost node-hours and time-to-finish for the affected work.
"""

from __future__ import annotations

from typing import Dict, List


from repro.cluster.application import ApplicationProfile
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.maintenance import MaintenanceEvent, MaintenanceManager
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.loops.maintenance_loop import MaintenanceCaseManager
from repro.sim import Engine, RngRegistry
from repro.workloads.generator import ResubmitPolicy


def run_maintenance_scenario(
    *,
    with_loop: bool,
    seed: int = 0,
    n_nodes: int = 8,
    n_jobs: int = 8,
    job_runtime_s: float = 20_000.0,
    maintenance_at_s: float = 8_000.0,
    maintenance_duration_s: float = 3_600.0,
    announce_lead_s: float = 3_600.0,
    checkpoint_cost_s: float = 120.0,
    horizon_s: float = 80_000.0,
) -> Dict[str, float]:
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    checkpoints = CheckpointStore()
    nodes = [Node(f"n{i:02d}", NodeSpec()) for i in range(n_nodes)]
    scheduler = Scheduler(
        engine, nodes, checkpoint_store=checkpoints, rng=rngs.stream("scheduler")
    )
    maintenance = MaintenanceManager(engine, scheduler)
    resubmit = ResubmitPolicy(
        engine, scheduler, checkpoint_store=checkpoints, max_resubmits_per_job=3
    )
    if with_loop:
        case = MaintenanceCaseManager(engine, scheduler, maintenance, period_s=120.0)
        case.start()

    rng = rngs.stream("jobs")
    jobs: List[Job] = []
    for i in range(n_jobs):
        runtime = job_runtime_s * float(rng.uniform(0.9, 1.1))
        profile = ApplicationProfile(
            f"app{i % 2}",
            total_steps=runtime,
            base_step_rate=1.0,
            marker_period_s=60.0,
            checkpoint_cost_s=checkpoint_cost_s,
        )
        job = Job(
            f"j{i:02d}", f"user{i}", profile, walltime_request_s=runtime * 1.5
        )
        jobs.append(job)
        scheduler.submit(job)

    maintenance.schedule_event(
        MaintenanceEvent(
            frozenset(n.node_id for n in nodes),
            t_start=maintenance_at_s,
            duration_s=maintenance_duration_s,
            announce_lead_s=announce_lead_s,
        )
    )
    engine.run(until=horizon_s)

    killed = [j for j in jobs if j.state is JobState.KILLED_MAINTENANCE]
    # lost work: steps that had to be redone = final_step - restart point of
    # the resubmitted clone (0 without a checkpoint)
    lost_node_seconds = 0.0
    for j in killed:
        saved = checkpoints.restart_step(j.user, j.profile.name)
        lost_steps = max(0.0, (j.final_step or 0.0) - saved)
        lost_node_seconds += (lost_steps / j.profile.base_step_rate) * j.n_nodes
    # completion time of the original workload (including resubmitted clones)
    finished_work = [j for j in scheduler.jobs.values() if j.state is JobState.COMPLETED]
    makespan = max((j.end_time for j in finished_work), default=float("nan"))
    return {
        "with_loop": with_loop,
        "seed": seed,
        "jobs_killed_by_maintenance": float(len(killed)),
        "checkpoints_saved": float(checkpoints.total_saved),
        "lost_node_hours": lost_node_seconds / 3600.0,
        "resubmissions": float(resubmit.resubmissions),
        "work_completed": float(len(finished_work)),
        "makespan_s": float(makespan),
    }
