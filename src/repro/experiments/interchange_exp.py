"""Interchangeability experiment (E12, methodology questions i–ii).

Assembles the Scheduler-case loop from registry lookups, swapping the
forecaster implementation per run without touching any other component,
and verifies every combination still rescues the reference job.  This
is the operational proof of "interchangeable components over defined
interfaces".
"""

from __future__ import annotations

from typing import Dict, List

from repro.analytics.forecast import forecaster_names
from repro.cluster.application import ApplicationProfile
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler
from repro.core.registry import default_registry
from repro.loops import register_components
from repro.loops.scheduler_loop import SchedulerCaseConfig, SchedulerCaseManager
from repro.sim import Engine
from repro.telemetry.markers import ProgressMarkerChannel


def run_interchange_matrix(
    *,
    runtime_s: float = 2400.0,
    walltime_s: float = 1800.0,
    horizon_s: float = 8000.0,
) -> List[Dict[str, float]]:
    """One row per forecaster: the same loop skeleton, one component swapped."""
    registry = default_registry()
    register_components(registry)
    rows = []
    for name in forecaster_names():
        engine = Engine()
        channel = ProgressMarkerChannel()
        scheduler = Scheduler(
            engine, [Node("n0", NodeSpec())], marker_channel=channel
        )
        # prove the registry path constructs the component
        forecaster = registry.create("forecaster", name)
        SchedulerCaseManager(
            engine,
            scheduler,
            channel,
            config=SchedulerCaseConfig(forecaster_name=name, loop_period_s=60.0),
        )
        profile = ApplicationProfile(
            "ref-app", runtime_s, 1.0, marker_period_s=30.0, rate_noise_std=0.03
        )
        job = Job("ref", "alice", profile, walltime_request_s=walltime_s)
        scheduler.submit(job)
        engine.run(until=horizon_s)
        rows.append(
            {
                "forecaster": name,
                "constructed_via_registry": forecaster.name == name,
                "rescued": job.state is JobState.COMPLETED,
                "extensions": float(job.extension_count),
                "extension_s": job.total_extension_s,
                "runtime_s": job.runtime if job.runtime is not None else float("nan"),
            }
        )
    return rows
