"""Ingest-throughput experiment (E14, Section IV).

PR 1 made the *read* path vectorized; this experiment measures the
*write* path: the columnar ingest pipeline (``SensorBank`` →
``SampleBatch`` → coalescing aggregator tree → bulk ``append_batch``)
against the seed per-object path (one ``Sample`` dataclass per sensor
per tick, per-sampler events, point-by-point commits) on an identical
workload.  Both modes run the same deterministic sensors with no
jitter/noise/loss, so the stores they produce must be bit-identical —
the benchmark asserts that, making the comparison purely about moving
cost.

``run_e1_scale_check`` is the scaling acceptance: the full E1 scenario
(analytics included) at 1024 nodes on the columnar path must fit within
the wall-clock the seed path spends at 256 nodes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.pipeline_exp import run_pipeline_scenario
from repro.sim import Engine
from repro.telemetry.collector import CollectionPipeline
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import Sampler, SamplingGroup
from repro.telemetry.sensor import CallableSensor, SensorBank
from repro.telemetry.tsdb import TimeSeriesStore


def _node_keys(node_idx: int, metrics_per_node: int) -> List[SeriesKey]:
    return [
        SeriesKey.of(f"metric{m}", node=f"n{node_idx:04d}")
        for m in range(metrics_per_node)
    ]


def _run_mode(
    ingest: str,
    *,
    n_nodes: int,
    metrics_per_node: int,
    sample_period_s: float,
    horizon_s: float,
    group_size: int,
    commit_ticks: int = 6,
) -> Tuple[TimeSeriesStore, float, int]:
    """One pipeline run; returns ``(store, ingest_wall_s, events)``."""
    engine = Engine()
    store = TimeSeriesStore(default_capacity=int(horizon_s / sample_period_s) + 16)
    commit_interval = commit_ticks * sample_period_s if ingest == "columnar" else None
    pipeline = CollectionPipeline(
        engine, store, hop_latency=0.1, ingest_latency=0.1, commit_interval_s=commit_interval
    )
    n_groups = max(1, n_nodes // group_size)
    aggregators = pipeline.build(n_groups)

    # Deterministic per-(node, metric) readout: base level plus a slow
    # tick ramp, computed with identical float ops in both modes.
    def node_bases(node_idx: int) -> np.ndarray:
        return 100.0 + node_idx * 0.25 + np.arange(metrics_per_node) * 10.0

    fronts: List = []
    if ingest == "legacy":
        for node_idx in range(n_nodes):
            sampler = Sampler(
                engine,
                aggregators[node_idx % n_groups],
                period=sample_period_s,
                name=f"sampler-{node_idx}",
            )
            bases = node_bases(node_idx)
            for metric_idx, key in enumerate(_node_keys(node_idx, metrics_per_node)):
                def reader(now: float, _b=bases, _m=metric_idx, _p=sample_period_s) -> float:
                    return _b[_m] + 0.001 * int(now / _p)

                sampler.add_sensor(CallableSensor(key, reader))
            fronts.append(sampler)
    else:
        registry = pipeline.registry
        for g in range(n_groups):
            group = SamplingGroup(
                engine, aggregators[g], period=sample_period_s, name=f"group-{g}"
            )
            for node_idx in range(g, n_nodes, n_groups):
                bases = node_bases(node_idx)

                def read_all(now: float, _b=bases, _p=sample_period_s) -> np.ndarray:
                    return _b + 0.001 * int(now / _p)

                group.add_bank(
                    SensorBank(
                        _node_keys(node_idx, metrics_per_node), read_all, registry=registry
                    )
                )
            fronts.append(group)

    wall_t0 = time.perf_counter()
    for front in fronts:
        front.start()
    engine.run(until=horizon_s)
    for front in fronts:
        front.stop()
    engine.run(until=horizon_s + 0.5 + (commit_interval or 0.0))
    pipeline.root.flush()
    wall = time.perf_counter() - wall_t0
    return store, wall, engine.events_executed


def run_ingest_benchmark(
    *,
    seed: int = 0,
    n_nodes: int = 1024,
    metrics_per_node: int = 8,
    sample_period_s: float = 5.0,
    horizon_s: float = 180.0,
    group_size: int = 16,
    repeats: int = 2,
) -> Dict[str, float]:
    """Columnar vs per-object ingest at scale; asserts stored equivalence.

    ``seed`` is accepted for harness uniformity; the workload is
    deterministic so both modes must produce identical stores.  Each
    mode runs ``repeats`` times and the fastest wall is reported (the
    usual best-of-N guard against scheduler noise on shared runners).
    """
    del seed  # deterministic scenario
    kwargs = dict(
        n_nodes=n_nodes,
        metrics_per_node=metrics_per_node,
        sample_period_s=sample_period_s,
        horizon_s=horizon_s,
        group_size=group_size,
    )
    legacy_store, legacy_wall, legacy_events = _run_mode("legacy", **kwargs)
    col_store, col_wall, col_events = _run_mode("columnar", **kwargs)
    for _ in range(max(0, repeats - 1)):
        _, wall, _ = _run_mode("legacy", **kwargs)
        legacy_wall = min(legacy_wall, wall)
        _, wall, _ = _run_mode("columnar", **kwargs)
        col_wall = min(col_wall, wall)

    legacy_keys = legacy_store.series_keys()
    match = legacy_store.cardinality() == col_store.cardinality()
    for key in legacy_keys:
        lt, lv = legacy_store.query(key, -np.inf, np.inf)
        ct, cv = col_store.query(key, -np.inf, np.inf)
        if not (np.array_equal(lt, ct) and np.array_equal(lv, cv)):
            match = False
            break

    samples = float(legacy_store.total_inserts)
    return {
        "n_nodes": float(n_nodes),
        "metrics_per_node": float(metrics_per_node),
        "samples": samples,
        "legacy_wall_s": legacy_wall,
        "columnar_wall_s": col_wall,
        "legacy_samples_per_s": samples / legacy_wall,
        "columnar_samples_per_s": float(col_store.total_inserts) / col_wall,
        "speedup": legacy_wall / col_wall,
        "legacy_events": float(legacy_events),
        "columnar_events": float(col_events),
        "event_reduction": legacy_events / max(1, col_events),
        "match": float(match),
    }


def run_e1_scale_check(
    *,
    seed: int = 0,
    baseline_nodes: int = 256,
    scaled_nodes: int = 1024,
    metrics_per_node: int = 4,
    horizon_s: float = 1800.0,
) -> Dict[str, float]:
    """Full E1 at ``scaled_nodes`` (columnar + batch analytics) vs the
    seed configuration at ``baseline_nodes`` (per-object ingest,
    per-point diagnose): the scaled run must fit in the seed budget."""
    t0 = time.perf_counter()
    legacy_row = run_pipeline_scenario(
        seed=seed,
        n_nodes=baseline_nodes,
        metrics_per_node=metrics_per_node,
        horizon_s=horizon_s,
        ingest="legacy",
        diagnose="pointwise",
    )
    legacy_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    columnar_row = run_pipeline_scenario(
        seed=seed,
        n_nodes=scaled_nodes,
        metrics_per_node=metrics_per_node,
        horizon_s=horizon_s,
        ingest="columnar",
    )
    columnar_wall = time.perf_counter() - t0
    return {
        "baseline_nodes": float(baseline_nodes),
        "scaled_nodes": float(scaled_nodes),
        "node_scale_factor": scaled_nodes / baseline_nodes,
        "legacy_wall_s": legacy_wall,
        "columnar_wall_s": columnar_wall,
        "budget_ratio": columnar_wall / legacy_wall,
        "within_budget": float(columnar_wall <= legacy_wall),
        "legacy_completeness": legacy_row["completeness"],
        "columnar_completeness": columnar_row["completeness"],
        "columnar_ingest_rate_per_s": columnar_row["ingest_rate_per_s"],
    }
