"""Fleet-supervision scenarios (experiment E17).

The supervision claim has two halves, and E17 measures both on a
256-instance fleet:

* **Self-healing** — loops are injected with the two production failure
  modes DCDB-style ODA deployments report: *frozen* monitors (the data
  source wedges, so every observation carries an ever-older timestamp —
  ``loop_staleness_s`` grows without bound) and *stuck* loops (the loop
  silently stops iterating — its heartbeat vanishes while the runtime
  still believes it is running).  The health supervisor, whose monitor
  is nothing but ``MetricQuery`` expressions over the fleet's own
  ``loop_*`` self-telemetry, must detect both and restart the patients
  so fleet p95 staleness returns to within 2× of the healthy baseline —
  while the unsupervised control run degrades without bound.

* **Adaptive fusion** — the same watch fleet run with query fusion
  *disabled* and no manual ``fuse`` flags anywhere.  The fusion
  supervisor observes the hub's tick-sharing statistics (hundreds of
  narrow queries sharing one widened shape per tick), flips the shape's
  fuse override on, and the Monitor phase must end up ≥2× cheaper than
  the never-fused control with identical analyzer verdicts.

Both scenarios are deterministic: rerunning one yields the identical
supervisor action trace, which is also asserted in tests.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.audit import AuditTrail
from repro.core.component import Executor, Planner
from repro.core.loop import PhaseLatency
from repro.core.runtime import LoopRuntime, LoopSpec, MonitorQuery, RuntimeConfig
from repro.core.supervisor import SupervisorConfig, attach_supervisors
from repro.core.types import Action, AnalysisReport, ExecutionResult, Observation, Plan
from repro.experiments.loops_exp import UtilWatchAnalyzer, _fill_store, watch_fleet_specs
from repro.sim import Engine
from repro.telemetry.tsdb import TimeSeriesStore


class HeartbeatPlanner(Planner):
    """Plans one advisory action per observed cycle.

    Acting every cycle is what makes the fleet's ``loop_staleness_s``
    stream dense — staleness is only defined at actuation time, so a
    watch-only fleet would be invisible to staleness supervision.
    """

    name = "heartbeat-planner"

    def __init__(self, target: str) -> None:
        self.target = target

    def plan(self, report: AnalysisReport, knowledge) -> Plan:
        return Plan(
            report.time,
            self.name,
            (Action("notify_user", self.target, rationale="cycle heartbeat"),),
        )


class AckExecutor(Executor):
    """Accepts every action (the actuator side of an advisory fleet)."""

    name = "ack-executor"

    def execute(self, plan: Plan, knowledge) -> List[ExecutionResult]:
        return [ExecutionResult(a, plan.time, honored=True) for a in plan.actions]


def acting_fleet_specs(
    metric: str,
    node_ids: Sequence[str],
    n_loops: int,
    *,
    period_s: float = 30.0,
    window_s: float = 600.0,
    step_s: float = 60.0,
    decision_delay_s: float = 2.0,
    threshold: float = 0.8,
    name_prefix: str = "act",
) -> List[LoopSpec]:
    """One acting watch-loop spec per node partition.

    Like :func:`~repro.experiments.loops_exp.watch_fleet_specs` but the
    loops actuate (advisory heartbeat per cycle) and carry a nonzero
    Analyze latency, so every cycle publishes a ``loop_staleness_s``
    sample — healthy staleness equals ``decision_delay_s``.  The
    observation builder keeps its state in the monitor's ``_memory``
    slot, which is what makes a frozen monitor repairable by restart.
    """
    import re as _re

    if n_loops <= 0 or not node_ids:
        return []
    partitions = np.array_split(np.asarray(node_ids, dtype=object), n_loops)
    specs: List[LoopSpec] = []
    for i, part in enumerate(partitions):
        if part.size == 0:
            continue
        alternation = "|".join(_re.escape(str(n)) for n in part)
        expr = (
            f'mean({metric}{{node=~"{alternation}"}}[{window_s:g}s] by {step_s:g}s) '
            "group by (node)"
        )
        name = f"{name_prefix}-{i:04d}"

        def build(now: float, inputs, _name=name) -> Optional[Observation]:
            # a frozen monitor (injected fault) reports an ever-older
            # observation time — the data source wedged at frozen_at
            frozen = inputs["_memory"].get("frozen_at")
            result = inputs["util"]
            values = {
                f"util:{series.label('node')}": float(series.values[-1])
                for series in result.series
                if series.values.size
            }
            if not values:
                return None
            return Observation(frozen if frozen is not None else now, _name, values=values)

        specs.append(
            LoopSpec(
                name=name,
                queries=(MonitorQuery("util", expr),),
                build_observation=build,
                analyzer_factory=lambda: UtilWatchAnalyzer(threshold),
                planner_factory=lambda _n=name: HeartbeatPlanner(_n),
                executor_factory=AckExecutor,
                period_s=period_s,
                phase_latency=PhaseLatency(analyze_s=decision_delay_s),
            )
        )
    return specs


def inject_faults(
    runtime: LoopRuntime, *, frozen: Sequence[str] = (), stuck: Sequence[str] = ()
) -> None:
    """Wedge a deterministic set of loops.

    ``frozen`` loops keep iterating but their monitors report the
    injection time forever (staleness grows); ``stuck`` loops silently
    never iterate again while still reporting ``running`` (heartbeat
    vanishes).  Both are cleared by a supervisor restart.
    """
    now = runtime.engine.now
    for name in frozen:
        runtime.handles[name].loop.monitor._memory["frozen_at"] = now
    for name in stuck:
        runtime.handles[name].wedge()


def _staleness_p95(runtime: LoopRuntime, *, at: float, window_s: float) -> float:
    value = runtime.query_engine.scalar(
        f"p95(loop_staleness_s[{window_s:g}s])", at=at
    )
    return float(value) if value is not None else float("nan")


def supervisor_action_trace(audit: AuditTrail) -> List[Tuple[float, str, str, str]]:
    """The audited fleet operations, in execution order."""
    return [
        (e.time, e.loop, str(e.data.get("op", "")), str(e.data.get("loop", "")))
        for e in audit.by_phase("fleet")
    ]


def run_supervision_scenario(
    *,
    seed: int = 0,
    n_loops: int = 256,
    nodes_per_loop: int = 1,
    supervise: bool = True,
    period_s: float = 30.0,
    window_s: float = 600.0,
    decision_delay_s: float = 2.0,
    inject_after_s: float = 300.0,
    recover_s: float = 600.0,
    measure_window_s: float = 240.0,
    frozen_frac: float = 1 / 16,
    stuck_frac: float = 1 / 32,
    supervisor: Optional[SupervisorConfig] = None,
    make_store=None,
    make_query_engine=None,
) -> Dict[str, object]:
    """One fleet run with injected faults; optionally supervised.

    Timeline (simulated seconds): loops start at ``window_s`` (past the
    query warm-up), run healthy for ``inject_after_s``, faults are
    injected, and the run ends ``recover_s`` later.  Fleet staleness
    p95 is measured over ``measure_window_s`` right before injection
    (healthy baseline) and again at the end (recovered or degraded).

    ``make_store(capacity)`` / ``make_query_engine(store, config)``
    substitute the storage and serving tier (the E18 reruns supervise
    the same fleet over the sharded and process-parallel engines); the
    store is closed after the run when it exposes ``close()``.
    """
    n_nodes = n_loops * nodes_per_loop
    node_ids = [f"n{i:04d}" for i in range(n_nodes)]
    t_start = window_s
    t_inject = t_start + inject_after_s
    t_end = t_inject + recover_s
    engine = Engine()
    capacity = int(t_end / 10.0) + 16
    store = (
        make_store(capacity) if make_store is not None
        else TimeSeriesStore(default_capacity=capacity)
    )
    _fill_store(store, node_ids, "node_cpu_util", t_end, 10.0, seed, 0.1)
    audit = AuditTrail()
    query_engine = (
        make_query_engine(store, RuntimeConfig()) if make_query_engine is not None else None
    )
    runtime = LoopRuntime(engine, store, query_engine=query_engine, audit=audit)
    specs = acting_fleet_specs(
        "node_cpu_util",
        node_ids,
        n_loops,
        period_s=period_s,
        window_s=window_s,
        decision_delay_s=decision_delay_s,
    )
    for spec in specs:
        spec.start_at = t_start
    runtime.add_many(specs, start=True)
    cfg = supervisor if supervisor is not None else SupervisorConfig(
        period_s=60.0,
        window_s=window_s,
        heartbeat_factor=3.0,
        heartbeat_step_s=period_s,
        staleness_bound_s=3.0 * period_s,
        restart_cooldown_s=240.0,
    )
    if supervise:
        attach_supervisors(runtime, cfg, kinds=("health",))
    wall_t0 = time.perf_counter()
    engine.run(until=t_inject)
    healthy_p95 = _staleness_p95(runtime, at=t_inject, window_s=measure_window_s)
    names = sorted(h for h in runtime.handles if h.startswith("act-"))
    frozen = names[: int(n_loops * frozen_frac)]
    stuck = names[len(frozen): len(frozen) + int(n_loops * stuck_frac)]
    inject_faults(runtime, frozen=frozen, stuck=stuck)
    engine.run(until=t_end)
    wall_s = time.perf_counter() - wall_t0
    runtime.stop()
    final_p95 = _staleness_p95(runtime, at=t_end, window_s=measure_window_s)
    stuck_recovered = sum(
        1 for name in stuck
        if runtime.handles[name].loop.iterations_run > 0 and runtime.handles[name].restarts > 0
    )
    close = getattr(store, "close", None)
    if close is not None:
        close()
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "supervised": 1.0 if supervise else 0.0,
        "healthy_p95_s": healthy_p95,
        "final_p95_s": final_p95,
        "frozen": float(len(frozen)),
        "stuck": float(len(stuck)),
        "restarts": float(runtime.restarts_total),
        "stuck_recovered": float(stuck_recovered),
        "iterations": float(runtime.iterations_total),
        "wall_s": wall_s,
        "trace": supervisor_action_trace(audit),
    }


def run_supervision_benchmark(
    *, seed: int = 0, n_loops: int = 256, **kwargs
) -> Dict[str, float]:
    """E17a: supervised vs unsupervised fleet under injected faults."""
    supervised = run_supervision_scenario(
        seed=seed, n_loops=n_loops, supervise=True, **kwargs
    )
    control = run_supervision_scenario(
        seed=seed, n_loops=n_loops, supervise=False, **kwargs
    )
    healthy = float(supervised["healthy_p95_s"])
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "frozen": supervised["frozen"],
        "stuck": supervised["stuck"],
        "healthy_p95_s": healthy,
        "supervised_p95_s": float(supervised["final_p95_s"]),
        "unsupervised_p95_s": float(control["final_p95_s"]),
        "restores_within_2x": 1.0
        if supervised["final_p95_s"] <= 2.0 * healthy
        else 0.0,
        "control_degrades": 1.0
        if control["final_p95_s"] > 2.0 * healthy
        else 0.0,
        "restarts": supervised["restarts"],
        "stuck_recovered": supervised["stuck_recovered"],
        "actions_audited": float(len(supervised["trace"])),
        "wall_s": float(supervised["wall_s"]) + float(control["wall_s"]),
    }


# ---------------------------------------------------------------------------
# Adaptive fusion (E17b)


def _run_watch_fleet(
    *,
    node_ids: Sequence[str],
    n_loops: int,
    seed: int,
    ticks: int,
    period_s: float,
    window_s: float,
    adaptive: bool,
    supervisor: SupervisorConfig,
) -> Dict[str, float]:
    """One watch fleet with fusion disabled; optionally fusion-supervised.

    The non-adaptive control also runs uncached — the E15 ad-hoc
    serving idiom.  Fusion's economics *are* the shared cached widened
    pass, so the adaptive side keeps the cache and must recover the
    fused-serving win by flipping the shape override itself.
    """
    horizon_s = window_s + ticks * period_s
    engine = Engine()
    store = TimeSeriesStore(default_capacity=int(horizon_s / 10.0) + 16)
    _fill_store(store, node_ids, "node_cpu_util", horizon_s, 10.0, seed, 0.1)
    runtime = LoopRuntime(
        engine, store, config=RuntimeConfig(fuse_queries=False, enable_cache=adaptive)
    )
    specs = watch_fleet_specs(
        "node_cpu_util", node_ids, n_loops, period_s=period_s, window_s=window_s,
        cluster_query=True,
    )
    for spec in specs:
        spec.start_at = window_s
    runtime.add_many(specs, start=True)
    if adaptive:
        attach_supervisors(runtime, supervisor, kinds=("fusion",))
    wall_t0 = time.perf_counter()
    engine.run(until=window_s + ticks * period_s - 1.0)
    wall_s = time.perf_counter() - wall_t0
    runtime.stop()
    meta = {name for name, h in runtime.handles.items() if name.startswith("meta-")}
    cycle_ms = sum(
        it.wall_ms
        for name, h in runtime.handles.items()
        if name not in meta
        for it in h.loop.iterations
    )
    flags = sum(
        h.loop.analyzer.flags_total
        for name, h in runtime.handles.items()
        if name not in meta
    )
    qe = runtime.query_engine
    return {
        "wall_s": wall_s,
        "cycle_ms": cycle_ms,
        "flags": float(flags),
        "queries_executed": float(qe.served_raw + qe.served_rollup),
        "fused_served": float(runtime.hub.fused_served),
        "overrides": float(len(runtime.hub.fuse_overrides)),
    }


def run_adaptive_fusion_benchmark(
    *,
    seed: int = 0,
    n_loops: int = 256,
    nodes_per_loop: int = 2,
    ticks: int = 20,
    period_s: float = 60.0,
    window_s: float = 600.0,
) -> Dict[str, float]:
    """E17b: adaptive fusion vs never-fused, no manual ``fuse`` flags.

    Both fleets run with the hub's fusion default off.  The adaptive
    side additionally hosts the fusion supervisor, which must discover
    the fusible load from tick-sharing statistics and flip the shape
    override within its evidence window — so the speedup includes the
    unfused burn-in ticks before the flip.
    """
    node_ids = [f"n{i:04d}" for i in range(n_loops * nodes_per_loop)]
    supervisor = SupervisorConfig(
        period_s=period_s, window_s=window_s, fuse_min_sharing=4.0, fuse_min_ticks=3.0
    )
    common = dict(
        node_ids=node_ids,
        n_loops=n_loops,
        seed=seed,
        ticks=ticks,
        period_s=period_s,
        window_s=window_s,
        supervisor=supervisor,
    )
    unfused = _run_watch_fleet(adaptive=False, **common)
    adaptive = _run_watch_fleet(adaptive=True, **common)
    return {
        "seed": seed,
        "n_loops": float(n_loops),
        "ticks": float(ticks),
        "unfused_cycle_ms": unfused["cycle_ms"],
        "adaptive_cycle_ms": adaptive["cycle_ms"],
        "monitor_speedup": unfused["cycle_ms"] / max(adaptive["cycle_ms"], 1e-9),
        "unfused_queries": unfused["queries_executed"],
        "adaptive_queries": adaptive["queries_executed"],
        "fused_served": adaptive["fused_served"],
        "overrides": adaptive["overrides"],
        "flags_unfused": unfused["flags"],
        "flags_adaptive": adaptive["flags"],
        "match": 1.0 if unfused["flags"] == adaptive["flags"] else 0.0,
    }
