"""Provenance stamping for benchmark artifacts.

CI uploads ``BENCH_*.json`` rows from every run; comparing them across
runs is only meaningful if each row says *which* code produced it and
*when*.  :func:`provenance` returns those fields; the ``bench-*`` CLI
commands merge them into every JSON artifact they write.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from typing import Dict


def git_sha() -> str:
    """The current commit, from the env (CI) or git, else ``"unknown"``.

    ``GITHUB_SHA`` wins when present: artifact provenance must name the
    commit CI checked out even if the workspace has extra commits.
    """
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance() -> Dict[str, str]:
    """Fields every benchmark artifact should carry."""
    return {
        "git_sha": git_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def stamp(row: Dict) -> Dict:
    """Return ``row`` with provenance fields merged in (row wins ties)."""
    out: Dict = dict(provenance())
    out.update(row)
    return out
