"""Multi-tenant serving benchmark (E21, Section IV).

The PR-10 front door (:mod:`repro.serve`) puts admission control, a
degrade ladder, and priority shedding between external callers and the
query engines.  This experiment prices and gates that layer under the
regime it exists for — sustained mixed traffic — using only the public
:mod:`repro.api` surface:

* **Sustained mixed load** — several tenants of different priorities
  hammer one :class:`~repro.api.Client` closed-loop from driver threads
  while an ingest pump keeps committing telemetry under the serving
  write gate (the coupled two-traffics picture).  Gates: multi-thousand
  aggregate QPS (full mode, multi-core hosts), served p99 bounded by
  the request deadline, per-tenant accounting that adds up exactly
  (``submitted == admitted + rejected + shed``, and every admitted
  request is served, expired, or errored), and **exactness** — answers
  served for a tenant that forbids degradation are bit-identical to
  direct engine execution.

* **Quota isolation** — a quiet, paced tenant is measured alone, then
  again while a greedy tenant floods the door from unpaced drivers.
  Round-robin dispatch + per-tenant in-flight caps must keep the quiet
  tenant's p99 within 2x of its solo baseline (with a small absolute
  floor: sub-millisecond p99s are scheduler noise, not signal), while
  the greedy tenant's excess bounces off its token bucket.

Wall-clock numbers here are host-dependent by design; the exactness and
accounting checks are what CI asserts in smoke mode.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import Client, ClusterConfig, TenantSpec

#: the rotating query mix every driver cycles through — range shapes at
#: several grains (rollup-servable and raw), a grouped fleet scan, and a
#: standing-eligible shape that the front door auto-promotes
QUERY_EXPRS: Tuple[str, ...] = (
    "mean(node_cpu_util[600s] by 60s)",
    "max(node_cpu_util[600s] by 60s)",
    "mean(node_cpu_util[300s] by 30s)",
    "sum(node_cpu_util[120s] by 10s)",
    "mean(node_cpu_util[600s] by 600s)",
    "mean(node_cpu_util[600s] by 60s) group by (node)",
)

#: (tenant, n_drivers, pace_s, deadline_ms) — one entry per traffic class
LoadPlan = Sequence[Tuple[str, int, float, Optional[float]]]


def build_client(
    *,
    seed: int = 0,
    n_nodes: int = 64,
    horizon_s: float = 1800.0,
    tenants: Sequence[TenantSpec] = (),
    n_workers: int = 2,
) -> Client:
    """A served cluster with ``horizon_s`` of telemetry already committed."""
    client = Client.from_config(
        ClusterConfig(n_nodes=n_nodes, telemetry_period_s=10.0, seed=seed),
        tenants=tenants,
        n_workers=n_workers,
    )
    client.run(until=horizon_s)
    return client


def run_mixed_load(
    client: Client,
    plan: LoadPlan,
    *,
    duration_s: float,
    exprs: Sequence[str] = QUERY_EXPRS,
    ats: Optional[Sequence[float]] = None,
    ingest_period_s: float = 10.0,
    ingest_sleep_s: float = 0.02,
) -> Dict[str, Dict[str, object]]:
    """Drive closed-loop tenant traffic plus a concurrent ingest pump.

    Every driver thread submits synchronously (at most one outstanding
    request each), rotating through ``exprs`` x ``ats``; the pump keeps
    advancing the simulation under the write gate, which both sustains
    ingest pressure and invalidates the epoch-keyed hot cache so the
    engines keep doing real work.  Returns per-tenant observed counts
    and served latencies (phase-local — unlike the front door's rings).
    """
    if ats is None:
        now = client.now
        ats = tuple(now - off for off in (0.0, 60.0, 120.0, 180.0))
    stop = threading.Event()

    def pump() -> None:
        while not stop.is_set():
            client.run(until=client.now + ingest_period_s)
            stop.wait(ingest_sleep_s)

    def drive(name: str, pace_s: float, deadline_ms: Optional[float],
              t_end: float, sink: Dict[str, object]) -> None:
        status: Dict[str, int] = sink["status"]  # type: ignore[assignment]
        latencies: List[float] = sink["latencies"]  # type: ignore[assignment]
        i = 0
        while time.perf_counter() < t_end:
            expr = exprs[i % len(exprs)]
            at = ats[(i // len(exprs)) % len(ats)]
            r = client.query(expr, tenant=name, at=at, deadline_ms=deadline_ms)
            status[r.status] = status.get(r.status, 0) + 1
            if r.ok:
                latencies.append(r.latency_ms)
                if r.degraded:
                    sink["degraded"] = int(sink["degraded"]) + 1  # type: ignore[arg-type]
            if pace_s:
                time.sleep(pace_s)
            i += 1

    sinks: List[Dict[str, object]] = []
    threads: List[threading.Thread] = []
    t_end = time.perf_counter() + duration_s
    for name, n_drivers, pace_s, deadline_ms in plan:
        for _ in range(n_drivers):
            sink: Dict[str, object] = {
                "tenant": name, "status": {}, "latencies": [], "degraded": 0,
            }
            sinks.append(sink)
            threads.append(threading.Thread(
                target=drive, args=(name, pace_s, deadline_ms, t_end, sink),
                daemon=True,
            ))
    pump_thread = threading.Thread(target=pump, daemon=True)
    pump_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    pump_thread.join(timeout=10.0)

    merged: Dict[str, Dict[str, object]] = {}
    for sink in sinks:
        out = merged.setdefault(str(sink["tenant"]), {
            "ok": 0, "rejected": 0, "expired": 0, "error": 0,
            "degraded": 0, "latencies_ms": [],
        })
        for status, count in sink["status"].items():  # type: ignore[union-attr]
            out[status] = int(out.get(status, 0)) + count
        out["degraded"] = int(out["degraded"]) + int(sink["degraded"])  # type: ignore[arg-type]
        out["latencies_ms"].extend(sink["latencies"])  # type: ignore[union-attr]
    for out in merged.values():
        out["latencies_ms"] = np.asarray(out["latencies_ms"], dtype=np.float64)
    return merged


def _p99(latencies: np.ndarray) -> float:
    return float(np.percentile(latencies, 99)) if latencies.size else 0.0


def _accounting_ok(stats: Dict[str, object]) -> bool:
    """Per-tenant conservation: every request lands in exactly one bin."""
    for key, value in stats.items():
        if not (isinstance(key, str) and key.startswith("tenant_")):
            continue
        t = value  # type: Dict[str, float]
        arrived = (t["admitted"] + t["rejected_quota"]
                   + t["rejected_queue_full"] + t["shed"])
        if t["submitted"] != arrived:
            return False
        settled = t["served"] + t["expired"] + t["errors"]
        if t["admitted"] != settled + t["queue_depth"] + t["inflight"]:
            return False
    return True


def run_serve_load_benchmark(
    *,
    seed: int = 0,
    n_nodes: int = 64,
    horizon_s: float = 1800.0,
    duration_s: float = 3.0,
    n_drivers: int = 4,
    tenant: str = "interactive",
    qps_quota: float = 4000.0,
    deadline_ms: float = 250.0,
    check_queries: int = 8,
) -> Dict[str, float]:
    """E21: sustained mixed multi-tenant load over one front door."""
    tenants = [
        TenantSpec(tenant, qps=qps_quota, max_inflight=8, queue_depth=256,
                   priority=2),
        TenantSpec("batch", qps=qps_quota / 2.0, max_inflight=4, queue_depth=64,
                   priority=1),
        TenantSpec("besteffort", qps=qps_quota / 2.0, max_inflight=2,
                   queue_depth=16, priority=0),
        # the exactness probe: degradation forbidden, so its answers must
        # match direct engine execution bit for bit
        TenantSpec("checker", qps=qps_quota, max_inflight=2, queue_depth=32,
                   priority=2, allow_degraded=False),
    ]
    client = build_client(seed=seed, n_nodes=n_nodes, horizon_s=horizon_s,
                          tenants=tenants)
    with client:
        plan: LoadPlan = [
            (tenant, n_drivers, 0.0, deadline_ms),
            ("batch", max(1, n_drivers // 2), 0.0, deadline_ms * 2),
            ("besteffort", max(1, n_drivers // 2), 0.0, deadline_ms),
        ]
        wall_t0 = time.perf_counter()
        observed = run_mixed_load(client, plan, duration_s=duration_s)
        wall = time.perf_counter() - wall_t0

        # exactness: the no-degrade tenant vs direct engine execution at
        # pinned times, after the burst (queues drained by run_mixed_load)
        at = client.now
        mismatches = 0
        for i in range(check_queries):
            expr = QUERY_EXPRS[i % len(QUERY_EXPRS)]
            r = client.query(expr, tenant="checker", at=at)
            if not r.ok or r.degraded:
                mismatches += 1
                continue
            with client.front_door.write_gate():
                want = client.engine.query(client.engine.parse(expr), at=at)
            same = len(r.series) == len(want.series) and all(
                a.labels == b.labels
                and np.array_equal(a.times, b.times)
                and np.array_equal(a.values, b.values)
                for a, b in zip(r.series, want.series)
            )
            mismatches += 0 if same else 1

        stats = client.front_door.stats()
        served_lat = np.concatenate(
            [o["latencies_ms"] for o in observed.values()]
        ) if observed else np.empty(0)
        served = float(stats["served"])
        row = {
            "seed": float(seed),
            "n_nodes": float(n_nodes),
            "duration_s": float(duration_s),
            "n_drivers": float(n_drivers),
            "submitted": float(stats["submitted"]),
            "served": served,
            "qps": served / wall if wall > 0 else 0.0,
            "p99_ms": _p99(served_lat),
            "deadline_ms": float(deadline_ms),
            "hot_hits": float(stats["hot_hits"]),
            "standing_served": float(stats["standing_served"]),
            "degraded": float(stats["degraded"]),
            "shed": float(stats["shed"]),
            "rejected_quota": float(stats["rejected_quota"]),
            "rejected_queue_full": float(stats["rejected_queue_full"]),
            "expired": float(stats["expired"]),
            "errors": float(stats["errors"]),
            "accounting_ok": 1.0 if _accounting_ok(stats) else 0.0,
            "match": 1.0 if mismatches == 0 else 0.0,
        }
    return row


def run_quota_isolation_benchmark(
    *,
    seed: int = 0,
    n_nodes: int = 64,
    horizon_s: float = 1800.0,
    duration_s: float = 2.0,
    greedy_drivers: int = 4,
    deadline_ms: float = 250.0,
) -> Dict[str, float]:
    """E21b: a greedy tenant must not wreck a quiet tenant's p99.

    The quiet tenant runs paced (one driver, ~2 ms think time) alone for
    its baseline, then again under a greedy flood.  The contended p99 is
    gated at 2x the solo baseline with a 5 ms absolute floor — at these
    service times, anything below the floor is scheduler jitter.
    """
    tenants = [
        TenantSpec("quiet", qps=600.0, max_inflight=2, queue_depth=64,
                   priority=2),
        TenantSpec("greedy", qps=800.0, max_inflight=4, queue_depth=32,
                   priority=1),
    ]
    client = build_client(seed=seed, n_nodes=n_nodes, horizon_s=horizon_s,
                          tenants=tenants)
    with client:
        quiet_plan: LoadPlan = [("quiet", 1, 0.002, deadline_ms)]
        solo = run_mixed_load(client, quiet_plan, duration_s=duration_s)
        contended = run_mixed_load(
            client,
            list(quiet_plan) + [("greedy", greedy_drivers, 0.0, deadline_ms)],
            duration_s=duration_s,
        )
        stats = client.front_door.stats()
        solo_p99 = _p99(solo["quiet"]["latencies_ms"])
        cont_p99 = _p99(contended["quiet"]["latencies_ms"])
        greedy = contended.get("greedy", {"ok": 0, "rejected": 0})
        row = {
            "seed": float(seed),
            "duration_s": float(duration_s),
            "greedy_drivers": float(greedy_drivers),
            "quiet_solo_p99_ms": solo_p99,
            "quiet_contended_p99_ms": cont_p99,
            "p99_ratio": cont_p99 / max(solo_p99, 2.5),
            "quiet_served": float(int(solo["quiet"]["ok"])
                                  + int(contended["quiet"]["ok"])),
            "greedy_served": float(int(greedy["ok"])),
            "greedy_rejected": float(int(greedy["rejected"])),
            "accounting_ok": 1.0 if _accounting_ok(stats) else 0.0,
            "isolation_ok": 1.0 if cont_p99 <= max(2.0 * solo_p99, 5.0) else 0.0,
        }
    return row


def run_serve_benchmark(
    *,
    seed: int = 0,
    n_nodes: int = 64,
    duration_s: float = 3.0,
    n_drivers: int = 4,
    tenant: str = "interactive",
    qps_quota: float = 4000.0,
    deadline_ms: float = 250.0,
) -> Dict[str, Dict[str, float]]:
    """Both E21 halves with shared sizing (the CLI/CI entry)."""
    return {
        "load": run_serve_load_benchmark(
            seed=seed, n_nodes=n_nodes, duration_s=duration_s,
            n_drivers=n_drivers, tenant=tenant, qps_quota=qps_quota,
            deadline_ms=deadline_ms,
        ),
        "isolation": run_quota_isolation_benchmark(
            seed=seed, n_nodes=n_nodes,
            duration_s=max(0.5, duration_s * (2.0 / 3.0)),
            greedy_drivers=n_drivers, deadline_ms=deadline_ms,
        ),
    }
