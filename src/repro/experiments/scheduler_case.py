"""Scheduler-case scenario (experiments E3, E8, E11, E12).

One function runs the whole Fig. 3 experiment under a selectable
response mode:

* ``none``        — status quo: underestimated jobs time out.
* ``padding``     — static mitigation: every request inflated up front.
* ``human``       — the loop plans, but a simulated operator must approve
                    (reaction latency / availability / approval model).
* ``autonomous``  — the MAPE-K loop acts directly (the paper's target).
* ``oracle``      — perfect information upper bound: exactly the needed
                    extension granted right before the deadline.

Resubmission with checkpoint restart runs in every mode, so the metric
differences come from the response channel, not retry behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import (
    ExtensionPolicy,
    Scheduler,
    SchedulerConfig,
)
from repro.core.humanloop import HumanInTheLoopExecutor, HumanResponseModel
from repro.experiments.metrics import JobOutcomeSummary
from repro.loops.scheduler_loop import (
    SchedulerCaseConfig,
    SchedulerCaseManager,
    SchedulerExecutor,
)
from repro.sim import Engine, RngRegistry
from repro.telemetry.markers import ProgressMarkerChannel
from repro.workloads.generator import (
    MisestimationModel,
    ResubmitPolicy,
    WorkloadGenerator,
    WorkloadSpec,
)

MODES = ("none", "padding", "human", "autonomous", "oracle")


@dataclass
class SchedulerScenarioConfig:
    """Parameters of one scheduler-case run."""

    seed: int = 0
    mode: str = "autonomous"
    n_nodes: int = 16
    n_jobs: int = 40
    horizon_s: float = 500_000.0
    pad_factor: float = 1.5  # padding mode: request inflation
    misestimation_mu: float = -0.15  # bias toward underestimation
    misestimation_sigma: float = 0.35
    forecaster_name: str = "ols"
    loop_period_s: float = 60.0
    budget_max_extensions: int = 3
    budget_max_total_s: float = 14_400.0
    deny_prob: float = 0.0
    human_median_latency_s: float = 1800.0
    human_availability: float = 0.7
    max_resubmits: int = 2

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.pad_factor < 1.0:
            raise ValueError("pad_factor must be >= 1")


def run_scheduler_scenario(cfg: SchedulerScenarioConfig) -> Dict[str, float]:
    """Run the scenario; returns a metrics row."""
    engine = Engine()
    rngs = RngRegistry(seed=cfg.seed)
    channel = ProgressMarkerChannel()
    checkpoints = CheckpointStore()
    policy = ExtensionPolicy(
        max_extensions_per_job=10,  # site-side generous; loop guards budget
        max_total_extension_s=100_000.0,
        deny_prob=cfg.deny_prob,
        rng=rngs.stream("deny") if cfg.deny_prob > 0 else None,
    )
    nodes = [Node(f"n{i:03d}", NodeSpec()) for i in range(cfg.n_nodes)]
    scheduler = Scheduler(
        engine,
        nodes,
        config=SchedulerConfig(extension_policy=policy),
        marker_channel=channel,
        checkpoint_store=checkpoints,
        rng=rngs.stream("scheduler"),
    )
    spec = WorkloadSpec(
        n_jobs=cfg.n_jobs,
        misestimation=MisestimationModel(mu=cfg.misestimation_mu, sigma=cfg.misestimation_sigma),
    )
    generator = WorkloadGenerator(engine, scheduler, rngs.stream("workload"), spec)
    resubmit = ResubmitPolicy(
        engine,
        scheduler,
        checkpoint_store=checkpoints,
        max_resubmits_per_job=cfg.max_resubmits,
    )

    manager: Optional[SchedulerCaseManager] = None
    human: Dict[str, HumanInTheLoopExecutor] = {}
    if cfg.mode == "padding":
        _install_padding(generator, cfg.pad_factor)
    elif cfg.mode in ("autonomous", "human"):
        case_cfg = SchedulerCaseConfig(
            forecaster_name=cfg.forecaster_name,
            loop_period_s=cfg.loop_period_s,
            budget_max_extensions=cfg.budget_max_extensions,
            budget_max_total_s=cfg.budget_max_total_s,
        )
        executor_factory = None
        if cfg.mode == "human":
            model = HumanResponseModel(
                median_latency_s=cfg.human_median_latency_s,
                availability=cfg.human_availability,
            )
            human_rng = rngs.stream("human")

            def executor_factory(sched, _model=model, _rng=human_rng):
                executor = HumanInTheLoopExecutor(
                    engine, SchedulerExecutor(sched), _model, _rng
                )
                human[f"exec-{len(human)}"] = executor
                return executor

        manager = SchedulerCaseManager(
            engine,
            scheduler,
            channel,
            config=case_cfg,
            executor_factory=executor_factory,
        )
    elif cfg.mode == "oracle":
        _install_oracle(engine, scheduler)

    generator.start()
    engine.run(until=cfg.horizon_s)

    summary = JobOutcomeSummary.from_scheduler(scheduler, cfg.horizon_s)
    row: Dict[str, float] = {"mode": cfg.mode, "seed": cfg.seed}
    row.update(summary.as_row())
    row["resubmissions"] = resubmit.resubmissions
    row["underestimated"] = len(generator.underestimated_jobs())
    if human:
        row["human_dropped"] = sum(h.plans_dropped_unavailable for h in human.values())
        row["human_approved"] = sum(h.plans_executed for h in human.values())
    if manager is not None:
        assessed = manager.mean_assessment()
        row["mean_assessment"] = assessed if assessed is not None else float("nan")
    return row


def _install_padding(generator: WorkloadGenerator, pad_factor: float) -> None:
    """Inflate every request before submission (static baseline)."""
    original = generator.make_job

    def padded() -> Job:
        job = original()
        job.walltime_request_s *= pad_factor
        job.time_limit_s = job.walltime_request_s
        return job

    generator.make_job = padded  # type: ignore[method-assign]


def _install_oracle(engine: Engine, scheduler: Scheduler) -> None:
    """Perfect-information upper bound: exact extension just in time."""

    margin = 120.0

    def arm(job: Job) -> None:
        engine.schedule_at(max(engine.now, job.deadline - margin), rescue, job)

    def rescue(job: Job) -> None:
        if job.state is not JobState.RUNNING:
            return
        app = scheduler.app(job.job_id)
        if app is None:
            return
        app._advance(engine.now)
        remaining = app.remaining_seconds_nominal()
        available = job.deadline - engine.now
        if remaining > available:
            response = scheduler.request_extension(
                job.job_id, remaining - available + margin
            )
            if not response.denied:
                arm(job)  # re-arm at the new deadline (noise can still bite)

    scheduler.on_job_start.append(arm)
