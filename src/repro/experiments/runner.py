"""Regenerate every experiment table.

``python -m repro.experiments.runner`` runs experiments E1–E12 at the
paper-reproduction sizes and prints each table; ``--quick`` shrinks the
workloads for smoke runs.  EXPERIMENTS.md records one captured output
of this runner next to the expected shapes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.harness import aggregate_rows, replicate
from repro.experiments.interchange_exp import run_interchange_matrix
from repro.experiments.maintenance_exp import run_maintenance_scenario
from repro.experiments.misconfig_exp import run_misconfig_scenario
from repro.experiments.model_exp import run_forecaster_comparison, run_model_ablation
from repro.experiments.patterns_exp import PatternScenarioConfig, run_pattern_scenario
from repro.experiments.pipeline_exp import run_pipeline_scenario, run_sampling_tradeoff
from repro.experiments.report import render_table
from repro.experiments.scheduler_case import (
    SchedulerScenarioConfig,
    run_scheduler_scenario,
)
from repro.experiments.storage_exp import run_ioqos_scenario, run_ost_scenario
from repro.experiments.trust_exp import run_trust_sweep
from repro.experiments.tsdb_exp import run_knowledge_ops, run_tsdb_ingest, run_tsdb_queries


def _p(text: str) -> None:
    print(text)
    print()


def run_all(quick: bool = False, seeds: List[int] = (0, 1, 2)) -> None:
    scale = 0.4 if quick else 1.0
    n_jobs = max(10, int(32 * scale))
    horizon = 400_000.0 * max(scale, 0.5)

    # ------------------------------------------------------------- E1
    row = run_pipeline_scenario(
        seed=0, n_nodes=int(64 * scale) or 16, horizon_s=3600.0 * max(scale, 0.5)
    )
    _p(render_table([row], title="E1 (Fig. 1) — holistic monitoring + ODA pipeline"))
    _p(render_table(
        run_sampling_tradeoff(seed=0, n_nodes=int(16 * scale) or 8),
        title="E1b — sampling-period design dial (overhead vs reaction)",
    ))

    # ------------------------------------------------------------- E2
    rows = []
    for pattern in ("classical", "master-worker", "coordinated", "hierarchical"):
        for n in (8, 32, 128):
            rows.append(
                run_pattern_scenario(
                    PatternScenarioConfig(
                        seed=1, pattern=pattern, n_elements=n,
                        horizon_s=900.0, settle_s=300.0,
                    )
                )
            )
    _p(render_table(
        rows,
        columns=["pattern", "n", "latency_s", "messages_total", "bias", "osc_std", "uncontrolled_frac"],
        title="E2 (Fig. 2) — pattern scalability (no failures)",
    ))
    rows = [
        run_pattern_scenario(
            PatternScenarioConfig(
                seed=2, pattern=p, n_elements=32, horizon_s=900.0, inject_failure_at=300.0
            )
        )
        for p in ("master-worker", "coordinated", "hierarchical")
    ]
    _p(render_table(
        rows,
        columns=["pattern", "uncontrolled_frac", "bias", "osc_std"],
        title="E2 (Fig. 2) — robustness under controller failure at t=300s",
    ))
    rows = [
        dict(comp_gain=cg, **{k: v for k, v in run_pattern_scenario(
            PatternScenarioConfig(seed=3, pattern="coordinated", n_elements=16,
                                  horizon_s=900.0, comp_gain=cg)).items()
            if k in ("osc_std", "bias")})
        for cg in (0.1, 0.5, 1.0, 2.0, 3.0)
    ]
    _p(render_table(rows, title="E2 (Fig. 2c) — coordinated-pattern stability vs comp_gain"))

    # ------------------------------------------------------------- E3
    rows = []
    for mode in ("none", "padding", "human", "autonomous", "oracle"):
        reps = replicate(
            lambda seed, mode=mode: run_scheduler_scenario(
                SchedulerScenarioConfig(
                    seed=seed, mode=mode, n_jobs=n_jobs, n_nodes=16, horizon_s=horizon
                )
            ),
            seeds,
        )
        rows.append(aggregate_rows(reps))
    _p(render_table(
        rows,
        columns=["mode", "completion_rate", "wasted_nh", "ext_granted", "ext_hours",
                 "overhang_nh", "resubmissions", "mean_wait_s"],
        title=f"E3 (Fig. 3) — Scheduler case, mean over seeds {list(seeds)}",
    ))

    # ------------------------------------------------------------- E4
    rows = [run_maintenance_scenario(with_loop=w, seed=0) for w in (False, True)]
    _p(render_table(rows, title="E4 — Maintenance case"))

    # ------------------------------------------------------------- E5
    rows = [run_ioqos_scenario(with_loop=w, seed=0) for w in (False, True)]
    _p(render_table(rows, title="E5 — I/O QoS case (deadline-tenant write latency)"))

    # ------------------------------------------------------------- E6
    rows = [run_ost_scenario(with_loop=w, seed=0) for w in (False, True)]
    _p(render_table(rows, title="E6 — OST case (degraded OST at t=600s)"))

    # ------------------------------------------------------------- E7
    rows = [run_misconfig_scenario(seed=0, with_fixes=w) for w in (False, True)]
    _p(render_table(rows, title="E7 — Misconfiguration case"))

    # ------------------------------------------------------------- E8
    rows = []
    for latency in (0.0, 300.0, 1800.0, 7200.0, 28800.0):
        if latency == 0.0:
            cfg = SchedulerScenarioConfig(
                seed=0, mode="autonomous", n_jobs=n_jobs, n_nodes=16, horizon_s=horizon
            )
        else:
            cfg = SchedulerScenarioConfig(
                seed=0, mode="human", n_jobs=n_jobs, n_nodes=16, horizon_s=horizon,
                human_median_latency_s=latency, human_availability=0.9,
            )
        row = run_scheduler_scenario(cfg)
        rows.append(
            {
                "median_response": "autonomous" if latency == 0 else f"{latency:.0f}s",
                "completion_rate": row["completion_rate"],
                "wasted_nh": row["wasted_nh"],
                "ext_granted": row["ext_granted"],
            }
        )
    _p(render_table(rows, title="E8 — value of response vs human latency"))

    # ------------------------------------------------------------- E9 + D1
    _p(render_table(run_forecaster_comparison(seed=0, n_runs=10 if quick else 30),
                    title="D1 — forecaster ablation (drifting progress traces)"))
    _p(render_table(run_model_ablation(seed=0),
                    title="E9 — small continual vs large batch models under drift"))

    # ------------------------------------------------------------- E10
    rows = [
        run_tsdb_ingest(seed=0, batch_size=b, n_series=64 if quick else 256)
        for b in (1, 64, 512)
    ]
    _p(render_table(rows, title="E10 — TSDB ingest"))
    _p(render_table([run_tsdb_queries(seed=0, n_series=64 if quick else 256)],
                    title="E10 — TSDB query/downsample latency"))
    _p(render_table([run_knowledge_ops()], title="E10 — knowledge/model metadata ops"))

    # ------------------------------------------------------------- E11
    _p(render_table(run_trust_sweep(seed=0, n_jobs=n_jobs), title="E11 — trust/guard budget sweep"))

    # ------------------------------------------------------------- E12
    _p(render_table(run_interchange_matrix(), title="E12 — component interchange matrix"))

    # ------------------------------------------------------------- E13
    from repro.experiments.query_exp import run_query_scan_comparison

    _p(render_table(
        [run_query_scan_comparison(seed=0, n_series=128 if quick else 512)],
        title="E13 — query engine vs naive raw scans",
    ))

    # ------------------------------------------------------------- E14
    from repro.experiments.ingest_exp import run_ingest_benchmark

    _p(render_table(
        [run_ingest_benchmark(seed=0, n_nodes=256 if quick else 1024)],
        title="E14 — columnar vs per-object ingest",
    ))

    # ------------------------------------------------------------- E15
    from repro.experiments.loops_exp import run_loop_fleet_benchmark, run_runtime_overhead

    _p(render_table(
        [run_loop_fleet_benchmark(seed=0, n_loops=64 if quick else 256,
                                  ticks=6 if quick else 10)],
        title="E15 — loop fleet: fused monitoring vs per-loop ad-hoc scans",
    ))
    _p(render_table(
        [run_runtime_overhead(seed=0, ticks=100 if quick else 200)],
        title="E15b — LoopRuntime hosting overhead vs hand-wired loops",
    ))

    # ------------------------------------------------------------- E17
    from repro.experiments.supervise_exp import (
        run_adaptive_fusion_benchmark,
        run_supervision_benchmark,
    )

    _p(render_table(
        [run_supervision_benchmark(seed=0, n_loops=64 if quick else 256)],
        title="E17 — fleet supervision under injected stuck/frozen loops",
    ))
    _p(render_table(
        [run_adaptive_fusion_benchmark(seed=0, n_loops=64 if quick else 256,
                                       ticks=12 if quick else 20)],
        title="E17b — adaptive fusion vs never-fused monitoring",
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced problem sizes")
    parser.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    args = parser.parse_args(argv)
    t0 = time.time()
    run_all(quick=args.quick, seeds=args.seeds)
    print(f"-- all experiments regenerated in {time.time() - t0:.1f}s --")
    return 0


if __name__ == "__main__":
    sys.exit(main())
