"""Holistic-monitoring pipeline scenario (experiment E1, Fig. 1).

Builds the full telemetry stack over N nodes, streams synthetic
facility/hardware signals with injected anomalies, runs the three ODA
functions of Fig. 1 — visualize (downsampled queries), diagnose (anomaly
detection), forecast (trend extrapolation) — and reports pipeline
throughput, end-to-end lag, analytics latency, overhead, and detection
quality.

Two ingest modes share the scenario:

* ``"columnar"`` (default) — one :class:`SensorBank` per node reading
  all its metrics in a single vectorized call, one
  :class:`SamplingGroup` per aggregation subtree (one engine event per
  group per tick), batched hops, and interval-coalesced bulk commits.
* ``"legacy"`` — the per-object seed path: one :class:`Sampler` per
  node, one ``Sample`` dataclass per sensor per tick, point-by-point
  commits.  Kept as the baseline the E14 benchmark measures against.

Ground-truth signals and anomaly injection draw from identical RNG
streams in both modes, so the modes differ only in how samples move.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.analytics.anomaly import ZScoreDetector
from repro.analytics.forecast import OLSForecaster
from repro.sim import Engine, RngRegistry
from repro.telemetry.collector import CollectionPipeline
from repro.telemetry.metric import SeriesKey
from repro.telemetry.sampler import Sampler, SamplingGroup
from repro.telemetry.sensor import CallableSensor, SensorBank
from repro.telemetry.synthetic import SpikeSpec, SyntheticSeriesSpec, render_series
from repro.telemetry.tsdb import TimeSeriesStore


def _build_frontends(
    *,
    engine: Engine,
    pipeline: CollectionPipeline,
    rngs: RngRegistry,
    ingest: str,
    n_nodes: int,
    metrics_per_node: int,
    sample_period_s: float,
    horizon_s: float,
    jitter_std: float,
    per_sample_cost_s: float,
    anomaly_times: List[float],
    anomaly_nodes: List[int],
) -> List:
    """Wire sampling front-ends for the requested ingest mode.

    Returns the list of front-ends (per-node ``Sampler`` or per-group
    ``SamplingGroup``); signals are pre-rendered on the sampling grid
    from mode-independent RNG streams.
    """
    aggregators = pipeline.aggregators
    grid = np.arange(0.0, horizon_s + sample_period_s, sample_period_s)
    n_groups = len(aggregators)

    def node_signals(node_idx: int) -> np.ndarray:
        rows = []
        for metric_idx in range(metrics_per_node):
            spec = SyntheticSeriesSpec(
                base=400.0 + 20.0 * metric_idx,
                diurnal_amplitude=30.0,
                noise_std=4.0,
                ar1_coeff=0.7,
                spikes=[
                    SpikeSpec(t, magnitude=120.0, duration=120.0)
                    for t, n in zip(anomaly_times, anomaly_nodes)
                    if n == node_idx and metric_idx == 0
                ],
            )
            rows.append(
                render_series(grid, spec, rngs.fork("signal", node_idx * 100 + metric_idx))
            )
        return np.stack(rows)

    def node_keys(node_idx: int) -> List[SeriesKey]:
        return [
            SeriesKey.of(f"metric{m}", node=f"n{node_idx:03d}")
            for m in range(metrics_per_node)
        ]

    fronts: List = []
    if ingest == "legacy":
        for node_idx in range(n_nodes):
            signals = node_signals(node_idx)
            sampler = Sampler(
                engine,
                aggregators[node_idx % n_groups],
                period=sample_period_s,
                rng=rngs.stream(f"sampler-{node_idx}"),
                jitter_std=jitter_std,
                per_sample_cost_s=per_sample_cost_s,
                name=f"sampler-{node_idx}",
            )
            for metric_idx, key in enumerate(node_keys(node_idx)):
                row = signals[metric_idx]

                def reader(now: float, _row=row, _p=sample_period_s) -> float:
                    return float(_row[min(len(_row) - 1, int(now / _p))])

                sampler.add_sensor(CallableSensor(key, reader))
            sampler.start()
            fronts.append(sampler)
        return fronts

    if ingest != "columnar":
        raise ValueError(f"unknown ingest mode {ingest!r}; use 'columnar' or 'legacy'")
    registry = pipeline.registry
    last_col = len(grid) - 1
    for g in range(n_groups):
        group = SamplingGroup(
            engine,
            aggregators[g],
            period=sample_period_s,
            rng=rngs.stream(f"group-{g}"),
            jitter_std=jitter_std,
            per_sample_cost_s=per_sample_cost_s,
            name=f"group-{g}",
        )
        for node_idx in range(g, n_nodes, n_groups):
            signals = node_signals(node_idx)

            def read_all(now: float, _m=signals, _p=sample_period_s) -> np.ndarray:
                return _m[:, min(last_col, int(now / _p))]

            group.add_bank(
                SensorBank(node_keys(node_idx), read_all, registry=registry)
            )
        group.start()
        fronts.append(group)
    return fronts


def run_pipeline_scenario(
    *,
    seed: int = 0,
    n_nodes: int = 64,
    metrics_per_node: int = 4,
    sample_period_s: float = 5.0,
    horizon_s: float = 3600.0,
    n_anomalies: int = 8,
    ingest: str = "columnar",
    diagnose: str = "scan",
    commit_interval_s: Optional[float] = None,
    watch_loops: int = 0,
) -> Dict[str, float]:
    """Run E1.  ``ingest`` picks the sample-movement path; ``diagnose``
    picks the anomaly sweep — ``"scan"`` (batch z-score pass) or
    ``"pointwise"`` (the seed idiom: one detector update per sample),
    kept so the E14 scale check can measure the original configuration
    as its wall-clock budget.  ``watch_loops`` > 0 additionally hosts
    that many per-partition autonomy loops on a
    :class:`~repro.core.runtime.LoopRuntime` over the live stream
    (in-situ ODA on the Fig. 1 pipeline) and reports their fleet
    telemetry; the fleet's Monitor/Analyze work then runs inside the
    simulated shift, so ``ingest_wall_s`` deliberately includes that
    in-situ cost — compare rows at equal ``watch_loops`` only."""
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    store = TimeSeriesStore(default_capacity=int(horizon_s / sample_period_s) + 16)
    if commit_interval_s is None and ingest == "columnar":
        commit_interval_s = 4.0 * sample_period_s
    pipeline = CollectionPipeline(
        engine,
        store,
        hop_latency=0.1,
        ingest_latency=0.1,
        commit_interval_s=commit_interval_s if ingest == "columnar" else None,
    )
    pipeline.build(max(1, n_nodes // 16))

    rng = rngs.stream("signals")
    anomaly_times = sorted(
        float(t) for t in rng.uniform(horizon_s * 0.2, horizon_s * 0.9, size=n_anomalies)
    )
    anomaly_nodes = [int(rng.integers(n_nodes)) for _ in anomaly_times]

    fronts = _build_frontends(
        engine=engine,
        pipeline=pipeline,
        rngs=rngs,
        ingest=ingest,
        n_nodes=n_nodes,
        metrics_per_node=metrics_per_node,
        sample_period_s=sample_period_s,
        horizon_s=horizon_s,
        jitter_std=0.05,
        per_sample_cost_s=1e-4,
        anomaly_times=anomaly_times,
        anomaly_nodes=anomaly_nodes,
    )
    runtime = None
    if watch_loops > 0:
        from repro.core.runtime import LoopRuntime, RuntimeConfig
        from repro.experiments.loops_exp import watch_fleet_specs

        # self-telemetry off: the E1 row's series/samples/completeness
        # metrics must keep measuring the ingest pipeline, not the fleet
        runtime = LoopRuntime(
            engine, store, config=RuntimeConfig(self_telemetry=False)
        )
        specs = watch_fleet_specs(
            "metric0",
            [f"n{i:03d}" for i in range(n_nodes)],
            watch_loops,
            period_s=60.0,
            window_s=300.0,
            threshold=480.0,  # spikes push metric0 well past its ~400 base
        )
        for spec in specs:
            spec.start_at = 300.0
        runtime.add_many(specs, start=True)

    # clock starts after signal rendering / frontend construction so
    # ingest_wall_s measures sample movement, not synthetic-data setup
    wall_t0 = time.perf_counter()
    engine.run(until=horizon_s)
    # Drain in-flight hops/commits so the tail tick is not lost to the
    # horizon cut, then force the root's coalescing buffer out.
    for front in fronts:
        front.stop()
    engine.run(until=horizon_s + pipeline.end_to_end_latency + (commit_interval_s or 0.0))
    pipeline.root.flush()
    ingest_wall_s = time.perf_counter() - wall_t0

    # --- Fig. 1 "visualize": downsampled dashboard queries ---------------
    t0 = time.perf_counter()
    for node_idx in range(min(16, n_nodes)):
        key = SeriesKey.of("metric0", node=f"n{node_idx:03d}")
        store.downsample(key, 0.0, horizon_s, step=60.0, agg="mean")
    visualize_ms = (time.perf_counter() - t0) * 1e3

    # --- Fig. 1 "diagnose": anomaly detection over every node ------------
    if diagnose not in ("scan", "pointwise"):
        raise ValueError(f"unknown diagnose mode {diagnose!r}")
    t0 = time.perf_counter()
    detected: List[tuple] = []
    for node_idx in range(n_nodes):
        key = SeriesKey.of("metric0", node=f"n{node_idx:03d}")
        times, values = store.query(key, 0.0, horizon_s)
        det = ZScoreDetector(window=60, threshold=5.0)
        if diagnose == "scan":
            for anomaly in det.scan(times, values):
                detected.append((node_idx, anomaly.time))
        else:
            for t, v in zip(times, values):
                a = det.update(t, v)
                if a is not None:
                    detected.append((node_idx, t))
    diagnose_ms = (time.perf_counter() - t0) * 1e3

    # detection quality vs ground truth (match within the spike window)
    truth = list(zip(anomaly_nodes, anomaly_times))
    hits = 0
    for node, t_true in truth:
        if any(n == node and t_true <= t <= t_true + 180.0 for n, t in detected):
            hits += 1
    recall = hits / len(truth) if truth else 1.0

    # --- Fig. 1 "forecast": per-node trend extrapolation ------------------
    t0 = time.perf_counter()
    for node_idx in range(min(16, n_nodes)):
        key = SeriesKey.of("metric0", node=f"n{node_idx:03d}")
        times, values = store.query(key, horizon_s - 1800.0, horizon_s)
        fc = OLSForecaster(window=64)
        for t, v in zip(times, values):
            fc.update(t, v)
    forecast_ms = (time.perf_counter() - t0) * 1e3

    # per-agent CPU overhead via the explicit accessor (agent-weighted)
    n_agents = sum(f.agent_count for f in fronts)
    overhead_cpu_frac = (
        sum(f.overhead_cpu_frac(horizon_s) * f.agent_count for f in fronts) / n_agents
    )
    expected_samples = n_nodes * metrics_per_node * (horizon_s / sample_period_s)
    watch_row: Dict[str, float] = {}
    if runtime is not None:
        runtime.stop()
        hub = runtime.hub.stats()
        watch_row = {
            "watch_loops": float(watch_loops),
            "watch_iterations": float(runtime.iterations_total),
            "watch_flags": float(
                sum(h.loop.analyzer.flags_total for h in runtime.handles.values())
            ),
            "watch_queries_executed": hub["engine_served_raw"] + hub["engine_served_rollup"],
            "watch_fused_served": hub["fused_served"],
        }
    return {
        **watch_row,
        "seed": seed,
        "n_nodes": float(n_nodes),
        "series": float(store.cardinality()),
        "samples_ingested": float(store.total_inserts),
        "ingest_rate_per_s": store.total_inserts / horizon_s,
        "ingest_wall_s": ingest_wall_s,
        "completeness": store.total_inserts / expected_samples,
        "e2e_lag_s": pipeline.end_to_end_latency,
        "visualize_ms": visualize_ms,
        "diagnose_ms": diagnose_ms,
        "forecast_ms": forecast_ms,
        "anomaly_recall": recall,
        "anomalies_detected": float(len(detected)),
        "overhead_cpu_frac": overhead_cpu_frac,
        "net_bytes_per_node_s": pipeline.total_bytes() / (n_agents * horizon_s),
    }


def run_sampling_tradeoff(
    *,
    seed: int = 0,
    n_nodes: int = 16,
    periods_s=(1.0, 5.0, 15.0, 60.0),
    horizon_s: float = 3600.0,
    event_magnitude: float = 150.0,
    event_duration_s: float = 600.0,
) -> List[Dict[str, float]]:
    """Monitoring design dial: sampling period vs. overhead vs. reaction.

    One sustained event is injected per node; for each sampling period we
    report the monitoring cost (CPU fraction, network bytes) and the
    *detection latency* — how long after onset the z-score detector first
    fires.  Slow sampling is cheap but blind; this sweep quantifies the
    knee operators must pick (a design decision Fig. 1 leaves open).
    """
    rows: List[Dict[str, float]] = []
    for period in periods_s:
        rngs = RngRegistry(seed=seed)
        engine = Engine()
        store = TimeSeriesStore(default_capacity=int(horizon_s / period) + 16)
        pipeline = CollectionPipeline(engine, store, hop_latency=0.1, ingest_latency=0.1)
        aggregators = pipeline.build(max(1, n_nodes // 16))
        rng = rngs.stream("events")
        onsets = rng.uniform(horizon_s * 0.4, horizon_s * 0.7, size=n_nodes)
        grid = np.arange(0.0, horizon_s + period, period)
        samplers: List[Sampler] = []
        for node_idx in range(n_nodes):
            spec = SyntheticSeriesSpec(
                base=400.0,
                noise_std=4.0,
                spikes=[SpikeSpec(float(onsets[node_idx]), event_magnitude, event_duration_s)],
            )
            series = render_series(grid, spec, rngs.fork("sig", node_idx))
            key = SeriesKey.of("m", node=f"n{node_idx:03d}")

            def reader(now: float, _series=series, _p=period) -> float:
                return float(_series[min(len(_series) - 1, int(now / _p))])

            sampler = Sampler(
                engine,
                aggregators[node_idx % len(aggregators)],
                period=period,
                per_sample_cost_s=1e-4,
                name=f"s{node_idx}",
            )
            sampler.add_sensor(CallableSensor(key, reader))
            sampler.start()
            samplers.append(sampler)
        engine.run(until=horizon_s)

        latencies = []
        for node_idx in range(n_nodes):
            key = SeriesKey.of("m", node=f"n{node_idx:03d}")
            times, values = store.query(key, 0.0, horizon_s)
            det = ZScoreDetector(window=max(10, int(300.0 / period)), threshold=5.0)
            onset = float(onsets[node_idx])
            for anomaly in det.scan(times, values):
                if anomaly.time >= onset:
                    latencies.append(anomaly.time - onset)
                    break
        mean_cpu_frac = float(np.mean([s.overhead_cpu_frac(horizon_s) for s in samplers]))
        rows.append(
            {
                "period_s": period,
                "detected_frac": len(latencies) / n_nodes,
                "detect_latency_s": float(np.mean(latencies)) if latencies else float("inf"),
                "overhead_cpu_frac": mean_cpu_frac,
                "net_bytes_per_node_s": pipeline.total_bytes() / (n_nodes * horizon_s),
                "samples_total": float(store.total_inserts),
            }
        )
    return rows
