"""Storage-loop scenarios (experiments E5 and E6)."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.loops.io_qos_loop import IoQosConfig, IoQosManagerLoop
from repro.loops.ost_loop import OstCaseConfig, OstCaseManager
from repro.sim import Engine
from repro.storage.client import PeriodicWriter
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.ost import OST, OstState


def run_ost_scenario(
    *,
    with_loop: bool,
    seed: int = 0,
    n_osts: int = 8,
    ost_rate_mbps: float = 1000.0,
    degrade_at_s: float = 600.0,
    degrade_factor: float = 0.05,
    horizon_s: float = 4000.0,
    write_size_mb: float = 500.0,
    write_period_s: float = 30.0,
) -> Dict[str, float]:
    """OST case: degrade one stripe mid-run; measure bandwidth recovery."""
    engine = Engine()
    osts = [OST(f"ost{i}", ost_rate_mbps) for i in range(n_osts)]
    fs = ParallelFileSystem(engine, osts)
    writer = PeriodicWriter(
        engine, fs, "app", size_mb=write_size_mb, period_s=write_period_s, stripe_count=2
    )
    writer.start()
    case: Optional[OstCaseManager] = None
    if with_loop:
        case = OstCaseManager(
            engine, fs, [writer], config=OstCaseConfig(loop_period_s=60.0)
        )
        case.start()

    victim: Dict[str, str] = {}

    def degrade() -> None:
        victim["ost"] = writer.file.stripe_osts[0]
        fs.set_ost_state(victim["ost"], OstState.DEGRADED, degrade_factor)

    engine.schedule_at(degrade_at_s, degrade)
    engine.run(until=horizon_s)

    pre = [t.achieved_mbps for t in writer.transfers if t.t_end <= degrade_at_s]
    post = [t.achieved_mbps for t in writer.transfers if t.t_start >= degrade_at_s]
    pre_bw = float(np.mean(pre)) if pre else float("nan")
    post_bw = float(np.mean(post)) if post else float("nan")
    # recovery time: first post-degradation transfer back above 80% of pre
    recovery_s = float("inf")
    for t in writer.transfers:
        if t.t_start >= degrade_at_s and t.achieved_mbps >= 0.8 * pre_bw:
            recovery_s = t.t_end - degrade_at_s
            break
    tail = [t.achieved_mbps for t in writer.transfers[-10:]]
    return {
        "with_loop": with_loop,
        "seed": seed,
        "pre_bw_mbps": pre_bw,
        "post_bw_mbps": post_bw,
        "final_bw_mbps": float(np.mean(tail)) if tail else float("nan"),
        "recovery_s": recovery_s,
        "restripes": float(writer.file.restripe_count),
        "failovers": float(case.failovers) if case else 0.0,
    }


def run_ioqos_scenario(
    *,
    with_loop: bool,
    seed: int = 0,
    n_osts: int = 4,
    ost_rate_mbps: float = 500.0,
    horizon_s: float = 6000.0,
    latency_target_s: float = 2.0,
    workflow_size_mb: float = 1000.0,
    workflow_period_s: float = 30.0,
    bg_size_mb: float = 20000.0,
    bg_period_s: float = 20.0,
    n_background: int = 2,
) -> Dict[str, float]:
    """I/O-QoS case: protect a deadline workflow from background tenants."""
    engine = Engine()
    osts = [OST(f"ost{i}", ost_rate_mbps) for i in range(n_osts)]
    fs = ParallelFileSystem(engine, osts)
    workflow = PeriodicWriter(
        engine, fs, "workflow", size_mb=workflow_size_mb, period_s=workflow_period_s, stripe_count=2
    )
    backgrounds = [
        PeriodicWriter(engine, fs, f"bg{i}", size_mb=bg_size_mb, period_s=bg_period_s, stripe_count=min(4, n_osts))
        for i in range(n_background)
    ]
    workflow.start(start_at=5.0)
    for w in backgrounds:
        w.start()
    case: Optional[IoQosManagerLoop] = None
    if with_loop:
        case = IoQosManagerLoop(
            engine,
            fs,
            [workflow, *backgrounds],
            config=IoQosConfig(latency_target_s=latency_target_s, loop_period_s=60.0),
        )
        case.start()
    engine.run(until=horizon_s)

    lat = np.asarray([t.duration for t in workflow.transfers])
    bg_total_mb = sum(sum(t.size_mb for t in w.transfers) for w in backgrounds)
    return {
        "with_loop": with_loop,
        "seed": seed,
        "n_writes": float(lat.size),
        "mean_latency_s": float(lat.mean()) if lat.size else float("nan"),
        "p95_latency_s": float(np.percentile(lat, 95)) if lat.size else float("nan"),
        "p99_latency_s": float(np.percentile(lat, 99)) if lat.size else float("nan"),
        "violation_rate": float(np.mean(lat > latency_target_s)) if lat.size else float("nan"),
        "cv": float(lat.std() / lat.mean()) if lat.size and lat.mean() > 0 else float("nan"),
        "bg_throughput_mbps": bg_total_mb / horizon_s,
        "qos_adjustments": float(case.adjustments) if case else 0.0,
    }
