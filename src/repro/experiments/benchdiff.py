"""Benchmark artifact diffing (the ``repro bench-diff`` command).

CI merges every per-experiment ``BENCH_*.json`` artifact into one
``BENCH_all.json`` per run, each row stamped with the producing commit's
``git_sha`` (:mod:`repro.experiments.provenance`).  This module compares
two such artifacts — typically the previous successful run on ``main``
against the current one — and flags **throughput regressions**: any
metric that is higher-is-better (``*_per_s`` rates and ``*speedup*``
factors) that dropped by more than the threshold.

The walk is schema-agnostic: artifacts are nested dicts/lists (CLI rows,
pytest-benchmark files, or the merged map of both), and only numeric
leaves whose key names a throughput metric participate, addressed by
their dotted path.  Wall-clock noise on shared CI runners is why the
default threshold is a generous 20% and why the CI step only *warns*
(``--fail`` upgrades regressions to a non-zero exit for local use).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

#: keys whose values are higher-is-better throughput metrics
_SUFFIX = "_per_s"
_INFIX = "speedup"


def is_throughput_key(key: str) -> bool:
    return key.endswith(_SUFFIX) or _INFIX in key


def _walk(obj, path: Tuple[str, ...] = ()) -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every throughput leaf."""
    if isinstance(obj, dict):
        for key in sorted(obj):
            value = obj[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)) and is_throughput_key(str(key)):
                yield ".".join(path + (str(key),)), float(value)
            elif isinstance(value, (dict, list)):
                yield from _walk(value, path + (str(key),))
    elif isinstance(obj, list):
        for idx, value in enumerate(obj):
            yield from _walk(value, path + (str(idx),))


def _shas(obj, path: Tuple[str, ...] = ()) -> Iterator[str]:
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key == "git_sha" and isinstance(value, str):
                yield value
            elif isinstance(value, (dict, list)):
                yield from _shas(value)
    elif isinstance(obj, list):
        for value in obj:
            yield from _shas(value)


def load_artifact(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def artifact_shas(artifact: Dict) -> List[str]:
    """Distinct producing commits stamped anywhere in the artifact."""
    return sorted(set(_shas(artifact)))


def diff_artifacts(old: Dict, new: Dict, *, threshold: float = 0.2) -> List[Dict]:
    """Throughput deltas between two artifacts.

    Returns one entry per throughput path present in **both** artifacts:
    ``{"key", "old", "new", "ratio", "regressed"}`` where ``ratio`` is
    ``new/old`` (>1 got faster) and ``regressed`` marks drops beyond
    ``threshold``.  Paths only one side has (experiments added/removed)
    are ignored — a diff tool cannot gate coverage.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    old_rows = dict(_walk(old))
    rows: List[Dict] = []
    for key, new_v in _walk(new):
        old_v = old_rows.get(key)
        if old_v is None or old_v <= 0.0:
            continue
        ratio = new_v / old_v
        rows.append(
            {
                "key": key,
                "old": old_v,
                "new": new_v,
                "ratio": ratio,
                "regressed": ratio < 1.0 - threshold,
            }
        )
    rows.sort(key=lambda r: (not r["regressed"], r["ratio"], r["key"]))
    return rows


def render_diff(rows: List[Dict], *, threshold: float = 0.2) -> str:
    """Human-readable diff report; regressions first."""
    if not rows:
        return "bench-diff: no comparable throughput metrics between the artifacts"
    regressed = [r for r in rows if r["regressed"]]
    lines = [
        f"bench-diff: {len(rows)} throughput metric(s) compared, "
        f"{len(regressed)} regressed beyond {threshold:.0%}"
    ]
    width = max(len(r["key"]) for r in rows)
    for r in rows:
        marker = "REGRESSED" if r["regressed"] else "ok"
        lines.append(
            f"  {r['key']:{width}s}  {r['old']:12.3f} -> {r['new']:12.3f} "
            f"({r['ratio']:6.2f}x)  {marker}"
        )
    return "\n".join(lines)
