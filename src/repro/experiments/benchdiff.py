"""Benchmark artifact diffing (the ``repro bench-diff`` command).

CI merges every per-experiment ``BENCH_*.json`` artifact into one
``BENCH_all.json`` per run, each row stamped with the producing commit's
``git_sha`` (:mod:`repro.experiments.provenance`).  This module compares
two such artifacts — typically the previous successful run on ``main``
against the current one — and flags **throughput regressions**: any
metric that is higher-is-better (``*_per_s`` rates and ``*speedup*``
factors) that dropped by more than the threshold.

The walk is schema-agnostic: artifacts are nested dicts/lists (CLI rows,
pytest-benchmark files, or the merged map of both), and only numeric
leaves whose key names a throughput metric participate, addressed by
their dotted path.  Wall-clock noise on shared CI runners is why the
default threshold is a generous 20% and why the CI step only *warns*
(``--fail`` upgrades regressions to a non-zero exit for local use).

Beyond the pairwise diff, :func:`trend_artifacts` folds the last N
merged artifacts (oldest first) into one table per throughput metric —
the ``BENCH_trend.md`` CI artifact — so a slow drift that never trips
the pairwise threshold is still visible across runs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

#: keys whose values are higher-is-better throughput metrics
_SUFFIX = "_per_s"
_INFIX = "speedup"


def is_throughput_key(key: str) -> bool:
    return key.endswith(_SUFFIX) or _INFIX in key


def _walk(obj, path: Tuple[str, ...] = ()) -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every throughput leaf."""
    if isinstance(obj, dict):
        for key in sorted(obj):
            value = obj[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)) and is_throughput_key(str(key)):
                yield ".".join(path + (str(key),)), float(value)
            elif isinstance(value, (dict, list)):
                yield from _walk(value, path + (str(key),))
    elif isinstance(obj, list):
        for idx, value in enumerate(obj):
            yield from _walk(value, path + (str(idx),))


def _shas(obj, path: Tuple[str, ...] = ()) -> Iterator[str]:
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key == "git_sha" and isinstance(value, str):
                yield value
            elif isinstance(value, (dict, list)):
                yield from _shas(value)
    elif isinstance(obj, list):
        for value in obj:
            yield from _shas(value)


def load_artifact(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def artifact_shas(artifact: Dict) -> List[str]:
    """Distinct producing commits stamped anywhere in the artifact."""
    return sorted(set(_shas(artifact)))


def diff_artifacts(old: Dict, new: Dict, *, threshold: float = 0.2) -> List[Dict]:
    """Throughput deltas between two artifacts.

    Returns one entry per throughput path present in **both** artifacts:
    ``{"key", "old", "new", "ratio", "regressed"}`` where ``ratio`` is
    ``new/old`` (>1 got faster) and ``regressed`` marks drops beyond
    ``threshold``.  Paths only one side has (experiments added/removed)
    are ignored — a diff tool cannot gate coverage.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    old_rows = dict(_walk(old))
    rows: List[Dict] = []
    for key, new_v in _walk(new):
        old_v = old_rows.get(key)
        if old_v is None or old_v <= 0.0:
            continue
        ratio = new_v / old_v
        rows.append(
            {
                "key": key,
                "old": old_v,
                "new": new_v,
                "ratio": ratio,
                "regressed": ratio < 1.0 - threshold,
            }
        )
    rows.sort(key=lambda r: (not r["regressed"], r["ratio"], r["key"]))
    return rows


def _generated_ats(obj) -> Iterator[str]:
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key == "generated_at" and isinstance(value, str):
                yield value
            elif isinstance(value, (dict, list)):
                yield from _generated_ats(value)
    elif isinstance(obj, list):
        for value in obj:
            yield from _generated_ats(value)


def artifact_label(artifact: Dict, fallback: str) -> str:
    """Short provenance label for one artifact column: sha@date."""
    shas = artifact_shas(artifact)
    sha = shas[0][:7] if shas else fallback
    stamps = sorted(set(_generated_ats(artifact)))
    return f"{sha}@{stamps[0][:10]}" if stamps else sha


def trend_artifacts(artifacts: List[Dict], *, threshold: float = 0.2) -> List[Dict]:
    """Per-metric throughput across a run sequence (oldest first).

    Returns one entry per throughput path present in the **newest**
    artifact: ``{"key", "values", "ratio", "regressed"}`` where
    ``values`` holds one float-or-None per artifact and ``ratio`` is
    newest over the *oldest present* value (None when the metric only
    appears in the newest run).  ``regressed`` flags a drop beyond
    ``threshold`` across the whole window — the slow-drift complement
    of the pairwise diff.
    """
    if len(artifacts) < 2:
        raise ValueError("trend needs at least two artifacts")
    walked = [dict(_walk(a)) for a in artifacts]
    rows: List[Dict] = []
    for key in sorted(walked[-1]):
        values: List[Optional[float]] = [w.get(key) for w in walked]
        first = next((v for v in values[:-1] if v is not None and v > 0.0), None)
        ratio = values[-1] / first if first is not None else None
        rows.append(
            {
                "key": key,
                "values": values,
                "ratio": ratio,
                "regressed": ratio is not None and ratio < 1.0 - threshold,
            }
        )
    rows.sort(key=lambda r: (not r["regressed"], r["ratio"] or 2.0, r["key"]))
    return rows


def render_trend(
    rows: List[Dict], labels: List[str], *, threshold: float = 0.2
) -> str:
    """Markdown trend table (the ``BENCH_trend.md`` content)."""
    if not rows:
        return "bench-trend: no throughput metrics in the newest artifact\n"
    regressed = [r for r in rows if r["regressed"]]
    lines = [
        "# Benchmark throughput trend",
        "",
        f"{len(rows)} metric(s) across {len(labels)} run(s), oldest first; "
        f"{len(regressed)} dropped beyond {threshold:.0%} over the window.",
        "",
        "| metric | " + " | ".join(labels) + " | trend |",
        "|---|" + "---|" * (len(labels) + 1),
    ]
    for r in rows:
        cells = ["-" if v is None else f"{v:.3g}" for v in r["values"]]
        trend = (
            "new"
            if r["ratio"] is None
            else f"{r['ratio']:.2f}x" + (" ⚠" if r["regressed"] else "")
        )
        lines.append(f"| `{r['key']}` | " + " | ".join(cells) + f" | {trend} |")
    return "\n".join(lines) + "\n"


def render_diff(rows: List[Dict], *, threshold: float = 0.2) -> str:
    """Human-readable diff report; regressions first."""
    if not rows:
        return "bench-diff: no comparable throughput metrics between the artifacts"
    regressed = [r for r in rows if r["regressed"]]
    lines = [
        f"bench-diff: {len(rows)} throughput metric(s) compared, "
        f"{len(regressed)} regressed beyond {threshold:.0%}"
    ]
    width = max(len(r["key"]) for r in rows)
    for r in rows:
        marker = "REGRESSED" if r["regressed"] else "ok"
        lines.append(
            f"  {r['key']:{width}s}  {r['old']:12.3f} -> {r['new']:12.3f} "
            f"({r['ratio']:6.2f}x)  {marker}"
        )
    return "\n".join(lines)
