"""Audit trail with explanations.

Trust (methodology question iv) and the human-on-the-loop pattern
(Section IV) both require that every autonomous decision leaves an
explainable record: what was decided, when, why, and with what
confidence.  ``AuditTrail`` is that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class AuditEvent:
    """One audited decision or notification."""

    time: float
    loop: str
    phase: str  # "plan" | "execute" | "notify" | "veto" | ...
    message: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable one-liner for operator consoles."""
        return f"[t={self.time:.1f}] {self.loop}/{self.phase}: {self.message}"


class AuditTrail:
    """Append-only audit log with simple filtering."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: List[AuditEvent] = []
        self.dropped = 0

    def record(
        self,
        time: float,
        loop: str,
        phase: str,
        message: str,
        data: Optional[Mapping[str, Any]] = None,
    ) -> AuditEvent:
        event = AuditEvent(time, loop, phase, message, dict(data or {}))
        if len(self.events) >= self.capacity:
            self.events.pop(0)
            self.dropped += 1
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def by_loop(self, loop: str) -> List[AuditEvent]:
        return [e for e in self.events if e.loop == loop]

    def by_phase(self, phase: str) -> List[AuditEvent]:
        return [e for e in self.events if e.phase == phase]

    def since(self, t: float) -> List[AuditEvent]:
        return [e for e in self.events if e.time >= t]

    def tail(self, n: int = 10) -> List[AuditEvent]:
        return self.events[-n:]

    def flight_dumps(self) -> List[AuditEvent]:
        """Events that carry a flight-recorder dump reference.

        Fleet interventions (``restart_loop`` / ``quarantine_loop``)
        attach the id of the span-ring snapshot taken at the moment of
        the decision (see :mod:`repro.obs.flight`); this surfaces them
        so an operator can go from "what was done" to "what led to it".
        """
        return [e for e in self.events if "flight_dump" in e.data]

    def stats(self) -> Dict[str, float]:
        return {"events": float(len(self.events)), "dropped": float(self.dropped)}
