"""The K in MAPE-K.

``KnowledgeBase`` is the shared memory of a loop (or a federation of
loops): durable facts, run history for cross-run comparison, a model
registry with metadata (the Section IV storage concern: "metadata
representations for models, moving beyond ... raw time-series data"),
and plan-outcome records that the Assess step scores so the loop can
learn whether its plans work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.analytics.similarity import RunHistory
from repro.core.types import ExecutionResult, Plan


@dataclass
class PlanOutcome:
    """A plan, what its execution reported, and how well it worked out.

    ``score`` is assigned later by an Assessor comparing intent with
    reality (e.g. extension size vs. actual overrun); ``None`` means
    not yet assessed.
    """

    plan: Plan
    results: List[ExecutionResult] = field(default_factory=list)
    score: Optional[float] = None
    assessed_at: Optional[float] = None

    @property
    def honored(self) -> bool:
        return any(r.honored for r in self.results)


@dataclass(frozen=True)
class ModelEntry:
    """A registered model plus the metadata operators need to trust it."""

    name: str
    model: Any
    kind: str = ""
    trained_at: float = 0.0
    metadata: Mapping[str, float] = field(default_factory=dict)


class KnowledgeBase:
    """Loop-shared knowledge store."""

    def __init__(self) -> None:
        self._facts: Dict[str, Any] = {}
        self.run_history = RunHistory()
        self._models: Dict[str, ModelEntry] = {}
        self.plan_outcomes: List[PlanOutcome] = []
        # operation counters for the storage benchmark (E10)
        self.fact_writes = 0
        self.fact_reads = 0
        self.model_writes = 0

    # ----------------------------------------------------------------- facts
    def remember(self, key: str, value: Any) -> None:
        self._facts[key] = value
        self.fact_writes += 1

    def recall(self, key: str, default: Any = None) -> Any:
        self.fact_reads += 1
        return self._facts.get(key, default)

    def forget(self, key: str) -> None:
        self._facts.pop(key, None)

    def facts(self) -> Dict[str, Any]:
        return dict(self._facts)

    # ---------------------------------------------------------------- models
    def register_model(self, entry: ModelEntry) -> None:
        self._models[entry.name] = entry
        self.model_writes += 1

    def model(self, name: str) -> Optional[ModelEntry]:
        return self._models.get(name)

    def models(self) -> List[str]:
        return sorted(self._models)

    # --------------------------------------------------------- plan outcomes
    def record_plan(self, plan: Plan, results: List[ExecutionResult]) -> PlanOutcome:
        outcome = PlanOutcome(plan=plan, results=list(results))
        self.plan_outcomes.append(outcome)
        return outcome

    def unassessed_outcomes(self) -> List[PlanOutcome]:
        return [o for o in self.plan_outcomes if o.score is None]

    def assess_outcome(self, outcome: PlanOutcome, score: float, now: float) -> None:
        if not 0.0 <= score <= 1.0:
            raise ValueError("score must be in [0, 1]")
        outcome.score = score
        outcome.assessed_at = now

    def effectiveness(self, last_n: Optional[int] = None) -> Optional[float]:
        """Mean assessed score of recent plans; ``None`` with no data."""
        scored = [o.score for o in self.plan_outcomes if o.score is not None]
        if last_n is not None:
            scored = scored[-last_n:]
        if not scored:
            return None
        return sum(scored) / len(scored)

    def honored_rate(self, last_n: Optional[int] = None) -> Optional[float]:
        """Fraction of recent non-empty plans whose actions were honored."""
        outcomes = [o for o in self.plan_outcomes if o.results]
        if last_n is not None:
            outcomes = outcomes[-last_n:]
        if not outcomes:
            return None
        return sum(1 for o in outcomes if o.honored) / len(outcomes)
