"""The MAPE-K loop engine.

``MAPEKLoop`` wires Monitor → Analyze → Plan → (guards) → Execute over a
:class:`~repro.core.knowledge.KnowledgeBase`, iterating on a fixed
period.  Per-phase latencies model where computation/actuation time is
spent: the Analyze+Plan delay means execution acts on a *stale*
observation — the fundamental cost that motivates the paper's interest
in low-latency in-situ analytics.

An optional Assessor runs first in every cycle, scoring earlier plans
against the fresh observation (Knowledge refinement).  Guards run
between Plan and Execute and implement the trust controls of
methodology question iv; vetoed actions are recorded, audited, and
never executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Assessor, Executor, Monitor, Planner
from repro.core.guards import Guard
from repro.core.knowledge import KnowledgeBase
from repro.core.types import LoopIteration, Observation, Plan
from repro.obs.trace import TRACER
from repro.sim.engine import Engine, PeriodicTask


@dataclass(frozen=True)
class PhaseLatency:
    """Simulated time each phase consumes before its output is available."""

    monitor_s: float = 0.0
    analyze_s: float = 0.0
    plan_s: float = 0.0
    execute_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("monitor_s", "analyze_s", "plan_s", "execute_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def decision_delay(self) -> float:
        """Delay between observation and the execute call."""
        return self.monitor_s + self.analyze_s + self.plan_s


class MAPEKLoop:
    """One autonomy loop instance."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        monitor: Monitor,
        analyzer: Analyzer,
        planner: Planner,
        executor: Executor,
        knowledge: Optional[KnowledgeBase] = None,
        assessor: Optional[Assessor] = None,
        guards: Sequence[Guard] = (),
        period_s: float = 60.0,
        phase_latency: PhaseLatency = PhaseLatency(),
        audit: Optional[AuditTrail] = None,
        keep_iterations: int = 256,
        on_iteration: Optional[Callable[[LoopIteration], None]] = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.engine = engine
        self.name = name
        self.monitor = monitor
        self.analyzer = analyzer
        self.planner = planner
        self.executor = executor
        self.knowledge = knowledge if knowledge is not None else KnowledgeBase()
        self.assessor = assessor
        self.guards = list(guards)
        self.period_s = period_s
        self.phase_latency = phase_latency
        self.audit = audit
        self.keep_iterations = keep_iterations
        self.on_iteration = on_iteration

        self.iterations: List[LoopIteration] = []
        self.iterations_run = 0
        self.actions_executed = 0
        self.actions_vetoed = 0
        self._task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------- lifecycle
    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError(f"loop {self.name!r} already started")
        self._task = self.engine.every(
            self.period_s, self._begin_cycle, start_at=start_at, label=f"loop-{self.name}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.stopped

    # ---------------------------------------------------------------- cycle
    def run_cycle(self) -> None:
        """Run one MAPE-K cycle starting now.

        Normally invoked by the loop's own periodic task; the
        :class:`~repro.core.runtime.LoopRuntime` calls it directly so it
        can multiplex many loops on shared ticks with priority ordering.
        """
        self._begin_cycle()

    def _begin_cycle(self) -> None:
        # one span per phase entry point: with zero phase latency the
        # decide/execute spans nest synchronously under ``loop.cycle``;
        # with simulated latency they surface as their own roots at the
        # engine times they actually run — either way the trace shows
        # where the cycle's wall-clock went
        if TRACER.enabled:
            with TRACER.span("loop.cycle", loop=self.name):
                self._begin_cycle_impl()
        else:
            self._begin_cycle_impl()

    def _begin_cycle_impl(self) -> None:
        wall_t0 = time.perf_counter()
        now = self.engine.now
        iteration = LoopIteration(index=self.iterations_run, t_monitor=now)
        self.iterations_run += 1
        observation = self.monitor.observe(now)
        iteration.observation = observation
        if observation is None:
            iteration.wall_ms += (time.perf_counter() - wall_t0) * 1e3
            iteration.t_complete = now
            self._finish(iteration)
            return
        iteration.t_observation = observation.time
        if self.assessor is not None:
            self.assessor.assess(observation, self.knowledge)
        delay = self.phase_latency.decision_delay
        iteration.wall_ms += (time.perf_counter() - wall_t0) * 1e3
        if delay > 0:
            self.engine.schedule(delay, self._decide, iteration, observation, label=f"loop-{self.name}")
        else:
            self._decide(iteration, observation)

    def _decide(self, iteration: LoopIteration, observation: Observation) -> None:
        if TRACER.enabled:
            with TRACER.span("loop.decide", loop=self.name):
                self._decide_impl(iteration, observation)
        else:
            self._decide_impl(iteration, observation)

    def _decide_impl(self, iteration: LoopIteration, observation: Observation) -> None:
        wall_t0 = time.perf_counter()
        report = self.analyzer.analyze(observation, self.knowledge)
        iteration.report = report
        plan = self.planner.plan(report, self.knowledge)
        for guard in self.guards:
            plan, vetoed = guard.filter(plan, self.knowledge, self.engine.now)
            iteration.vetoed.extend(vetoed)
        self.actions_vetoed += len(iteration.vetoed)
        iteration.plan = plan
        self._audit_decision(iteration)
        iteration.wall_ms += (time.perf_counter() - wall_t0) * 1e3
        if plan.empty:
            iteration.t_complete = self.engine.now
            self._finish(iteration)
            return
        if self.phase_latency.execute_s > 0:
            self.engine.schedule(
                self.phase_latency.execute_s, self._execute, iteration, plan, label=f"loop-{self.name}"
            )
        else:
            self._execute(iteration, plan)

    def _execute(self, iteration: LoopIteration, plan: Plan) -> None:
        if TRACER.enabled:
            with TRACER.span("plan.execute", loop=self.name):
                self._execute_impl(iteration, plan)
        else:
            self._execute_impl(iteration, plan)

    def _execute_impl(self, iteration: LoopIteration, plan: Plan) -> None:
        wall_t0 = time.perf_counter()
        iteration.t_execute = self.engine.now
        results = self.executor.execute(plan, self.knowledge)
        iteration.results = results
        iteration.t_complete = self.engine.now
        self.actions_executed += len(results)
        iteration.wall_ms += (time.perf_counter() - wall_t0) * 1e3
        self.knowledge.record_plan(plan, results)
        if self.audit is not None:
            for r in results:
                self.audit.record(
                    self.engine.now,
                    self.name,
                    "execute",
                    f"{r.action.kind}({r.action.target}) "
                    f"{'honored' if r.honored else 'refused'}: {r.detail}",
                )
        self._finish(iteration)

    def _finish(self, iteration: LoopIteration) -> None:
        self.iterations.append(iteration)
        if len(self.iterations) > self.keep_iterations:
            del self.iterations[: len(self.iterations) - self.keep_iterations]
        if self.on_iteration is not None:
            self.on_iteration(iteration)

    def _audit_decision(self, iteration: LoopIteration) -> None:
        if self.audit is None or iteration.plan is None:
            return
        plan = iteration.plan
        if plan.actions or iteration.vetoed:
            self.audit.record(
                self.engine.now,
                self.name,
                "plan",
                plan.rationale or f"{len(plan.actions)} action(s) planned",
                data={"confidence": plan.confidence, "vetoed": len(iteration.vetoed)},
            )

    # ---------------------------------------------------------------- stats
    def mean_cycle_latency(self) -> Optional[float]:
        lats = [it.latency for it in self.iterations if it.latency is not None]
        if not lats:
            return None
        return sum(lats) / len(lats)
