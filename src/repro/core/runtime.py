"""The unified autonomy-loop runtime.

The paper's contribution is not any single feedback loop but a framework
for running *many* concurrent loops over shared monitoring data with
trust controls.  This module is that control plane:

* :class:`LoopSpec` — a declarative description of one loop: name,
  priority, period, Monitor phase as a list of
  :class:`~repro.query.model.MetricQuery` expressions (plus a builder
  that turns their results into an
  :class:`~repro.core.types.Observation`), factories for the
  Analyze/Plan/Execute components, guards, and phase latencies.
* :class:`QueryHub` — the shared Monitor-phase serving layer: every
  loop's reads go through one vectorized
  :class:`~repro.query.engine.QueryEngine` + :class:`QueryCache`, and
  structurally compatible selections are **fused** (see
  :mod:`repro.query.fuse`) so a fleet of N per-partition loops costs one
  widened query execution per tick instead of N ad-hoc store scans.
* :class:`LoopRuntime` — instantiates specs into
  :class:`~repro.core.loop.MAPEKLoop` instances, multiplexes them on the
  simulation engine with priority ordering (higher-priority loops run
  first on shared ticks) and deterministic phase jitter, arbitrates
  conflicting plans through the shared
  :class:`~repro.core.arbiter.PlanArbiter`, and publishes per-loop
  self-telemetry (``loop_iteration_ms``, ``loop_actions_total``,
  ``loop_vetoes_total``, ``loop_staleness_s``) back into the
  :class:`~repro.telemetry.tsdb.TimeSeriesStore` — loops are themselves
  monitorable through the same query path they monitor with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.arbiter import ArbiterGuard, PlanArbiter, ResourceKey, default_resource_keys
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Assessor, Executor, Monitor, Planner
from repro.core.guards import Guard
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.types import Action, LoopIteration, Observation
from repro.obs.flight import FLIGHT
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine, QueryResult
from repro.query.fuse import fusable, widen
from repro.query.model import MetricQuery
from repro.query.standing import StandingQueryEngine
from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

__all__ = [
    "LoopHandle",
    "LoopRuntime",
    "LoopSpec",
    "MonitorQuery",
    "QueryHub",
    "QueryMonitor",
    "RuntimeConfig",
]


# ---------------------------------------------------------------------------
# Shared Monitor-phase serving layer


class QueryHub:
    """One query front-end shared by every loop the runtime hosts.

    Wraps a :class:`QueryEngine` with query fusion: a fusable narrow
    query (matchers ⊆ group_by — see :mod:`repro.query.fuse`) is served
    by executing its widened form once and filtering the output series.
    Because the engine's cache is version-keyed on per-metric write
    epochs, every other loop issuing a compatible selection in the same
    tick hits the cached widened result — the fused query pass.

    The hub exposes the same read surface monitors already use
    (``query`` / ``scalar`` / ``samples`` / ``parse`` / ``store``), so
    existing telemetry-backed monitors run through it unchanged.
    """

    def __init__(self, engine: QueryEngine, *, fuse: bool = True, standing=None) -> None:
        self.engine = engine
        self.store = engine.store
        self.fuse = fuse
        #: optional StandingQueryEngine: registered hot shapes answer
        #: from incrementally-maintained state instead of a widened scan
        self.standing = standing
        self.fused_served = 0
        self.direct_served = 0
        self.standing_served = 0
        #: narrow-selection memo: query → (series generation, admissible
        #: output-series labels).  Regex matchers are evaluated once per
        #: generation; per-tick narrowing is pure set membership.
        self._narrow_cache: Dict[MetricQuery, Tuple[int, frozenset]] = {}
        #: per-widened-result label index (see :meth:`_narrow`); keyed by
        #: object identity with the result kept referenced so ids stay
        #: valid, bounded by reset — a tick touches only a few shapes
        self._wide_index: Dict[int, Tuple[QueryResult, Dict]] = {}
        #: adaptive fusion: per widened-shape fuse overrides (set by the
        #: fusion supervisor — see :mod:`repro.core.supervisor`), and
        #: tick-sharing statistics that justify them.  Sharing is
        #: observed for every fusable read, fused or not, so a hub
        #: running unfused still *measures* the fusible load.
        self.fuse_overrides: Dict[MetricQuery, bool] = {}
        self._shape_stats: Dict[MetricQuery, Dict[str, object]] = {}
        self._tick_at: Optional[float] = None
        self._tick_shapes: Dict[MetricQuery, set] = {}

    def parse(self, expr: str) -> MetricQuery:
        return self.engine.parse(expr)

    def query(
        self, q: Union[str, MetricQuery], *, at: float, fuse: Optional[bool] = None
    ) -> QueryResult:
        """Evaluate ``q``; ``fuse`` overrides the hub default per call.

        Fusion pays when many loops issue compatible selections at the
        *same* tick (the widened result is computed once and shared);
        loops with per-instance phases (e.g. one loop per job, each
        aligned to its job's start) should pass ``fuse=False`` — an
        unshared widened execution costs a full-metric pass for a
        single-series answer.  When neither the call nor the monitor
        pins ``fuse``, a per-shape override learned from tick-sharing
        statistics wins over the hub default — adaptive fusion.
        """
        if isinstance(q, str):
            q = self.engine.parse(q)
        if TRACER.enabled:
            with TRACER.span("hub.query", metric=q.metric):
                return self._query(q, at, fuse)
        return self._query(q, at, fuse)

    def _query(
        self, q: MetricQuery, at: float, fuse: Optional[bool]
    ) -> QueryResult:
        # fusion's economics depend on the widened result being cached and
        # shared; without a cache it would degrade every narrow read into
        # its own full-metric pass, so an uncached engine never fuses
        if fusable(q):
            shape = widen(q)
            self._observe_sharing(shape, q, at)
            if self.standing is not None:
                wide = self._standing_read(shape, at)
                if wide is not None:
                    self.standing_served += 1
                    return self._narrow(q, wide)
            if fuse is None:
                fuse = self.fuse_overrides.get(shape)
            effective = (self.fuse if fuse is None else fuse) and self.engine.cache is not None
            if effective:
                self.fused_served += 1
                wide = self.engine.query(shape, at=at)
                return self._narrow(q, wide)
        self.direct_served += 1
        return self.engine.query(q, at=at)

    #: auto-registration thresholds for standing queries: a shape whose
    #: widened execution is shared by this many narrow readers per tick,
    #: for this many completed ticks, is hot enough that maintaining it
    #: incrementally beats re-scanning its window every tick
    STANDING_MIN_SHARING = 2.0
    STANDING_MIN_TICKS = 2.0

    def _standing_read(self, shape: MetricQuery, at: float):
        """Serve a fused shape from standing state when it is registered
        (or hot enough to auto-register); ``None`` -> batch path."""
        st = self.standing
        if shape not in st.shapes and not self._auto_register(shape):
            return None
        return st.query(shape, at=at)

    def _auto_register(self, shape: MetricQuery) -> bool:
        st = self.standing
        if not st.eligible(shape):
            return False
        row = self._shape_stats.get(shape)
        if row is None or row["ticks"] < self.STANDING_MIN_TICKS:
            return False
        recent = row["recent"]
        mean_narrow = sum(recent) / len(recent) if recent else 0.0
        if mean_narrow < self.STANDING_MIN_SHARING:
            return False
        return st.register(shape)

    #: sharing window: ticks of per-shape history kept for the mean —
    #: long enough to smooth a burst, short enough that a sharing
    #: collapse shows up within tens of ticks (stale overrides clear)
    SHARING_WINDOW_TICKS = 32

    # ------------------------------------------------------ adaptive fusion
    def _observe_sharing(self, shape: MetricQuery, q: MetricQuery, at: float) -> None:
        """Track how many distinct narrow queries share a shape per tick.

        A "tick" is one exact evaluation time: the widened result is
        cached per ``at``, so only queries arriving at the same instant
        can share it.  Loops spread by phase jitter therefore measure —
        correctly — as unshared: their load is genuinely not fusible,
        and adaptive fusion leaves them alone.
        """
        if self._tick_at is None or at != self._tick_at:
            self._fold_tick()
            self._tick_at = at
        self._tick_shapes.setdefault(shape, set()).add(q)

    def _fold_tick(self) -> None:
        for shape, narrows in self._tick_shapes.items():
            row = self._shape_stats.setdefault(
                shape, {"ticks": 0.0, "recent": [], "max_narrow": 0.0}
            )
            row["ticks"] += 1.0
            recent = row["recent"]
            recent.append(float(len(narrows)))
            if len(recent) > self.SHARING_WINDOW_TICKS:
                del recent[: len(recent) - self.SHARING_WINDOW_TICKS]
            row["max_narrow"] = max(row["max_narrow"], float(len(narrows)))
        self._tick_shapes.clear()

    def sharing_stats(self) -> Dict[MetricQuery, Dict[str, float]]:
        """Per-shape tick-sharing statistics (completed ticks only).

        ``mean_narrow`` is the mean number of *distinct* narrow queries
        that asked for the shape per tick over the recent window
        (:data:`SHARING_WINDOW_TICKS`) — the fan-in a single widened
        execution would serve, tracking the *current* load rather than
        lifetime history so a sharing collapse surfaces promptly.
        ``fused`` is the shape's current effective default (override or
        hub default).
        """
        out: Dict[MetricQuery, Dict[str, float]] = {}
        for shape, row in self._shape_stats.items():
            recent = row["recent"]
            out[shape] = {
                "ticks": row["ticks"],
                "mean_narrow": sum(recent) / len(recent) if recent else 0.0,
                "max_narrow": row["max_narrow"],
                "fused": 1.0 if self.fuse_overrides.get(shape, self.fuse) else 0.0,
            }
        return out

    def set_fuse_override(self, shape: Union[str, MetricQuery], on: Optional[bool]) -> None:
        """Pin (or with ``None`` clear) the fuse decision for one shape.

        ``shape`` is widened before keying, so passing any narrow query
        of the family is equivalent to passing the shape itself.
        """
        if isinstance(shape, str):
            shape = self.engine.parse(shape)
        shape = widen(shape) if shape.matchers else shape
        if on is None:
            self.fuse_overrides.pop(shape, None)
        else:
            self.fuse_overrides[shape] = bool(on)

    def _narrow(self, q: MetricQuery, wide: QueryResult) -> QueryResult:
        """Select ``q``'s series from the widened result by membership.

        Equivalent to :func:`repro.query.fuse.narrow_result` but with the
        matcher evaluation hoisted out of the per-tick path: the set of
        admissible output-series labels only changes when a new series
        of the metric appears (tracked by the store's generation).
        """
        gen = self.store.series_generation(q.metric)
        hit = self._narrow_cache.get(q)
        if hit is None or hit[0] != gen:
            allowed = frozenset(q.group_key(key) for key in self.engine.select(q))
            if len(self._narrow_cache) > 4096:  # unbounded query shapes: reset
                self._narrow_cache.clear()
            self._narrow_cache[q] = (gen, allowed)
        else:
            allowed = hit[1]
        # index the widened result once per series tuple: every loop
        # narrowing the same tick's wide result then pays O(its own
        # series), not O(fleet series).  Keyed on the *series* identity —
        # cache hits rebuild the QueryResult wrapper but share the tuple
        entry = self._wide_index.get(id(wide.series))
        if entry is None:
            if len(self._wide_index) > 16:
                self._wide_index.clear()
            index = {s.labels: i for i, s in enumerate(wide.series)}
            self._wide_index[id(wide.series)] = (wide.series, index)
        else:
            index = entry[1]
        if len(allowed) < len(wide.series):
            pos = sorted(index[lab] for lab in allowed if lab in index)
            kept = tuple(wide.series[i] for i in pos)
        else:
            kept = tuple(s for s in wide.series if s.labels in allowed)
        return QueryResult(q, wide.t0, wide.t1, kept, source=f"fused+{wide.source}")

    def scalar(self, q: Union[str, MetricQuery], *, at: float) -> Optional[float]:
        return self.query(q, at=at).scalar()

    def samples(
        self, q: Union[str, MetricQuery], *, at: float, since: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.engine.samples(q, at=at, since=since)

    def stats(self) -> Dict[str, float]:
        out = {
            "fused_served": float(self.fused_served),
            "direct_served": float(self.direct_served),
            "standing_served": float(self.standing_served),
            "fuse_overrides": float(len(self.fuse_overrides)),
            "shapes_tracked": float(len(self._shape_stats)),
        }
        if self.standing is not None:
            out.update({f"standing_{k}": v for k, v in self.standing.stats().items()})
        out.update({f"engine_{k}": v for k, v in self.engine.stats().items()})
        return out


# ---------------------------------------------------------------------------
# Declarative monitors


@dataclass(frozen=True)
class MonitorQuery:
    """One named read in a spec's Monitor phase.

    ``mode="query"`` evaluates through the hub (fused + cached);
    ``mode="samples"`` extracts raw points with cursor semantics — each
    observation sees only samples newer than the previous one (marker
    streams, transfer logs).  ``fuse`` overrides the hub's fusion
    default for this read (``False`` for per-instance-phased loops whose
    widened results would never be shared).
    """

    slot: str
    query: Union[str, MetricQuery]
    mode: str = "query"
    fuse: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.mode not in ("query", "samples"):
            raise ValueError(f"unknown MonitorQuery mode {self.mode!r}")


#: What a spec's ``build_observation`` receives: ``slot →`` either a
#: :class:`QueryResult` (mode ``"query"``) or a ``(times, values)`` pair
#: (mode ``"samples"``).  The reserved ``"_memory"`` slot is a mutable
#: per-monitor dict that survives across cycles — builders needing state
#: (e.g. last-seen marker) keep it there, NOT in their spec closure, so
#: a spec stays instantiable more than once without state bleeding.
MonitorInputs = Mapping[str, object]

ObservationBuilder = Callable[[float, MonitorInputs], Optional[Observation]]


class QueryMonitor(Monitor):
    """Monitor phase defined entirely by declarative queries.

    Evaluates each :class:`MonitorQuery` through the shared hub and
    hands the results to the spec's builder.  Holds the per-slot sample
    cursors, which is the only state a declarative monitor has.
    """

    def __init__(
        self,
        name: str,
        queries: Sequence[MonitorQuery],
        build: ObservationBuilder,
        hub: QueryHub,
    ) -> None:
        self.name = name
        self.queries = [
            MonitorQuery(
                mq.slot,
                hub.parse(mq.query) if isinstance(mq.query, str) else mq.query,
                mq.mode,
                mq.fuse,
            )
            for mq in queries
        ]
        self.build = build
        self.hub = hub
        self._cursors: Dict[str, float] = {}
        self._memory: Dict[str, object] = {}

    def observe(self, now: float) -> Optional[Observation]:
        inputs: Dict[str, object] = {"_memory": self._memory}
        advanced: Dict[str, float] = {}
        for mq in self.queries:
            if mq.mode == "samples":
                times, values = self.hub.samples(
                    mq.query, at=now, since=self._cursors.get(mq.slot)
                )
                if times.size:
                    advanced[mq.slot] = float(times[-1])
                inputs[mq.slot] = (times, values)
            else:
                inputs[mq.slot] = self.hub.query(mq.query, at=now, fuse=mq.fuse)
        observation = self.build(now, inputs)
        if observation is not None:
            # commit cursors only for delivered observations — a builder
            # that declines the cycle must see the same samples again next
            # tick, matching the legacy check-then-read monitor contract
            self._cursors.update(advanced)
        return observation


# ---------------------------------------------------------------------------
# Loop specification


@dataclass
class LoopSpec:
    """Declarative description of one autonomy loop.

    The Monitor phase is either declarative (``queries`` +
    ``build_observation``) or, for monitors whose query set is dynamic
    (e.g. per-running-job views), a ``monitor_factory`` receiving the
    runtime so it can read through the shared :class:`QueryHub`.
    Component factories are zero-argument callables — specs close over
    their managed-system handles.
    """

    name: str
    analyzer_factory: Callable[[], Analyzer]
    planner_factory: Callable[[], Planner]
    executor_factory: Callable[[], Executor]
    queries: Tuple[MonitorQuery, ...] = ()
    build_observation: Optional[ObservationBuilder] = None
    monitor_factory: Optional[Callable[["LoopRuntime"], Monitor]] = None
    knowledge_factory: Optional[Callable[[], KnowledgeBase]] = None
    assessor_factory: Optional[Callable[[], Assessor]] = None
    guard_factories: Tuple[Callable[[], Guard], ...] = ()
    period_s: float = 60.0
    priority: int = 0
    start_at: Optional[float] = None  # absolute first-tick time; None = now
    phase_latency: PhaseLatency = field(default_factory=PhaseLatency)
    resource_keys: Callable[[Action], Sequence[ResourceKey]] = default_resource_keys
    claim_ttl_s: Optional[float] = None  # None → period_s
    keep_iterations: int = 256
    on_iteration: Optional[Callable[[LoopIteration], None]] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.monitor_factory is None and self.build_observation is None:
            raise ValueError(
                f"spec {self.name!r} needs either (queries + build_observation) "
                "or a monitor_factory"
            )


# ---------------------------------------------------------------------------
# Runtime


@dataclass
class RuntimeConfig:
    """Control-plane knobs shared by every hosted loop."""

    fuse_queries: bool = True
    enable_cache: bool = True
    #: maintain hot fused shapes as standing queries: O(new samples)
    #: incremental updates on commit instead of per-tick window scans
    #: (see :mod:`repro.query.standing`).  Opt-in: cold/ad-hoc queries
    #: still take the batch path either way.
    standing_queries: bool = False
    #: deterministic per-loop phase offset as a fraction of the period;
    #: 0 keeps every loop aligned to period boundaries (legacy timing,
    #: maximal tick sharing), >0 spreads monitor bursts across the tick
    phase_jitter_frac: float = 0.0
    #: publish per-loop self-telemetry into the store
    self_telemetry: bool = True
    #: period for publishing the runtime's metrics-registry snapshot into
    #: the store as ``obs_*`` series (monitor-the-monitor, see
    #: :mod:`repro.obs.metrics`); 0 disables the publisher
    obs_publish_period_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.phase_jitter_frac < 1.0:
            raise ValueError("phase_jitter_frac must be in [0, 1)")
        if self.obs_publish_period_s < 0.0:
            raise ValueError("obs_publish_period_s must be >= 0")


def deterministic_phase(name: str, period_s: float, frac: float) -> float:
    """Stable per-loop phase offset in ``[0, frac * period)``.

    Hash-derived, so a loop keeps its phase across runs and processes —
    jitter that spreads fleet monitor bursts without sacrificing
    reproducibility.
    """
    if frac <= 0.0:
        return 0.0
    return (zlib.crc32(name.encode()) % 10_000) / 10_000.0 * frac * period_s


class LoopHandle:
    """One hosted loop: its spec, the live MAPEK instance, its schedule.

    The handle is the supervision surface: it survives
    :meth:`LoopRuntime.restart` (which swaps in a fresh ``loop``),
    carries the quarantine flag, and remembers the spec's original
    period so retuning can converge back to it.
    """

    def __init__(self, runtime: "LoopRuntime", spec: LoopSpec, loop: MAPEKLoop) -> None:
        self.runtime = runtime
        self.spec = spec
        self.loop = loop
        self._task: Optional[PeriodicTask] = None
        self.base_period_s = spec.period_s
        self.started_at: Optional[float] = None
        self.first_tick_at: Optional[float] = None
        self.quarantined = False
        self.restarts = 0
        self.last_restart_at: Optional[float] = None
        self.retunes = 0

    # ------------------------------------------------------------- lifecycle
    def start(self, *, at: Optional[float] = None) -> None:
        """Schedule the loop; ``at`` overrides the spec's first-tick time."""
        if self.running:
            raise RuntimeError(f"loop {self.spec.name!r} already started")
        if self.quarantined:
            raise RuntimeError(f"loop {self.spec.name!r} is quarantined")
        engine = self.runtime.engine
        if at is not None:
            first = at
        else:
            first = self.spec.start_at if self.spec.start_at is not None else engine.now
        first += deterministic_phase(
            self.spec.name, self.spec.period_s, self.runtime.config.phase_jitter_frac
        )
        # Higher-priority loops run earlier on shared ticks: engine events
        # order by (time, priority, seq) and lower numbers win.
        self._task = engine.every(
            self.spec.period_s,
            self.loop.run_cycle,
            start_at=max(first, engine.now),
            priority=-self.spec.priority,
            label=f"loop-{self.spec.name}",
        )
        self.started_at = engine.now
        self.first_tick_at = max(first, engine.now)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def wedge(self) -> None:
        """Chaos hook: cancel the next firing while still reporting running.

        A wedged loop is indistinguishable from a hung one — registered,
        ``running`` true, never iterating again — which is exactly what
        heartbeat-based stuck detection must catch.  Used by the E17
        fault-injection scenarios; a restart clears it.
        """
        if self._task is not None and self._task._event is not None:
            self._task._event.cancel()

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.stopped


class LoopRuntime:
    """Hosts a fleet of loops over one engine, store, and arbiter."""

    def __init__(
        self,
        engine: Engine,
        store: Optional[TimeSeriesStore] = None,
        *,
        query_engine: Optional[QueryEngine] = None,
        audit: Optional[AuditTrail] = None,
        config: Optional[RuntimeConfig] = None,
        arbiter: Optional[PlanArbiter] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else RuntimeConfig()
        if query_engine is None:
            query_engine = QueryEngine(
                store if store is not None else TimeSeriesStore(),
                cache=QueryCache() if self.config.enable_cache else None,
                enable_cache=self.config.enable_cache,
            )
        self.query_engine = query_engine
        self.store = query_engine.store
        standing = None
        if self.config.standing_queries:
            standing = StandingQueryEngine(query_engine)
        self.hub = QueryHub(query_engine, fuse=self.config.fuse_queries, standing=standing)
        self.audit = audit
        self.arbiter = arbiter if arbiter is not None else PlanArbiter(audit=audit)
        self.handles: Dict[str, LoopHandle] = {}
        self.iterations_total = 0
        self.actions_total = 0
        self.restarts_total = 0
        self.quarantines_total = 0
        self.retunes_total = 0
        #: the runtime's own view into the obs taxonomy — refreshed and
        #: published by the periodic task below (when configured) or on
        #: demand via :meth:`publish_obs`
        self.obs_registry = MetricsRegistry()
        self.obs_publishes = 0
        self._obs_task: Optional[PeriodicTask] = None
        if self.config.obs_publish_period_s > 0:
            self._obs_task = engine.every(
                self.config.obs_publish_period_s,
                self.publish_obs,
                label="obs-publish",
            )

    @classmethod
    def for_case(
        cls,
        engine: Engine,
        *,
        runtime: Optional["LoopRuntime"] = None,
        store: Optional[TimeSeriesStore] = None,
        query_engine: Optional[QueryEngine] = None,
        audit: Optional[AuditTrail] = None,
    ) -> "LoopRuntime":
        """Join a shared runtime or build a private one — case-manager glue.

        Every ``*CaseManager`` resolves its hosting runtime the same way:
        a passed-in shared runtime wins (and then audit must come from
        it, not alongside it), otherwise a private runtime is built over
        the case's store/engine.
        """
        if runtime is not None:
            if audit is not None and runtime.audit is not audit:
                raise ValueError("pass audit via the shared runtime, not alongside it")
            if store is not None and runtime.store is not store:
                raise ValueError("case store differs from the shared runtime's store")
            if query_engine is not None and runtime.query_engine is not query_engine:
                raise ValueError("pass the query engine via the shared runtime, not alongside it")
            return runtime
        if store is None and query_engine is not None:
            store = query_engine.store
        return cls(engine, store, query_engine=query_engine, audit=audit)

    # ---------------------------------------------------------------- fleet
    def _build_loop(self, spec: LoopSpec) -> MAPEKLoop:
        """Instantiate the spec's components into a fresh MAPEK loop."""
        if spec.monitor_factory is not None:
            monitor: Monitor = spec.monitor_factory(self)
        else:
            monitor = QueryMonitor(spec.name, spec.queries, spec.build_observation, self.hub)
        guards: List[Guard] = [factory() for factory in spec.guard_factories]
        ttl = spec.claim_ttl_s if spec.claim_ttl_s is not None else spec.period_s
        guards.append(
            ArbiterGuard(
                self.arbiter,
                spec.name,
                spec.priority,
                ttl_s=ttl,
                resource_keys=spec.resource_keys,
            )
        )
        return MAPEKLoop(
            self.engine,
            spec.name,
            monitor=monitor,
            analyzer=spec.analyzer_factory(),
            planner=spec.planner_factory(),
            executor=spec.executor_factory(),
            knowledge=spec.knowledge_factory() if spec.knowledge_factory is not None else None,
            assessor=spec.assessor_factory() if spec.assessor_factory is not None else None,
            guards=guards,
            period_s=spec.period_s,
            phase_latency=spec.phase_latency,
            audit=self.audit,
            keep_iterations=spec.keep_iterations,
            on_iteration=self._iteration_hook(spec),
        )

    def add(self, spec: LoopSpec, *, start: bool = False) -> LoopHandle:
        """Instantiate a spec into a hosted loop; optionally start it."""
        if spec.name in self.handles:
            raise ValueError(f"loop {spec.name!r} already registered")
        handle = LoopHandle(self, spec, self._build_loop(spec))
        self.handles[spec.name] = handle
        if start:
            handle.start()
        return handle

    def add_many(self, specs: Sequence[LoopSpec], *, start: bool = False) -> List[LoopHandle]:
        return [self.add(spec, start=start) for spec in specs]

    def remove(self, name: str) -> Optional[LoopHandle]:
        """Stop and unregister a loop, releasing its arbiter claims."""
        handle = self.handles.pop(name, None)
        if handle is not None:
            handle.stop()
            self.arbiter.release(name)
        return handle

    # ------------------------------------------------------ fleet operations
    # The supervision surface (see :mod:`repro.core.supervisor`): every
    # operation is audited under the acting loop's name so meta-loop
    # decisions are traceable next to the decisions of the loops they
    # govern.

    def restart(self, name: str, *, by: str = "runtime", reason: str = "") -> LoopHandle:
        """Rebuild a loop from its spec and reschedule it from now.

        A restart is the stuck-loop remedy: fresh components (a wedged
        monitor's state is discarded), released arbiter claims (a held
        ``(domain, target)`` must not outlive the holder's death), and a
        first tick one period from now.  Cumulative loop counters reset
        with the instance; the handle's ``restarts`` counter and the
        published ``loop_restarts_total`` series carry the history.
        """
        handle = self.handles[name]
        handle.stop()
        handle.quarantined = False
        self.arbiter.release(name)
        handle.loop = self._build_loop(handle.spec)
        handle.restarts += 1
        handle.last_restart_at = self.engine.now
        self.restarts_total += 1
        handle.start(at=self.engine.now + handle.spec.period_s)
        now = self.engine.now
        if self.config.self_telemetry:
            self.store.insert(
                SeriesKey.of("loop_restarts_total", loop=name), now, float(handle.restarts)
            )
        if self.audit is not None:
            data = {"op": "restart", "loop": name, "restarts": handle.restarts}
            # attach the causal trace: the spans that preceded this
            # intervention (slow ticks, stalled scatters, deferrals)
            flight = FLIGHT.dump("restart_loop", loop=name, by=by, reason=reason)
            if flight is not None:
                data["flight_dump"] = flight
            self.audit.record(
                now, by, "fleet",
                f"restarted loop {name}" + (f": {reason}" if reason else ""),
                data=data,
            )
        return handle

    def quarantine(self, name: str, *, by: str = "runtime", reason: str = "") -> LoopHandle:
        """Stop a loop and bar it from starting until unquarantined.

        The remedy for a loop that keeps planning against the fleet
        (repeatedly vetoed actuations): it stays registered — its spec,
        history, and telemetry remain inspectable — but cannot tick.
        Its claims are released so the resources it held drain back.
        """
        handle = self.handles[name]
        handle.stop()
        handle.quarantined = True
        self.quarantines_total += 1
        self.arbiter.release(name)
        if self.audit is not None:
            data = {"op": "quarantine", "loop": name}
            flight = FLIGHT.dump("quarantine_loop", loop=name, by=by, reason=reason)
            if flight is not None:
                data["flight_dump"] = flight
            self.audit.record(
                self.engine.now, by, "fleet",
                f"quarantined loop {name}" + (f": {reason}" if reason else ""),
                data=data,
            )
        return handle

    def unquarantine(self, name: str, *, by: str = "runtime", start: bool = True) -> LoopHandle:
        """Lift a quarantine; by default the loop resumes one period out."""
        handle = self.handles[name]
        handle.quarantined = False
        if start and not handle.running:
            handle.start(at=self.engine.now + handle.spec.period_s)
        if self.audit is not None:
            self.audit.record(
                self.engine.now, by, "fleet",
                f"unquarantined loop {name}",
                data={"op": "unquarantine", "loop": name},
            )
        return handle

    def retune(
        self, name: str, *, period_s: float, by: str = "runtime", reason: str = ""
    ) -> LoopHandle:
        """Change a loop's period in place, rescheduling its next tick.

        Loop state (knowledge, iteration history, counters) survives —
        only the schedule and the arbiter claim TTL (when derived from
        the period) change.  This is the load-shedding actuator: a
        supervisor that measures iteration cost can slow an expensive
        loop down, then speed it back up toward ``base_period_s`` when
        the pressure clears.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        handle = self.handles[name]
        old = handle.spec.period_s
        handle.spec.period_s = period_s
        handle.loop.period_s = period_s
        if handle.spec.claim_ttl_s is None:
            for guard in handle.loop.guards:
                if isinstance(guard, ArbiterGuard):
                    guard.ttl_s = period_s
        was_running = handle.running
        handle.stop()
        handle.retunes += 1
        self.retunes_total += 1
        if was_running and not handle.quarantined:
            handle.start(at=self.engine.now + period_s)
        if self.audit is not None:
            self.audit.record(
                self.engine.now, by, "fleet",
                f"retuned loop {name}: period {old:g}s -> {period_s:g}s"
                + (f" ({reason})" if reason else ""),
                data={"op": "retune", "loop": name, "period_s": period_s},
            )
        return handle

    def handle(self, name: str) -> LoopHandle:
        return self.handles[name]

    def start(self) -> None:
        """Start every registered, unquarantined loop not already running."""
        for handle in self.handles.values():
            if not handle.running and not handle.quarantined:
                handle.start()

    def stop(self) -> None:
        for handle in self.handles.values():
            handle.stop()
        if self._obs_task is not None:
            self._obs_task.stop()
            self._obs_task = None

    def active_loops(self) -> int:
        return sum(1 for h in self.handles.values() if h.running)

    # ----------------------------------------------------------- telemetry
    def _iteration_hook(self, spec: LoopSpec) -> Callable[[LoopIteration], None]:
        """Chain fleet accounting + self-telemetry after the spec's hook."""

        def hook(iteration: LoopIteration) -> None:
            self.iterations_total += 1
            self.actions_total += len(iteration.results)
            if self.config.self_telemetry:
                self._publish_iteration(spec.name, iteration)
            if spec.on_iteration is not None:
                spec.on_iteration(iteration)

        return hook

    def _publish_iteration(self, name: str, iteration: LoopIteration) -> None:
        """Write one iteration's self-telemetry into the shared store.

        Published through the same store the monitors read, so loops can
        watch loops: ``mean(loop_iteration_ms[600s]) group by (loop)``
        is a valid monitor query for a meta-loop.
        """
        now = self.engine.now
        loop = self.handles[name].loop if name in self.handles else None
        store = self.store
        store.insert(SeriesKey.of("loop_iteration_ms", loop=name), now, iteration.wall_ms)
        if loop is not None:
            store.insert(
                SeriesKey.of("loop_actions_total", loop=name), now, float(loop.actions_executed)
            )
            store.insert(
                SeriesKey.of("loop_vetoes_total", loop=name), now, float(loop.actions_vetoed)
            )
        if iteration.staleness is not None:
            store.insert(
                SeriesKey.of("loop_staleness_s", loop=name), now, float(iteration.staleness)
            )

    def publish_obs(self) -> int:
        """Refresh the obs registry from live stats and publish it.

        Writes one sample per canonical metric into the store as
        ``obs_<namespace>_<name>`` series (``obs_cache_hits``,
        ``obs_pool_respawns_total`` …), making the monitoring stack
        itself monitorable: a meta-loop can watch
        ``rate(obs_pool_respawns_total[600s])`` with the same machinery
        fleet loops use on node telemetry.  Returns the series count.
        """
        from repro.obs import collect_metrics

        collect_metrics(runtime=self, registry=self.obs_registry)
        written = self.obs_registry.publish(self.store, self.engine.now)
        self.obs_publishes += 1
        return len(written)

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, float]:
        out = {
            "loops": float(len(self.handles)),
            "loops_running": float(self.active_loops()),
            "loops_quarantined": float(
                sum(1 for h in self.handles.values() if h.quarantined)
            ),
            "iterations_total": float(self.iterations_total),
            "actions_total": float(self.actions_total),
            "restarts_total": float(self.restarts_total),
            "quarantines_total": float(self.quarantines_total),
            "retunes_total": float(self.retunes_total),
        }
        out.update({f"hub_{k}": v for k, v in self.hub.stats().items()})
        out.update({f"arbiter_{k}": v for k, v in self.arbiter.stats().items()})
        return out

    def loop_stats(self) -> List[Dict[str, float]]:
        """Per-loop summary rows (CLI / dashboard friendly)."""
        rows = []
        for name, handle in sorted(self.handles.items()):
            loop = handle.loop
            staleness = [
                it.staleness for it in loop.iterations if it.staleness is not None
            ]
            rows.append(
                {
                    "loop": name,
                    "priority": float(handle.spec.priority),
                    "period_s": float(handle.spec.period_s),
                    "iterations": float(loop.iterations_run),
                    "actions": float(loop.actions_executed),
                    "vetoes": float(loop.actions_vetoed),
                    "mean_staleness_s": float(np.mean(staleness)) if staleness else 0.0,
                    "restarts": float(handle.restarts),
                    "state": "quarantined" if handle.quarantined
                    else ("running" if handle.running else "stopped"),
                }
            )
        return rows
