"""The unified autonomy-loop runtime.

The paper's contribution is not any single feedback loop but a framework
for running *many* concurrent loops over shared monitoring data with
trust controls.  This module is that control plane:

* :class:`LoopSpec` — a declarative description of one loop: name,
  priority, period, Monitor phase as a list of
  :class:`~repro.query.model.MetricQuery` expressions (plus a builder
  that turns their results into an
  :class:`~repro.core.types.Observation`), factories for the
  Analyze/Plan/Execute components, guards, and phase latencies.
* :class:`QueryHub` — the shared Monitor-phase serving layer: every
  loop's reads go through one vectorized
  :class:`~repro.query.engine.QueryEngine` + :class:`QueryCache`, and
  structurally compatible selections are **fused** (see
  :mod:`repro.query.fuse`) so a fleet of N per-partition loops costs one
  widened query execution per tick instead of N ad-hoc store scans.
* :class:`LoopRuntime` — instantiates specs into
  :class:`~repro.core.loop.MAPEKLoop` instances, multiplexes them on the
  simulation engine with priority ordering (higher-priority loops run
  first on shared ticks) and deterministic phase jitter, arbitrates
  conflicting plans through the shared
  :class:`~repro.core.arbiter.PlanArbiter`, and publishes per-loop
  self-telemetry (``loop_iteration_ms``, ``loop_actions_total``,
  ``loop_vetoes_total``, ``loop_staleness_s``) back into the
  :class:`~repro.telemetry.tsdb.TimeSeriesStore` — loops are themselves
  monitorable through the same query path they monitor with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.arbiter import ArbiterGuard, PlanArbiter, ResourceKey, default_resource_keys
from repro.core.audit import AuditTrail
from repro.core.component import Analyzer, Assessor, Executor, Monitor, Planner
from repro.core.guards import Guard
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.types import Action, LoopIteration, Observation
from repro.query.cache import QueryCache
from repro.query.engine import QueryEngine, QueryResult
from repro.query.fuse import fusable, widen
from repro.query.model import MetricQuery
from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore

__all__ = [
    "LoopHandle",
    "LoopRuntime",
    "LoopSpec",
    "MonitorQuery",
    "QueryHub",
    "QueryMonitor",
    "RuntimeConfig",
]


# ---------------------------------------------------------------------------
# Shared Monitor-phase serving layer


class QueryHub:
    """One query front-end shared by every loop the runtime hosts.

    Wraps a :class:`QueryEngine` with query fusion: a fusable narrow
    query (matchers ⊆ group_by — see :mod:`repro.query.fuse`) is served
    by executing its widened form once and filtering the output series.
    Because the engine's cache is version-keyed on per-metric write
    epochs, every other loop issuing a compatible selection in the same
    tick hits the cached widened result — the fused query pass.

    The hub exposes the same read surface monitors already use
    (``query`` / ``scalar`` / ``samples`` / ``parse`` / ``store``), so
    existing telemetry-backed monitors run through it unchanged.
    """

    def __init__(self, engine: QueryEngine, *, fuse: bool = True) -> None:
        self.engine = engine
        self.store = engine.store
        self.fuse = fuse
        self.fused_served = 0
        self.direct_served = 0
        #: narrow-selection memo: query → (series generation, admissible
        #: output-series labels).  Regex matchers are evaluated once per
        #: generation; per-tick narrowing is pure set membership.
        self._narrow_cache: Dict[MetricQuery, Tuple[int, frozenset]] = {}

    def parse(self, expr: str) -> MetricQuery:
        return self.engine.parse(expr)

    def query(
        self, q: Union[str, MetricQuery], *, at: float, fuse: Optional[bool] = None
    ) -> QueryResult:
        """Evaluate ``q``; ``fuse`` overrides the hub default per call.

        Fusion pays when many loops issue compatible selections at the
        *same* tick (the widened result is computed once and shared);
        loops with per-instance phases (e.g. one loop per job, each
        aligned to its job's start) should pass ``fuse=False`` — an
        unshared widened execution costs a full-metric pass for a
        single-series answer.
        """
        if isinstance(q, str):
            q = self.engine.parse(q)
        # fusion's economics depend on the widened result being cached and
        # shared; without a cache it would degrade every narrow read into
        # its own full-metric pass, so an uncached engine never fuses
        effective = (self.fuse if fuse is None else fuse) and self.engine.cache is not None
        if effective and fusable(q):
            self.fused_served += 1
            wide = self.engine.query(widen(q), at=at)
            return self._narrow(q, wide)
        self.direct_served += 1
        return self.engine.query(q, at=at)

    def _narrow(self, q: MetricQuery, wide: QueryResult) -> QueryResult:
        """Select ``q``'s series from the widened result by membership.

        Equivalent to :func:`repro.query.fuse.narrow_result` but with the
        matcher evaluation hoisted out of the per-tick path: the set of
        admissible output-series labels only changes when a new series
        of the metric appears (tracked by the store's generation).
        """
        gen = self.store.series_generation(q.metric)
        hit = self._narrow_cache.get(q)
        if hit is None or hit[0] != gen:
            allowed = frozenset(q.group_key(key) for key in self.engine.select(q))
            if len(self._narrow_cache) > 4096:  # unbounded query shapes: reset
                self._narrow_cache.clear()
            self._narrow_cache[q] = (gen, allowed)
        else:
            allowed = hit[1]
        kept = tuple(s for s in wide.series if s.labels in allowed)
        return QueryResult(q, wide.t0, wide.t1, kept, source=f"fused+{wide.source}")

    def scalar(self, q: Union[str, MetricQuery], *, at: float) -> Optional[float]:
        return self.query(q, at=at).scalar()

    def samples(
        self, q: Union[str, MetricQuery], *, at: float, since: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.engine.samples(q, at=at, since=since)

    def stats(self) -> Dict[str, float]:
        out = {
            "fused_served": float(self.fused_served),
            "direct_served": float(self.direct_served),
        }
        out.update({f"engine_{k}": v for k, v in self.engine.stats().items()})
        return out


# ---------------------------------------------------------------------------
# Declarative monitors


@dataclass(frozen=True)
class MonitorQuery:
    """One named read in a spec's Monitor phase.

    ``mode="query"`` evaluates through the hub (fused + cached);
    ``mode="samples"`` extracts raw points with cursor semantics — each
    observation sees only samples newer than the previous one (marker
    streams, transfer logs).  ``fuse`` overrides the hub's fusion
    default for this read (``False`` for per-instance-phased loops whose
    widened results would never be shared).
    """

    slot: str
    query: Union[str, MetricQuery]
    mode: str = "query"
    fuse: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.mode not in ("query", "samples"):
            raise ValueError(f"unknown MonitorQuery mode {self.mode!r}")


#: What a spec's ``build_observation`` receives: ``slot →`` either a
#: :class:`QueryResult` (mode ``"query"``) or a ``(times, values)`` pair
#: (mode ``"samples"``).  The reserved ``"_memory"`` slot is a mutable
#: per-monitor dict that survives across cycles — builders needing state
#: (e.g. last-seen marker) keep it there, NOT in their spec closure, so
#: a spec stays instantiable more than once without state bleeding.
MonitorInputs = Mapping[str, object]

ObservationBuilder = Callable[[float, MonitorInputs], Optional[Observation]]


class QueryMonitor(Monitor):
    """Monitor phase defined entirely by declarative queries.

    Evaluates each :class:`MonitorQuery` through the shared hub and
    hands the results to the spec's builder.  Holds the per-slot sample
    cursors, which is the only state a declarative monitor has.
    """

    def __init__(
        self,
        name: str,
        queries: Sequence[MonitorQuery],
        build: ObservationBuilder,
        hub: QueryHub,
    ) -> None:
        self.name = name
        self.queries = [
            MonitorQuery(
                mq.slot,
                hub.parse(mq.query) if isinstance(mq.query, str) else mq.query,
                mq.mode,
                mq.fuse,
            )
            for mq in queries
        ]
        self.build = build
        self.hub = hub
        self._cursors: Dict[str, float] = {}
        self._memory: Dict[str, object] = {}

    def observe(self, now: float) -> Optional[Observation]:
        inputs: Dict[str, object] = {"_memory": self._memory}
        advanced: Dict[str, float] = {}
        for mq in self.queries:
            if mq.mode == "samples":
                times, values = self.hub.samples(
                    mq.query, at=now, since=self._cursors.get(mq.slot)
                )
                if times.size:
                    advanced[mq.slot] = float(times[-1])
                inputs[mq.slot] = (times, values)
            else:
                inputs[mq.slot] = self.hub.query(mq.query, at=now, fuse=mq.fuse)
        observation = self.build(now, inputs)
        if observation is not None:
            # commit cursors only for delivered observations — a builder
            # that declines the cycle must see the same samples again next
            # tick, matching the legacy check-then-read monitor contract
            self._cursors.update(advanced)
        return observation


# ---------------------------------------------------------------------------
# Loop specification


@dataclass
class LoopSpec:
    """Declarative description of one autonomy loop.

    The Monitor phase is either declarative (``queries`` +
    ``build_observation``) or, for monitors whose query set is dynamic
    (e.g. per-running-job views), a ``monitor_factory`` receiving the
    runtime so it can read through the shared :class:`QueryHub`.
    Component factories are zero-argument callables — specs close over
    their managed-system handles.
    """

    name: str
    analyzer_factory: Callable[[], Analyzer]
    planner_factory: Callable[[], Planner]
    executor_factory: Callable[[], Executor]
    queries: Tuple[MonitorQuery, ...] = ()
    build_observation: Optional[ObservationBuilder] = None
    monitor_factory: Optional[Callable[["LoopRuntime"], Monitor]] = None
    knowledge_factory: Optional[Callable[[], KnowledgeBase]] = None
    assessor_factory: Optional[Callable[[], Assessor]] = None
    guard_factories: Tuple[Callable[[], Guard], ...] = ()
    period_s: float = 60.0
    priority: int = 0
    start_at: Optional[float] = None  # absolute first-tick time; None = now
    phase_latency: PhaseLatency = field(default_factory=PhaseLatency)
    resource_keys: Callable[[Action], Sequence[ResourceKey]] = default_resource_keys
    claim_ttl_s: Optional[float] = None  # None → period_s
    keep_iterations: int = 256
    on_iteration: Optional[Callable[[LoopIteration], None]] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.monitor_factory is None and self.build_observation is None:
            raise ValueError(
                f"spec {self.name!r} needs either (queries + build_observation) "
                "or a monitor_factory"
            )


# ---------------------------------------------------------------------------
# Runtime


@dataclass
class RuntimeConfig:
    """Control-plane knobs shared by every hosted loop."""

    fuse_queries: bool = True
    enable_cache: bool = True
    #: deterministic per-loop phase offset as a fraction of the period;
    #: 0 keeps every loop aligned to period boundaries (legacy timing,
    #: maximal tick sharing), >0 spreads monitor bursts across the tick
    phase_jitter_frac: float = 0.0
    #: publish per-loop self-telemetry into the store
    self_telemetry: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.phase_jitter_frac < 1.0:
            raise ValueError("phase_jitter_frac must be in [0, 1)")


def deterministic_phase(name: str, period_s: float, frac: float) -> float:
    """Stable per-loop phase offset in ``[0, frac * period)``.

    Hash-derived, so a loop keeps its phase across runs and processes —
    jitter that spreads fleet monitor bursts without sacrificing
    reproducibility.
    """
    if frac <= 0.0:
        return 0.0
    return (zlib.crc32(name.encode()) % 10_000) / 10_000.0 * frac * period_s


class LoopHandle:
    """One hosted loop: its spec, the live MAPEK instance, its schedule."""

    def __init__(self, runtime: "LoopRuntime", spec: LoopSpec, loop: MAPEKLoop) -> None:
        self.runtime = runtime
        self.spec = spec
        self.loop = loop
        self._task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self.running:
            raise RuntimeError(f"loop {self.spec.name!r} already started")
        engine = self.runtime.engine
        first = self.spec.start_at if self.spec.start_at is not None else engine.now
        first += deterministic_phase(
            self.spec.name, self.spec.period_s, self.runtime.config.phase_jitter_frac
        )
        # Higher-priority loops run earlier on shared ticks: engine events
        # order by (time, priority, seq) and lower numbers win.
        self._task = engine.every(
            self.spec.period_s,
            self.loop.run_cycle,
            start_at=max(first, engine.now),
            priority=-self.spec.priority,
            label=f"loop-{self.spec.name}",
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.stopped


class LoopRuntime:
    """Hosts a fleet of loops over one engine, store, and arbiter."""

    def __init__(
        self,
        engine: Engine,
        store: Optional[TimeSeriesStore] = None,
        *,
        query_engine: Optional[QueryEngine] = None,
        audit: Optional[AuditTrail] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else RuntimeConfig()
        if query_engine is None:
            query_engine = QueryEngine(
                store if store is not None else TimeSeriesStore(),
                cache=QueryCache() if self.config.enable_cache else None,
                enable_cache=self.config.enable_cache,
            )
        self.query_engine = query_engine
        self.store = query_engine.store
        self.hub = QueryHub(query_engine, fuse=self.config.fuse_queries)
        self.audit = audit
        self.arbiter = PlanArbiter(audit=audit)
        self.handles: Dict[str, LoopHandle] = {}
        self.iterations_total = 0
        self.actions_total = 0

    @classmethod
    def for_case(
        cls,
        engine: Engine,
        *,
        runtime: Optional["LoopRuntime"] = None,
        store: Optional[TimeSeriesStore] = None,
        query_engine: Optional[QueryEngine] = None,
        audit: Optional[AuditTrail] = None,
    ) -> "LoopRuntime":
        """Join a shared runtime or build a private one — case-manager glue.

        Every ``*CaseManager`` resolves its hosting runtime the same way:
        a passed-in shared runtime wins (and then audit must come from
        it, not alongside it), otherwise a private runtime is built over
        the case's store/engine.
        """
        if runtime is not None:
            if audit is not None and runtime.audit is not audit:
                raise ValueError("pass audit via the shared runtime, not alongside it")
            if store is not None and runtime.store is not store:
                raise ValueError("case store differs from the shared runtime's store")
            if query_engine is not None and runtime.query_engine is not query_engine:
                raise ValueError("pass the query engine via the shared runtime, not alongside it")
            return runtime
        if store is None and query_engine is not None:
            store = query_engine.store
        return cls(engine, store, query_engine=query_engine, audit=audit)

    # ---------------------------------------------------------------- fleet
    def add(self, spec: LoopSpec, *, start: bool = False) -> LoopHandle:
        """Instantiate a spec into a hosted loop; optionally start it."""
        if spec.name in self.handles:
            raise ValueError(f"loop {spec.name!r} already registered")
        if spec.monitor_factory is not None:
            monitor: Monitor = spec.monitor_factory(self)
        else:
            monitor = QueryMonitor(spec.name, spec.queries, spec.build_observation, self.hub)
        guards: List[Guard] = [factory() for factory in spec.guard_factories]
        ttl = spec.claim_ttl_s if spec.claim_ttl_s is not None else spec.period_s
        guards.append(
            ArbiterGuard(
                self.arbiter,
                spec.name,
                spec.priority,
                ttl_s=ttl,
                resource_keys=spec.resource_keys,
            )
        )
        loop = MAPEKLoop(
            self.engine,
            spec.name,
            monitor=monitor,
            analyzer=spec.analyzer_factory(),
            planner=spec.planner_factory(),
            executor=spec.executor_factory(),
            knowledge=spec.knowledge_factory() if spec.knowledge_factory is not None else None,
            assessor=spec.assessor_factory() if spec.assessor_factory is not None else None,
            guards=guards,
            period_s=spec.period_s,
            phase_latency=spec.phase_latency,
            audit=self.audit,
            keep_iterations=spec.keep_iterations,
            on_iteration=self._iteration_hook(spec),
        )
        handle = LoopHandle(self, spec, loop)
        self.handles[spec.name] = handle
        if start:
            handle.start()
        return handle

    def add_many(self, specs: Sequence[LoopSpec], *, start: bool = False) -> List[LoopHandle]:
        return [self.add(spec, start=start) for spec in specs]

    def remove(self, name: str) -> Optional[LoopHandle]:
        """Stop and unregister a loop, releasing its arbiter claims."""
        handle = self.handles.pop(name, None)
        if handle is not None:
            handle.stop()
            self.arbiter.release(name)
        return handle

    def handle(self, name: str) -> LoopHandle:
        return self.handles[name]

    def start(self) -> None:
        """Start every registered loop that is not already running."""
        for handle in self.handles.values():
            if not handle.running:
                handle.start()

    def stop(self) -> None:
        for handle in self.handles.values():
            handle.stop()

    def active_loops(self) -> int:
        return sum(1 for h in self.handles.values() if h.running)

    # ----------------------------------------------------------- telemetry
    def _iteration_hook(self, spec: LoopSpec) -> Callable[[LoopIteration], None]:
        """Chain fleet accounting + self-telemetry after the spec's hook."""

        def hook(iteration: LoopIteration) -> None:
            self.iterations_total += 1
            self.actions_total += len(iteration.results)
            if self.config.self_telemetry:
                self._publish_iteration(spec.name, iteration)
            if spec.on_iteration is not None:
                spec.on_iteration(iteration)

        return hook

    def _publish_iteration(self, name: str, iteration: LoopIteration) -> None:
        """Write one iteration's self-telemetry into the shared store.

        Published through the same store the monitors read, so loops can
        watch loops: ``mean(loop_iteration_ms[600s]) group by (loop)``
        is a valid monitor query for a meta-loop.
        """
        now = self.engine.now
        loop = self.handles[name].loop if name in self.handles else None
        store = self.store
        store.insert(SeriesKey.of("loop_iteration_ms", loop=name), now, iteration.wall_ms)
        if loop is not None:
            store.insert(
                SeriesKey.of("loop_actions_total", loop=name), now, float(loop.actions_executed)
            )
            store.insert(
                SeriesKey.of("loop_vetoes_total", loop=name), now, float(loop.actions_vetoed)
            )
        if iteration.staleness is not None:
            store.insert(
                SeriesKey.of("loop_staleness_s", loop=name), now, float(iteration.staleness)
            )

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, float]:
        out = {
            "loops": float(len(self.handles)),
            "loops_running": float(self.active_loops()),
            "iterations_total": float(self.iterations_total),
            "actions_total": float(self.actions_total),
        }
        out.update({f"hub_{k}": v for k, v in self.hub.stats().items()})
        out.update({f"arbiter_{k}": v for k, v in self.arbiter.stats().items()})
        return out

    def loop_stats(self) -> List[Dict[str, float]]:
        """Per-loop summary rows (CLI / dashboard friendly)."""
        rows = []
        for name, handle in sorted(self.handles.items()):
            loop = handle.loop
            staleness = [
                it.staleness for it in loop.iterations if it.staleness is not None
            ]
            rows.append(
                {
                    "loop": name,
                    "priority": float(handle.spec.priority),
                    "period_s": float(handle.spec.period_s),
                    "iterations": float(loop.iterations_run),
                    "actions": float(loop.actions_executed),
                    "vetoes": float(loop.actions_vetoed),
                    "mean_staleness_s": float(np.mean(staleness)) if staleness else 0.0,
                }
            )
        return rows
