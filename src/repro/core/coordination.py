"""Coordination helpers for decentralized MAPE-K patterns.

The fully decentralized pattern exchanges state with peers; this module
provides the ring topology used by default and ``NeighborView``, each
element's possibly-stale picture of its neighborhood — staleness is the
mechanism behind the pattern's instability risks (Fig. 2c discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


def ring_neighbors(n: int, i: int, k: int = 1) -> List[int]:
    """Indices of the ``k`` nearest neighbours on each side of ``i`` in a ring.

    With ``k=1`` on ``n=5``: neighbours of 0 are [4, 1].
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= i < n:
        raise ValueError(f"i={i} out of range for n={n}")
    if k < 0:
        raise ValueError("k must be >= 0")
    out: List[int] = []
    for d in range(1, k + 1):
        out.append((i - d) % n)
        out.append((i + d) % n)
    # dedupe while preserving order (small rings can wrap onto themselves)
    seen = set()
    uniq = []
    for j in out:
        if j != i and j not in seen:
            seen.add(j)
            uniq.append(j)
    return sorted(uniq)


@dataclass
class _Entry:
    value: float
    time: float


class NeighborView:
    """One element's last-known states of its peers, with staleness."""

    def __init__(self) -> None:
        self._entries: Dict[int, _Entry] = {}

    def update(self, peer: int, value: float, time: float) -> None:
        self._entries[peer] = _Entry(value, time)

    def get(self, peer: int) -> Optional[float]:
        entry = self._entries.get(peer)
        return entry.value if entry is not None else None

    def known_values(self) -> List[float]:
        return [e.value for e in self._entries.values()]

    def staleness(self, now: float) -> float:
        """Age of the oldest entry; 0 when empty."""
        if not self._entries:
            return 0.0
        return max(now - e.time for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
