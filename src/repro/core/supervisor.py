"""Fleet supervision: meta-loops that watch loops and act on the fleet.

The paper's central claim is that monitoring, ODA, feedback, and
response should themselves be closed loops — which implies the loop
fleet must be monitorable *and governable* by loops.  PR 3 made the
fleet monitorable: every hosted loop publishes ``loop_iteration_ms``,
``loop_actions_total``, ``loop_vetoes_total``, and ``loop_staleness_s``
back into the shared store.  This module closes the meta-loop: a family
of :class:`MetaLoopSpec` supervisor loops, hosted on the **same**
:class:`~repro.core.runtime.LoopRuntime` as the loops they govern,
whose Monitor phase is plain :class:`~repro.query.model.MetricQuery`
expressions over that self-telemetry and whose Execute phase actuates
the fleet itself:

* **health** — heartbeat gaps (a loop that stopped iterating) and
  frozen observations (``loop_staleness_s`` beyond bound) are repaired
  with :meth:`~repro.core.runtime.LoopRuntime.restart`; loops whose
  actuations are repeatedly vetoed by the arbiter are
  :meth:`~repro.core.runtime.LoopRuntime.quarantine`\\ d.
* **tuning** — measured iteration cost (``loop_iteration_ms``) retunes
  loop periods: expensive loops are slowed down (load shedding),
  previously slowed loops are sped back up toward their spec period
  when the pressure clears.
* **fusion** — the :class:`~repro.core.runtime.QueryHub` records, for
  every fusable read, how many distinct narrow queries shared the same
  widened shape per tick; when that fan-in shows fusible load the
  supervisor flips the shape's fuse override on (adaptive fusion) — no
  manual ``fuse`` flags required — and clears overrides whose sharing
  evaporated.

Supervisor actions are ordinary :class:`~repro.core.types.Action`
records (``restart_loop``, ``quarantine_loop``, ``retune_loop``,
``set_fuse``) that pass through the loop's guard chain and the shared
:class:`~repro.core.arbiter.PlanArbiter` like any other actuation —
supervision is arbitrated and audited, not privileged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase
from repro.core.runtime import LoopHandle, LoopRuntime, LoopSpec, MonitorQuery
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    Observation,
    Plan,
    Symptom,
)

__all__ = [
    "MetaLoopSpec",
    "SupervisorConfig",
    "SUPERVISOR_PRIORITY",
    "FleetExecutor",
    "attach_supervisors",
    "fusion_supervisor_spec",
    "health_supervisor_spec",
    "tuning_supervisor_spec",
]

#: Supervisors outrank every workload loop: a restart claim on
#: ``("loop", name)`` must not lose arbitration to the loop's own work.
SUPERVISOR_PRIORITY = 1000


@dataclass
class SupervisorConfig:
    """Thresholds and cadences shared by the supervisor family."""

    period_s: float = 60.0
    window_s: float = 600.0
    priority: int = SUPERVISOR_PRIORITY
    # --- health: stuck / frozen / veto-storm detection
    #: a loop is stuck when its newest heartbeat bin is older than
    #: ``heartbeat_factor`` of its own period
    heartbeat_factor: float = 3.0
    #: bin width of the heartbeat presence query
    heartbeat_step_s: float = 30.0
    #: a loop is frozen when its last published staleness exceeds this
    staleness_bound_s: float = 90.0
    #: do not restart the same loop again within this long
    restart_cooldown_s: float = 240.0
    #: quarantine a loop whose vetoes grew by at least this much in window
    quarantine_vetoes: float = 8.0
    # --- tuning: period retuning from measured iteration cost
    #: mean host-milliseconds per iteration above which a loop is slowed
    slow_iteration_ms: float = 50.0
    #: mean cost below which a previously slowed loop speeds back up
    fast_iteration_ms: float = 5.0
    #: multiplicative period step per retune
    retune_factor: float = 2.0
    #: never slow a loop beyond ``base_period * max_period_factor``
    max_period_factor: float = 8.0
    retune_cooldown_s: float = 240.0
    # --- fusion: adaptive per-shape fuse flipping
    #: distinct narrow queries per tick that justify fusing a shape
    fuse_min_sharing: float = 4.0
    #: ticks of evidence before flipping
    fuse_min_ticks: float = 3.0

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.window_s <= 0:
            raise ValueError("period_s and window_s must be positive")
        if self.heartbeat_factor < 1.0:
            raise ValueError("heartbeat_factor must be >= 1")
        if self.retune_factor <= 1.0:
            raise ValueError("retune_factor must be > 1")


@dataclass
class MetaLoopSpec(LoopSpec):
    """A supervisor loop's spec: a LoopSpec that governs other loops.

    The subclass is the marker supervision logic keys on — meta-loops
    never supervise each other (no restart ping-pong between the health
    supervisor and itself) and are excluded from retuning.
    """

    meta_kind: str = "meta"


def _roster(runtime: LoopRuntime) -> Dict[str, Dict[str, object]]:
    """Snapshot of the supervisable fleet, keyed by loop name."""
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(runtime.handles):
        handle = runtime.handles[name]
        out[name] = {
            "period_s": float(handle.spec.period_s),
            "base_period_s": float(handle.base_period_s),
            "running": handle.running,
            "quarantined": handle.quarantined,
            "meta": isinstance(handle.spec, MetaLoopSpec),
            # heartbeat grace counts from the first *scheduled* tick, not
            # registration — a loop configured to start later is not stuck
            "started_at": handle.first_tick_at,
            "restarts": float(handle.restarts),
            "last_restart_at": handle.last_restart_at,
        }
    return out


# ---------------------------------------------------------------------------
# Fleet actuation


class FleetExecutor(Executor):
    """Executes supervision actions against the hosting runtime.

    The managed system of a meta-loop *is* the fleet: restarts,
    quarantines, retunes, and fuse flips all go through the runtime's
    audited fleet operations.  Unknown targets are refused, not raised —
    a supervisor acting on a stale roster must degrade gracefully.
    """

    name = "fleet-executor"

    def __init__(self, runtime: LoopRuntime, *, by: str = "supervisor") -> None:
        self.runtime = runtime
        self.by = by

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        results = []
        now = self.runtime.engine.now
        for action in plan.actions:
            try:
                detail = self._apply(action)
                honored = True
            except (KeyError, ValueError) as exc:
                detail, honored = f"refused: {exc}", False
            results.append(ExecutionResult(action, now, honored=honored, detail=detail))
        return results

    def _apply(self, action: Action) -> str:
        if TRACER.enabled:
            with TRACER.span("supervisor.apply", kind=action.kind,
                             target=action.target):
                return self._apply_impl(action)
        return self._apply_impl(action)

    def _apply_impl(self, action: Action) -> str:
        METRICS.counter(f"supervisor.applied.{action.kind}").inc()
        runtime, name = self.runtime, action.target
        if action.kind == "restart_loop":
            handle = runtime.restart(name, by=self.by, reason=action.rationale)
            return f"restarted (restart #{handle.restarts})"
        if action.kind == "quarantine_loop":
            runtime.quarantine(name, by=self.by, reason=action.rationale)
            return "quarantined"
        if action.kind == "unquarantine_loop":
            runtime.unquarantine(name, by=self.by)
            return "unquarantined"
        if action.kind == "retune_loop":
            period = action.param("period_s")
            runtime.retune(name, period_s=period, by=self.by, reason=action.rationale)
            return f"period -> {period:g}s"
        if action.kind == "set_fuse":
            # on=1 pins fusion; on=0 clears the override back to the hub
            # default — the inverse of an adaptive flip is "stop insisting",
            # not "pin the opposite"
            on = bool(action.param("on"))
            runtime.hub.set_fuse_override(name, True if on else None)
            return f"fuse[{name}] -> {'on' if on else 'default'}"
        raise ValueError(f"unknown fleet action kind {action.kind!r}")


class _CooldownPlanner(Planner):
    """Shared base: turn symptoms into actions, one per loop, rate-limited.

    Deterministic by construction — symptoms are processed in sorted
    order and the cooldown table only depends on simulated time.
    """

    name = "fleet-planner"

    def __init__(self, cooldown_s: float) -> None:
        self.cooldown_s = cooldown_s
        self._last: Dict[Tuple[str, str], float] = {}

    def _ready(self, kind: str, target: str, now: float) -> bool:
        last = self._last.get((kind, target))
        return last is None or now - last >= self.cooldown_s

    def _mark(self, kind: str, target: str, now: float) -> None:
        self._last[(kind, target)] = now


# ---------------------------------------------------------------------------
# Health supervisor


class FleetHealthAnalyzer(Analyzer):
    """Diagnoses stuck, frozen, and veto-storming loops from telemetry."""

    name = "fleet-health-analyzer"

    def __init__(self, config: SupervisorConfig) -> None:
        self.config = config

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        cfg = self.config
        now = observation.time
        roster: Dict[str, Dict[str, object]] = observation.context["roster"]
        symptoms: List[Symptom] = []
        for name in sorted(roster):
            info = roster[name]
            # a deliberately stopped loop (operator stop()) is not a
            # patient: stuck detection targets loops that *claim* to be
            # running yet never iterate (the wedge/hang signature)
            if info["meta"] or info["quarantined"] or not info["running"]:
                continue
            period = float(info["period_s"])
            grace = cfg.heartbeat_factor * period
            started = info["started_at"]
            age_known = started is not None and now - float(started) > grace
            beat_age = observation.values.get(f"beat_age:{name}")
            if beat_age is None:
                # never seen in telemetry: stuck only once past the grace
                # period (a freshly added loop is not a patient yet)
                if age_known:
                    symptoms.append(
                        Symptom(f"stuck:{name}", 1.0, evidence="no heartbeat in window")
                    )
                continue
            if beat_age > grace:
                symptoms.append(
                    Symptom(
                        f"stuck:{name}",
                        1.0,
                        evidence=f"last heartbeat {beat_age:.0f}s ago (period {period:g}s)",
                    )
                )
                continue  # restart fixes frozen observations too
            staleness = observation.values.get(f"staleness:{name}")
            if staleness is not None and staleness > cfg.staleness_bound_s:
                symptoms.append(
                    Symptom(
                        f"frozen:{name}",
                        min(1.0, staleness / (4.0 * cfg.staleness_bound_s)),
                        evidence=f"staleness {staleness:.0f}s > bound {cfg.staleness_bound_s:g}s",
                    )
                )
            vetoes = observation.values.get(f"veto_delta:{name}", 0.0)
            # the cumulative veto counter resets with the loop instance, so
            # for one window after a restart the max-min delta still spans
            # pre-restart samples and would read as a storm — a freshly
            # healed loop is immune until the window rolls clean
            restarted = info.get("last_restart_at")
            contaminated = restarted is not None and now - float(restarted) < cfg.window_s
            if not contaminated and vetoes >= cfg.quarantine_vetoes:
                symptoms.append(
                    Symptom(
                        f"vetostorm:{name}",
                        min(1.0, vetoes / (4.0 * cfg.quarantine_vetoes)),
                        evidence=f"{vetoes:.0f} vetoes in window",
                    )
                )
        return AnalysisReport(now, self.name, tuple(symptoms))


class FleetHealthPlanner(_CooldownPlanner):
    """stuck/frozen → restart; vetostorm → quarantine (with cooldowns)."""

    name = "fleet-health-planner"

    def __init__(self, config: SupervisorConfig) -> None:
        super().__init__(config.restart_cooldown_s)
        self.config = config

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        now = report.time
        actions: List[Action] = []
        for symptom in sorted(report.symptoms, key=lambda s: s.name):
            cause, _, target = symptom.name.partition(":")
            if cause in ("stuck", "frozen"):
                if self._ready("restart", target, now):
                    self._mark("restart", target, now)
                    actions.append(
                        Action("restart_loop", target, rationale=symptom.evidence)
                    )
            elif cause == "vetostorm":
                if self._ready("quarantine", target, now):
                    self._mark("quarantine", target, now)
                    actions.append(
                        Action("quarantine_loop", target, rationale=symptom.evidence)
                    )
        return Plan(
            now,
            self.name,
            tuple(actions),
            rationale=f"{len(actions)} fleet-health repair(s)" if actions else "",
        )


def health_supervisor_spec(
    runtime: LoopRuntime, config: Optional[SupervisorConfig] = None, *, name: str = "meta-health"
) -> MetaLoopSpec:
    """The stuck/frozen/veto-storm supervisor as a declarative meta-loop.

    Monitor reads are ordinary queries over the fleet's self-telemetry:
    heartbeat presence is a binned ``count`` of ``loop_iteration_ms``
    per loop (the newest non-empty bin dates the last sign of life),
    frozen detection is ``last(loop_staleness_s)`` per loop, and veto
    storms are the window increase of ``loop_vetoes_total``.
    """
    cfg = config if config is not None else SupervisorConfig()
    w, step = cfg.window_s, cfg.heartbeat_step_s
    queries = (
        MonitorQuery("beat", f"count(loop_iteration_ms[{w:g}s] by {step:g}s) group by (loop)"),
        MonitorQuery("stale", f"last(loop_staleness_s[{w:g}s]) group by (loop)"),
        MonitorQuery("veto_hi", f"max(loop_vetoes_total[{w:g}s]) group by (loop)"),
        MonitorQuery("veto_lo", f"min(loop_vetoes_total[{w:g}s]) group by (loop)"),
    )

    def build(now: float, inputs) -> Optional[Observation]:
        values: Dict[str, float] = {}
        for series in inputs["beat"].series:
            loop = series.label("loop")
            if loop and series.times.size:
                # the newest non-empty bin ends at times[-1] + step
                values[f"beat_age:{loop}"] = now - (float(series.times[-1]) + step)
        for series in inputs["stale"].series:
            loop = series.label("loop")
            if loop and series.values.size:
                values[f"staleness:{loop}"] = float(series.values[-1])
        hi = {
            s.label("loop"): float(s.values[-1])
            for s in inputs["veto_hi"].series
            if s.values.size
        }
        for series in inputs["veto_lo"].series:
            loop = series.label("loop")
            if loop and series.values.size and loop in hi:
                values[f"veto_delta:{loop}"] = hi[loop] - float(series.values[-1])
        return Observation(
            now, name, values=values, context={"roster": _roster(runtime)}
        )

    return MetaLoopSpec(
        name=name,
        meta_kind="health",
        queries=queries,
        build_observation=build,
        analyzer_factory=lambda: FleetHealthAnalyzer(cfg),
        planner_factory=lambda: FleetHealthPlanner(cfg),
        executor_factory=lambda: FleetExecutor(runtime, by=name),
        period_s=cfg.period_s,
        # healing outranks every other supervisor: a restart claim on
        # ("loop", name) must preempt e.g. a tuning claim, not lose an
        # equal-priority arbitration while the patient stays wedged
        priority=cfg.priority + 1,
    )


# ---------------------------------------------------------------------------
# Tuning supervisor


class FleetTuningAnalyzer(Analyzer):
    """Flags loops whose measured iteration cost argues for a new period."""

    name = "fleet-tuning-analyzer"

    def __init__(self, config: SupervisorConfig) -> None:
        self.config = config

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        cfg = self.config
        roster: Dict[str, Dict[str, object]] = observation.context["roster"]
        symptoms: List[Symptom] = []
        metrics: Dict[str, float] = {}
        for name in sorted(roster):
            info = roster[name]
            if info["meta"] or info["quarantined"] or not info["running"]:
                continue
            cost = observation.values.get(f"cost:{name}")
            if cost is None:
                continue
            period = float(info["period_s"])
            base = float(info["base_period_s"])
            if cost > cfg.slow_iteration_ms and period < base * cfg.max_period_factor:
                symptoms.append(
                    Symptom(
                        f"overload:{name}",
                        min(1.0, cost / (4.0 * cfg.slow_iteration_ms)),
                        evidence=f"mean {cost:.1f}ms/iter at period {period:g}s",
                    )
                )
            elif cost < cfg.fast_iteration_ms and period > base:
                symptoms.append(
                    Symptom(
                        f"headroom:{name}",
                        0.5,
                        evidence=f"mean {cost:.1f}ms/iter, period {period:g}s > base {base:g}s",
                    )
                )
            else:
                continue
            metrics[f"period:{name}"] = period
            metrics[f"base:{name}"] = base
        return AnalysisReport(observation.time, self.name, tuple(symptoms), metrics=metrics)


class FleetTuningPlanner(_CooldownPlanner):
    """overload → slow the loop down; headroom → speed back toward base."""

    name = "fleet-tuning-planner"

    def __init__(self, config: SupervisorConfig) -> None:
        super().__init__(config.retune_cooldown_s)
        self.config = config

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        cfg = self.config
        now = report.time
        actions: List[Action] = []
        for symptom in sorted(report.symptoms, key=lambda s: s.name):
            cause, _, target = symptom.name.partition(":")
            if not self._ready("retune", target, now):
                continue
            period = report.metrics.get(f"period:{target}")
            base = report.metrics.get(f"base:{target}")
            if period is None or base is None:
                continue
            if cause == "overload":
                new_period = min(period * cfg.retune_factor, base * cfg.max_period_factor)
            else:
                new_period = max(period / cfg.retune_factor, base)
            if new_period == period:
                continue
            self._mark("retune", target, now)
            actions.append(
                Action(
                    "retune_loop",
                    target,
                    params={"period_s": new_period},
                    rationale=symptom.evidence,
                )
            )
        return Plan(
            now,
            self.name,
            tuple(actions),
            rationale=f"{len(actions)} retune(s)" if actions else "",
        )


def tuning_supervisor_spec(
    runtime: LoopRuntime, config: Optional[SupervisorConfig] = None, *, name: str = "meta-tuning"
) -> MetaLoopSpec:
    """The period-retuning supervisor: measured cost → schedule pressure."""
    cfg = config if config is not None else SupervisorConfig()
    queries = (
        MonitorQuery("cost", f"mean(loop_iteration_ms[{cfg.window_s:g}s]) group by (loop)"),
    )

    def build(now: float, inputs) -> Optional[Observation]:
        values: Dict[str, float] = {}
        for series in inputs["cost"].series:
            loop = series.label("loop")
            if loop and series.values.size:
                values[f"cost:{loop}"] = float(series.values[-1])
        return Observation(
            now, name, values=values, context={"roster": _roster(runtime)}
        )

    return MetaLoopSpec(
        name=name,
        meta_kind="tuning",
        queries=queries,
        build_observation=build,
        analyzer_factory=lambda: FleetTuningAnalyzer(cfg),
        planner_factory=lambda: FleetTuningPlanner(cfg),
        executor_factory=lambda: FleetExecutor(runtime, by=name),
        period_s=cfg.period_s,
        priority=cfg.priority,
    )


# ---------------------------------------------------------------------------
# Adaptive-fusion supervisor


class FusionMonitor(Monitor):
    """Observes the hub's per-shape tick-sharing statistics.

    The hub is itself control-plane state, so this monitor reads it
    directly rather than through the store — the one supervisor whose
    subject is the serving layer instead of the loops.
    """

    name = "fusion-monitor"

    def __init__(self, runtime: LoopRuntime, name: str) -> None:
        self.runtime = runtime
        self.source = name

    def observe(self, now: float) -> Optional[Observation]:
        hub = self.runtime.hub
        values: Dict[str, float] = {}
        shapes: Dict[str, Dict[str, float]] = {}
        stats = hub.sharing_stats()
        for shape in sorted(stats, key=lambda s: s.to_expr()):
            row = stats[shape]
            expr = shape.to_expr()
            values[f"sharing:{expr}"] = row["mean_narrow"]
            shapes[expr] = {
                "ticks": row["ticks"],
                "fused": row["fused"],
                "override": float(hub.fuse_overrides.get(shape, -1.0)),
            }
        return Observation(now, self.source, values=values, context={"shapes": shapes})


class FusionAnalyzer(Analyzer):
    """Finds shapes whose measured fan-in justifies flipping fusion."""

    name = "fusion-analyzer"

    def __init__(self, config: SupervisorConfig) -> None:
        self.config = config

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        cfg = self.config
        shapes: Dict[str, Dict[str, float]] = observation.context["shapes"]
        symptoms: List[Symptom] = []
        for expr in sorted(shapes):
            info = shapes[expr]
            sharing = observation.values.get(f"sharing:{expr}", 0.0)
            if info["ticks"] < cfg.fuse_min_ticks:
                continue
            if not info["fused"] and sharing >= cfg.fuse_min_sharing:
                symptoms.append(
                    Symptom(
                        f"fusible:{expr}",
                        min(1.0, sharing / (4.0 * cfg.fuse_min_sharing)),
                        evidence=f"{sharing:.1f} narrow queries/tick share this shape",
                    )
                )
            elif info["override"] == 1.0 and sharing < 2.0:
                symptoms.append(
                    Symptom(
                        f"unfusible:{expr}",
                        0.5,
                        evidence=f"sharing fell to {sharing:.1f}/tick",
                    )
                )
        return AnalysisReport(observation.time, self.name, tuple(symptoms))


class FusionPlanner(Planner):
    """fusible → set_fuse on; unfusible → clear back to hub default."""

    name = "fusion-planner"

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        actions: List[Action] = []
        for symptom in sorted(report.symptoms, key=lambda s: s.name):
            cause, _, expr = symptom.name.partition(":")
            on = 1.0 if cause == "fusible" else 0.0
            actions.append(
                Action("set_fuse", expr, params={"on": on}, rationale=symptom.evidence)
            )
        return Plan(
            report.time,
            self.name,
            tuple(actions),
            rationale=f"{len(actions)} fusion flip(s)" if actions else "",
        )


def fusion_supervisor_spec(
    runtime: LoopRuntime, config: Optional[SupervisorConfig] = None, *, name: str = "meta-fusion"
) -> MetaLoopSpec:
    """The adaptive-fusion supervisor over hub tick-sharing statistics."""
    cfg = config if config is not None else SupervisorConfig()
    return MetaLoopSpec(
        name=name,
        meta_kind="fusion",
        monitor_factory=lambda rt: FusionMonitor(rt, name),
        analyzer_factory=lambda: FusionAnalyzer(cfg),
        planner_factory=FusionPlanner,
        executor_factory=lambda: FleetExecutor(runtime, by=name),
        period_s=cfg.period_s,
        priority=cfg.priority,
    )


# ---------------------------------------------------------------------------
# Wiring


_SPEC_BUILDERS = {
    "health": health_supervisor_spec,
    "tuning": tuning_supervisor_spec,
    "fusion": fusion_supervisor_spec,
}


def attach_supervisors(
    runtime: LoopRuntime,
    config: Optional[SupervisorConfig] = None,
    *,
    kinds: Sequence[str] = ("health", "tuning", "fusion"),
    start: bool = True,
) -> List[LoopHandle]:
    """Register (and by default start) the supervisor family on a runtime."""
    cfg = config if config is not None else SupervisorConfig()
    handles = []
    for kind in kinds:
        try:
            builder = _SPEC_BUILDERS[kind]
        except KeyError:
            raise ValueError(
                f"unknown supervisor kind {kind!r}; choose from {sorted(_SPEC_BUILDERS)}"
            ) from None
        handles.append(runtime.add(builder(runtime, cfg), start=start))
    return handles
