"""MAPE-K autonomy loops for MODA — the paper's primary contribution.

This package provides the formalized loop machinery the paper proposes:

* typed contracts between Monitor, Analyze, Plan, and Execute components
  (:mod:`~repro.core.types`, :mod:`~repro.core.component`) so components
  are interchangeable (methodology question ii),
* a :class:`~repro.core.knowledge.KnowledgeBase` with plan-outcome
  assessment and refinement (the K, including "assess the Knowledge
  about the success of the Plan"),
* the :class:`~repro.core.loop.MAPEKLoop` engine with per-phase latency
  modelling,
* the four decentralization patterns of Fig. 2
  (:mod:`~repro.core.patterns`),
* decision confidence measures and safety guards (Section IV / trust),
* human-in-the-loop and human-on-the-loop adapters,
* an audit trail with explanations,
* the unified loop runtime (:mod:`~repro.core.runtime`): declarative
  :class:`~repro.core.runtime.LoopSpec` descriptions instantiated and
  multiplexed by a :class:`~repro.core.runtime.LoopRuntime` with fused
  query-backed monitoring, cross-loop plan arbitration
  (:mod:`~repro.core.arbiter`), and per-loop self-telemetry.
"""

from repro.core.types import (
    Action,
    AnalysisReport,
    ExecutionResult,
    LoopIteration,
    Observation,
    Plan,
    Symptom,
)
from repro.core.component import Analyzer, Assessor, Executor, Monitor, Planner
from repro.core.knowledge import KnowledgeBase, PlanOutcome
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.bus import MessageBus
from repro.core.guards import (
    ActionBudgetGuard,
    ActionKindGuard,
    ConfidenceGuard,
    Guard,
    RateLimitGuard,
)
from repro.core.confidence import combined_confidence, interval_confidence, success_confidence
from repro.core.audit import AuditEvent, AuditTrail
from repro.core.humanloop import (
    ContingencyPolicy,
    HumanInTheLoopExecutor,
    HumanOnTheLoopNotifier,
    HumanResponseModel,
)
from repro.core.persistence import load_knowledge, save_knowledge
from repro.core.registry import ComponentRegistry
from repro.core.arbiter import ArbiterGuard, PlanArbiter
from repro.core.runtime import (
    LoopHandle,
    LoopRuntime,
    LoopSpec,
    MonitorQuery,
    QueryHub,
    QueryMonitor,
    RuntimeConfig,
)
from repro.core.patterns import (
    CoordinatedController,
    DriftingElement,
    HierarchicalController,
    MasterWorkerController,
    PatternController,
    classical_loop_for,
)

__all__ = [
    "Action",
    "ActionBudgetGuard",
    "ActionKindGuard",
    "AnalysisReport",
    "Analyzer",
    "ArbiterGuard",
    "Assessor",
    "AuditEvent",
    "AuditTrail",
    "ComponentRegistry",
    "ConfidenceGuard",
    "ContingencyPolicy",
    "CoordinatedController",
    "DriftingElement",
    "ExecutionResult",
    "Executor",
    "Guard",
    "HierarchicalController",
    "HumanInTheLoopExecutor",
    "HumanOnTheLoopNotifier",
    "HumanResponseModel",
    "KnowledgeBase",
    "LoopHandle",
    "LoopIteration",
    "LoopRuntime",
    "LoopSpec",
    "MAPEKLoop",
    "MasterWorkerController",
    "MessageBus",
    "Monitor",
    "MonitorQuery",
    "Observation",
    "PatternController",
    "PhaseLatency",
    "Plan",
    "PlanArbiter",
    "PlanOutcome",
    "Planner",
    "QueryHub",
    "QueryMonitor",
    "RateLimitGuard",
    "RuntimeConfig",
    "Symptom",
    "classical_loop_for",
    "combined_confidence",
    "interval_confidence",
    "load_knowledge",
    "save_knowledge",
    "success_confidence",
]
