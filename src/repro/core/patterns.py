"""The four MAPE-K design patterns of Fig. 2, made measurable.

All four patterns regulate the same concrete task so their trade-offs
can be compared quantitatively (experiment E2): ``N`` drifting scalar
elements (think per-node power under a cluster-wide cap) must be held
at a global target, per-element fair share, despite a persistent upward
disturbance.

=================  =============================================  ==========
Pattern            Structure                                      Fig. 2
=================  =============================================  ==========
classical          one full MAPE-K loop per (single) element      (a)
master-worker      per-element Monitor/Execute, central A+P        (b)
coordinated        full local loops + peer gossip                  (c)
hierarchical       group controllers + slow top-level rebalancer   (d)
=================  =============================================  ==========

What the paper claims, and what the benchmark measures:

* master-worker "suffers from limited scalability" — its decision
  latency grows with N (central analyze/plan cost) and all traffic hits
  one point;
* coordinated has "potential of good scalability and robustness, but
  decentralized Plan policies may suffer from instability" — constant
  local latency, but the overlapping compensation term (``comp_gain``)
  over stale gossip causes oscillation when pushed;
* hierarchical "aim[s] to improve scalability without compromising
  stability" — bounded group size keeps latency constant, and only the
  slow top level moves global targets.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bus import MessageBus
from repro.core.component import Analyzer, Executor, Monitor, Planner
from repro.core.coordination import NeighborView, ring_neighbors
from repro.core.knowledge import KnowledgeBase
from repro.core.loop import MAPEKLoop, PhaseLatency
from repro.core.types import Action, AnalysisReport, ExecutionResult, Observation, Plan
from repro.sim.engine import Engine, PeriodicTask


class DriftingElement:
    """One managed element: scalar state under persistent disturbance."""

    def __init__(
        self,
        engine: Engine,
        element_id: str,
        rng: np.random.Generator,
        *,
        initial: float = 100.0,
        drift_mu: float = 0.3,
        drift_std: float = 1.0,
        disturb_period_s: float = 1.0,
    ) -> None:
        if disturb_period_s <= 0:
            raise ValueError("disturb_period_s must be positive")
        self.engine = engine
        self.element_id = element_id
        self.rng = rng
        self.x = float(initial)
        self.drift_mu = drift_mu
        self.drift_std = drift_std
        self.disturb_period_s = disturb_period_s
        self.actuations = 0
        self._task: Optional[PeriodicTask] = None

    def start_disturbance(self) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("disturbance already running")
        self._task = self.engine.every(
            self.disturb_period_s, self._disturb, label=f"disturb-{self.element_id}"
        )

    def stop_disturbance(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _disturb(self) -> None:
        self.x += float(self.rng.normal(self.drift_mu, self.drift_std))

    def read(self) -> float:
        return self.x

    def actuate(self, delta: float) -> None:
        self.x += float(delta)
        self.actuations += 1


class PatternController(abc.ABC):
    """Common interface over the four pattern implementations."""

    pattern_name: str = "pattern"

    def __init__(self, engine: Engine, elements: Sequence[DriftingElement], target_total: float) -> None:
        if not elements:
            raise ValueError("need at least one element")
        self.engine = engine
        self.elements = list(elements)
        self.target_total = float(target_total)
        self.cycles = 0

    @abc.abstractmethod
    def start(self) -> None: ...

    @abc.abstractmethod
    def stop(self) -> None: ...

    @abc.abstractmethod
    def nominal_decision_latency(self) -> float:
        """Observation-to-actuation delay under this pattern's structure."""

    @abc.abstractmethod
    def messages_sent(self) -> int: ...

    def aggregate(self) -> float:
        return sum(e.read() for e in self.elements)

    def fair_share(self) -> float:
        return self.target_total / len(self.elements)

    def control_error(self) -> float:
        """Absolute aggregate error right now."""
        return abs(self.aggregate() - self.target_total)


# --------------------------------------------------------------------------
# (a) classical: a genuine MAPEKLoop over a single element
# --------------------------------------------------------------------------


class _ElementMonitor(Monitor):
    def __init__(self, element: DriftingElement) -> None:
        self.element = element
        self.name = f"monitor-{element.element_id}"

    def observe(self, now: float) -> Observation:
        return Observation(now, self.name, values={"x": self.element.read()})


class _SetpointAnalyzer(Analyzer):
    name = "setpoint-analyzer"

    def __init__(self, setpoint: float) -> None:
        self.setpoint = setpoint

    def analyze(self, observation: Observation, knowledge: KnowledgeBase) -> AnalysisReport:
        error = self.setpoint - observation.values["x"]
        return AnalysisReport(
            observation.time, self.name, metrics={"error": error}, confidence=1.0
        )


class _ProportionalPlanner(Planner):
    name = "proportional-planner"

    def __init__(self, element_id: str, gain: float = 0.5, deadband: float = 0.5) -> None:
        self.element_id = element_id
        self.gain = gain
        self.deadband = deadband

    def plan(self, report: AnalysisReport, knowledge: KnowledgeBase) -> Plan:
        error = report.metrics["error"]
        if abs(error) <= self.deadband:
            return Plan(report.time, self.name)
        action = Action(
            "adjust", self.element_id, params={"delta": self.gain * error},
            rationale=f"error={error:.2f}",
        )
        return Plan(report.time, self.name, actions=(action,), rationale=action.rationale)


class _ElementExecutor(Executor):
    def __init__(self, element: DriftingElement) -> None:
        self.element = element
        self.name = f"executor-{element.element_id}"

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        results = []
        for action in plan.actions:
            self.element.actuate(action.param("delta"))
            results.append(ExecutionResult(action, plan.time, honored=True))
        return results


def classical_loop_for(
    engine: Engine,
    element: DriftingElement,
    setpoint: float,
    *,
    period_s: float = 10.0,
    gain: float = 0.5,
    deadband: float = 0.5,
    phase_latency: PhaseLatency = PhaseLatency(),
) -> MAPEKLoop:
    """Fig. 2a: one self-contained MAPE-K loop managing one element."""
    return MAPEKLoop(
        engine,
        f"classical-{element.element_id}",
        monitor=_ElementMonitor(element),
        analyzer=_SetpointAnalyzer(setpoint),
        planner=_ProportionalPlanner(element.element_id, gain, deadband),
        executor=_ElementExecutor(element),
        period_s=period_s,
        phase_latency=phase_latency,
    )


# --------------------------------------------------------------------------
# (b) master-worker
# --------------------------------------------------------------------------


class MasterWorkerController(PatternController):
    """Decentralized Monitor/Execute, centralized Analyze+Plan.

    Per cycle: every worker ships its observation to the master (N
    messages), the master plans globally after a per-element analysis
    cost (the scalability bottleneck), then ships one action per element
    back (N messages).  Actions therefore land ``2·hop + c·N`` after the
    observations were taken.
    """

    pattern_name = "master-worker"

    def __init__(
        self,
        engine: Engine,
        elements: Sequence[DriftingElement],
        target_total: float,
        *,
        period_s: float = 10.0,
        gain: float = 0.5,
        bus: Optional[MessageBus] = None,
        central_cost_per_element_s: float = 0.002,
    ) -> None:
        super().__init__(engine, elements, target_total)
        self.period_s = period_s
        self.gain = gain
        self.bus = bus if bus is not None else MessageBus(engine, latency_s=0.01)
        self.central_cost_per_element_s = central_cost_per_element_s
        self.central_alive = True
        self._task: Optional[PeriodicTask] = None
        self._pending: Dict[int, float] = {}

    def start(self) -> None:
        self._task = self.engine.every(self.period_s, self._cycle, label="mw-cycle")

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def kill_central(self) -> None:
        """Master failure: all control stops (the robustness weak point)."""
        self.central_alive = False

    def _cycle(self) -> None:
        if not self.central_alive:
            return
        self.cycles += 1
        self._pending = {}
        expected = len(self.elements)
        for idx, element in enumerate(self.elements):
            self.bus.send(
                (idx, element.read()),
                lambda payload, expected=expected: self._receive(payload, expected),
            )

    def _receive(self, payload, expected: int) -> None:
        idx, value = payload
        self._pending[idx] = value
        if len(self._pending) == expected:
            snapshot = dict(self._pending)
            cost = self.central_cost_per_element_s * expected
            self.engine.schedule(cost, self._plan_and_dispatch, snapshot, label="mw-plan")

    def _plan_and_dispatch(self, snapshot: Dict[int, float]) -> None:
        if not self.central_alive:
            return
        fair = self.fair_share()
        for idx, observed in snapshot.items():
            delta = self.gain * (fair - observed)
            element = self.elements[idx]
            self.bus.send(delta, lambda d, e=element: e.actuate(d))

    def nominal_decision_latency(self) -> float:
        return 2 * self.bus.latency_s + self.central_cost_per_element_s * len(self.elements)

    def messages_sent(self) -> int:
        return self.bus.messages_sent


# --------------------------------------------------------------------------
# (c) fully decentralized, coordinated
# --------------------------------------------------------------------------


class CoordinatedController(PatternController):
    """Full local loops with ring gossip (Fig. 2c).

    Each element regulates itself to the fair share (``gain``) and
    additionally compensates the *global* error it infers from its
    stale neighborhood view (``comp_gain``).  Because all elements
    compensate the same perceived error concurrently, large
    ``comp_gain`` over-corrects in aggregate — the pattern's documented
    instability mode.
    """

    pattern_name = "coordinated"

    def __init__(
        self,
        engine: Engine,
        elements: Sequence[DriftingElement],
        target_total: float,
        *,
        period_s: float = 10.0,
        gain: float = 0.5,
        comp_gain: float = 0.3,
        neighbors_k: int = 1,
        bus: Optional[MessageBus] = None,
        local_cost_s: float = 0.002,
    ) -> None:
        super().__init__(engine, elements, target_total)
        self.period_s = period_s
        self.gain = gain
        self.comp_gain = comp_gain
        self.neighbors_k = neighbors_k
        self.bus = bus if bus is not None else MessageBus(engine, latency_s=0.01)
        self.local_cost_s = local_cost_s
        n = len(elements)
        self.alive = [True] * n
        self.views = [NeighborView() for _ in range(n)]
        self._neighbors = [ring_neighbors(n, i, neighbors_k) for i in range(n)]
        self._tasks: List[PeriodicTask] = []

    def start(self) -> None:
        for i in range(len(self.elements)):
            self._tasks.append(
                self.engine.every(self.period_s, lambda i=i: self._local_cycle(i), label=f"coord-{i}")
            )

    def stop(self) -> None:
        for t in self._tasks:
            t.stop()

    def kill_local(self, i: int) -> None:
        """Local controller failure: only element ``i`` loses control."""
        self.alive[i] = False

    def _local_cycle(self, i: int) -> None:
        if not self.alive[i]:
            return
        self.cycles += 1
        now = self.engine.now
        x = self.elements[i].read()
        # gossip own state to ring neighbours
        for j in self._neighbors[i]:
            self.bus.send(
                (i, x, now), lambda payload, j=j: self.views[j].update(payload[0], payload[1], payload[2])
            )
        # plan from the (stale) local view
        fair = self.fair_share()
        nbhd = [x] + self.views[i].known_values()
        est_mean = sum(nbhd) / len(nbhd)
        delta = self.gain * (fair - x) + self.comp_gain * (fair - est_mean)
        self.engine.schedule(
            self.local_cost_s, self.elements[i].actuate, delta, label=f"coord-act-{i}"
        )

    def nominal_decision_latency(self) -> float:
        return self.local_cost_s  # control path is purely local

    def messages_sent(self) -> int:
        return self.bus.messages_sent

    def alive_fraction(self) -> float:
        return sum(self.alive) / len(self.alive)


# --------------------------------------------------------------------------
# (d) hierarchical
# --------------------------------------------------------------------------


class HierarchicalController(PatternController):
    """Group controllers under a slow top-level rebalancer (Fig. 2d).

    Each group head runs master-worker over its ``group_size`` elements
    toward its group target; the top level re-divides the global target
    over *alive* groups every ``top_period_s`` (separation of concerns
    and time scales).  Group-local latency is bounded by the group size,
    independent of N.
    """

    pattern_name = "hierarchical"

    def __init__(
        self,
        engine: Engine,
        elements: Sequence[DriftingElement],
        target_total: float,
        *,
        group_size: int = 8,
        period_s: float = 10.0,
        top_period_s: float = 50.0,
        gain: float = 0.5,
        bus: Optional[MessageBus] = None,
        local_cost_per_element_s: float = 0.002,
    ) -> None:
        super().__init__(engine, elements, target_total)
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.group_size = group_size
        self.period_s = period_s
        self.top_period_s = top_period_s
        self.gain = gain
        self.bus = bus if bus is not None else MessageBus(engine, latency_s=0.01)
        self.local_cost_per_element_s = local_cost_per_element_s
        self.groups: List[List[int]] = [
            list(range(start, min(start + group_size, len(elements))))
            for start in range(0, len(elements), group_size)
        ]
        self.group_alive = [True] * len(self.groups)
        self.group_targets = [
            self.target_total * len(g) / len(elements) for g in self.groups
        ]
        self._tasks: List[PeriodicTask] = []

    def start(self) -> None:
        for gi in range(len(self.groups)):
            self._tasks.append(
                self.engine.every(self.period_s, lambda gi=gi: self._group_cycle(gi), label=f"hier-g{gi}")
            )
        self._tasks.append(self.engine.every(self.top_period_s, self._top_cycle, label="hier-top"))

    def stop(self) -> None:
        for t in self._tasks:
            t.stop()

    def kill_group_head(self, gi: int) -> None:
        """Group-head failure: only that group loses local control."""
        self.group_alive[gi] = False

    def _group_cycle(self, gi: int) -> None:
        if not self.group_alive[gi]:
            return
        self.cycles += 1
        members = self.groups[gi]
        # collect member states (one message per member); plan once the
        # last observation arrives, after the per-element analysis cost
        snapshot: Dict[int, float] = {}
        expected = len(members)
        cost = self.local_cost_per_element_s * expected

        def receive(payload) -> None:
            snapshot[payload[0]] = payload[1]
            if len(snapshot) == expected:
                self.engine.schedule(
                    cost, self._group_plan, gi, dict(snapshot), label=f"hier-plan-{gi}"
                )

        for i in members:
            self.bus.send((i, self.elements[i].read()), receive)

    def _group_plan(self, gi: int, snapshot: Dict[int, float]) -> None:
        if not self.group_alive[gi] or not snapshot:
            return
        members = self.groups[gi]
        per_member_target = self.group_targets[gi] / len(members)
        for i, observed in snapshot.items():
            delta = self.gain * (per_member_target - observed)
            element = self.elements[i]
            self.bus.send(delta, lambda d, e=element: e.actuate(d))

    def _top_cycle(self) -> None:
        # group sums reported upward (one message per alive group)
        alive_groups = [gi for gi in range(len(self.groups)) if self.group_alive[gi]]
        if not alive_groups:
            return
        alive_elements = sum(len(self.groups[gi]) for gi in alive_groups)
        for gi in alive_groups:
            group_sum = sum(self.elements[i].read() for i in self.groups[gi])
            self.bus.send((gi, group_sum), lambda p: None)  # reporting traffic
            # fair share of the global target over alive capacity
            self.group_targets[gi] = self.target_total * len(self.groups[gi]) / alive_elements

    def nominal_decision_latency(self) -> float:
        return 2 * self.bus.latency_s + self.local_cost_per_element_s * self.group_size

    def messages_sent(self) -> int:
        return self.bus.messages_sent
