"""Abstract MAPE-K components.

Each phase is one small interface over the typed contracts in
:mod:`repro.core.types`.  Implementations live next to their managed
systems (see :mod:`repro.loops`); the loop engine and patterns only
depend on these ABCs — that separation is methodology question i
("high-level components with distinct responsibilities").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.core.types import AnalysisReport, ExecutionResult, Observation, Plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.knowledge import KnowledgeBase


class Monitor(abc.ABC):
    """Collects data about an element of interest."""

    name: str = "monitor"

    @abc.abstractmethod
    def observe(self, now: float) -> Optional[Observation]:
        """Snapshot the managed element; ``None`` when nothing to report."""


class Analyzer(abc.ABC):
    """Turns observations into diagnoses and forecasts."""

    name: str = "analyzer"

    @abc.abstractmethod
    def analyze(self, observation: Observation, knowledge: "KnowledgeBase") -> AnalysisReport:
        """Interpret the observation against Knowledge."""


class Planner(abc.ABC):
    """Chooses a response given the analysis."""

    name: str = "planner"

    @abc.abstractmethod
    def plan(self, report: AnalysisReport, knowledge: "KnowledgeBase") -> Plan:
        """Produce a (possibly empty) plan."""


class Executor(abc.ABC):
    """Carries out planned actions through response hooks."""

    name: str = "executor"

    @abc.abstractmethod
    def execute(self, plan: Plan, knowledge: "KnowledgeBase") -> list[ExecutionResult]:
        """Apply every action; report per-action honored/refused results."""


class Assessor(abc.ABC):
    """Closes the loop on Knowledge: scores past plans against reality.

    Runs at the start of each cycle, before new analysis — the paper's
    "Assess the Knowledge about the success of the Plan and refine the
    Knowledge through subsequent Monitoring".
    """

    name: str = "assessor"

    @abc.abstractmethod
    def assess(self, observation: Observation, knowledge: "KnowledgeBase") -> None:
        """Update plan-outcome records / models from the new observation."""
