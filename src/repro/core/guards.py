"""Safety guards — the trust controls of methodology question iv.

Guards sit between Plan and Execute.  Each returns the filtered plan and
the list of vetoed actions, so the loop can audit what was blocked and
why.  The paper's concrete proposal — "limits on the number and overall
time of extensions for a single application" — is
:class:`ActionBudgetGuard`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Set, Tuple

from repro.core.knowledge import KnowledgeBase
from repro.core.types import Action, Plan


class Guard(abc.ABC):
    """Plan filter; implementations must be stateless or self-contained."""

    name: str = "guard"

    @abc.abstractmethod
    def filter(
        self, plan: Plan, knowledge: KnowledgeBase, now: float
    ) -> Tuple[Plan, List[Action]]:
        """Return ``(filtered_plan, vetoed_actions)``."""


class ActionBudgetGuard(Guard):
    """Per-target budget on action count and cumulative parameter amount.

    ``amount_param`` names the Action parameter whose sum is budgeted
    (e.g. ``extra_s`` for walltime extensions).  Exhausted budgets veto
    further actions for that target.
    """

    name = "action-budget"

    def __init__(
        self,
        *,
        kinds: Optional[Set[str]] = None,
        max_actions_per_target: int = 3,
        max_amount_per_target: float = float("inf"),
        amount_param: str = "extra_s",
    ) -> None:
        if max_actions_per_target < 0:
            raise ValueError("max_actions_per_target must be >= 0")
        if max_amount_per_target < 0:
            raise ValueError("max_amount_per_target must be >= 0")
        self.kinds = kinds
        self.max_actions_per_target = max_actions_per_target
        self.max_amount_per_target = max_amount_per_target
        self.amount_param = amount_param
        self._counts: Dict[str, int] = {}
        self._amounts: Dict[str, float] = {}

    def _applies(self, action: Action) -> bool:
        return self.kinds is None or action.kind in self.kinds

    def filter(self, plan, knowledge, now):
        vetoed: List[Action] = []
        for action in plan.actions:
            if not self._applies(action):
                continue
            count = self._counts.get(action.target, 0)
            amount = self._amounts.get(action.target, 0.0)
            requested = action.param(self.amount_param)
            if count >= self.max_actions_per_target:
                vetoed.append(action)
            elif amount + requested > self.max_amount_per_target:
                vetoed.append(action)
            else:
                self._counts[action.target] = count + 1
                self._amounts[action.target] = amount + requested
        return plan.without(vetoed), vetoed

    def spent(self, target: str) -> Tuple[int, float]:
        """Budget consumed by a target: ``(actions, amount)``."""
        return self._counts.get(target, 0), self._amounts.get(target, 0.0)


class RateLimitGuard(Guard):
    """Minimum interval between executed actions per (kind, target)."""

    name = "rate-limit"

    def __init__(self, min_interval_s: float = 300.0) -> None:
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        self.min_interval_s = min_interval_s
        self._last: Dict[Tuple[str, str], float] = {}

    def filter(self, plan, knowledge, now):
        vetoed: List[Action] = []
        for action in plan.actions:
            key = (action.kind, action.target)
            last = self._last.get(key)
            if last is not None and now - last < self.min_interval_s:
                vetoed.append(action)
            else:
                self._last[key] = now
        return plan.without(vetoed), vetoed


class ConfidenceGuard(Guard):
    """Blocks whole plans below a confidence threshold (Section IV).

    Confidence gating is what lets the site run the loop autonomously:
    uncertain analyses produce notifications, not actions.
    """

    name = "confidence"

    def __init__(self, min_confidence: float = 0.5) -> None:
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        self.min_confidence = min_confidence

    def filter(self, plan, knowledge, now):
        if plan.confidence >= self.min_confidence or plan.empty:
            return plan, []
        return plan.without(list(plan.actions)), list(plan.actions)


class ActionKindGuard(Guard):
    """Whitelist of permitted action kinds (site deployment policy)."""

    name = "action-kind"

    def __init__(self, allowed: Set[str]) -> None:
        if not allowed:
            raise ValueError("allowed kinds must be non-empty")
        self.allowed = set(allowed)

    def filter(self, plan, knowledge, now):
        vetoed = [a for a in plan.actions if a.kind not in self.allowed]
        return plan.without(vetoed), vetoed
