"""Typed contracts between MAPE-K components.

These dataclasses are the "interfaces or data formats [that] would
enable those components to be interchangeable" (methodology question
ii): any Monitor can feed any Analyzer because both speak
:class:`Observation`; any Planner output can be vetted by guards and
executed by any Executor because it is a :class:`Plan` of
:class:`Action` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Observation:
    """Output of the Monitor phase: a timestamped snapshot.

    ``values`` carries numeric signals; ``context`` carries structured
    side information (job state, raw markers, topology) the analyzer may
    need.  Monitors should keep ``values`` flat and unit-documented.
    """

    time: float
    source: str
    values: Mapping[str, float] = field(default_factory=dict)
    context: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Symptom:
    """A named condition the Analyze phase diagnosed."""

    name: str
    severity: float  # 0..1
    evidence: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")


@dataclass(frozen=True)
class AnalysisReport:
    """Output of the Analyze phase.

    ``confidence`` quantifies how much the Plan phase should trust the
    diagnosis/forecast (Section IV's requirement for moving beyond
    human-in-the-loop).  ``metrics`` carries derived quantities such as
    forecast ETA and interval bounds.
    """

    time: float
    source: str
    symptoms: Tuple[Symptom, ...] = ()
    metrics: Mapping[str, float] = field(default_factory=dict)
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")

    def has_symptom(self, name: str) -> bool:
        return any(s.name == name for s in self.symptoms)

    def symptom(self, name: str) -> Optional[Symptom]:
        for s in self.symptoms:
            if s.name == name:
                return s
        return None


@dataclass(frozen=True)
class Action:
    """One planned response, addressed to an actuator by ``kind``."""

    kind: str
    target: str
    params: Mapping[str, float] = field(default_factory=dict)
    rationale: str = ""

    def param(self, key: str, default: float = 0.0) -> float:
        return float(self.params.get(key, default))


@dataclass(frozen=True)
class Plan:
    """Output of the Plan phase: ordered actions plus meta-information."""

    time: float
    source: str
    actions: Tuple[Action, ...] = ()
    confidence: float = 1.0
    rationale: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")

    @property
    def empty(self) -> bool:
        return not self.actions

    def without(self, dropped: "List[Action]") -> "Plan":
        """A copy with ``dropped`` actions removed (guard support)."""
        remaining = tuple(a for a in self.actions if a not in dropped)
        return Plan(self.time, self.source, remaining, self.confidence, self.rationale)


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one action.

    ``honored`` distinguishes "the actuator accepted" from "the actuator
    refused" — the paper stresses the loop "needs awareness of whether
    or not the request was honored by the scheduler".
    """

    action: Action
    time: float
    honored: bool
    detail: str = ""
    response: Mapping[str, float] = field(default_factory=dict)


@dataclass
class LoopIteration:
    """Record of one full MAPE-K cycle (knowledge + audit payload).

    Timestamps separate the three moments that matter for staleness
    accounting: ``t_monitor`` (when the Monitor phase ran),
    ``t_observation`` (the time the observed data refers to — usually
    equal to ``t_monitor``, but a telemetry-backed monitor may serve a
    slightly older snapshot), and ``t_execute`` (when the Execute phase
    actually actuated).  ``staleness`` — how old the observation was at
    actuation time — is derivable everywhere instead of being
    approximated by :attr:`PhaseLatency.decision_delay`.
    """

    index: int
    t_monitor: float
    observation: Optional[Observation] = None
    report: Optional[AnalysisReport] = None
    plan: Optional[Plan] = None
    results: List[ExecutionResult] = field(default_factory=list)
    vetoed: List[Action] = field(default_factory=list)
    t_observation: Optional[float] = None
    t_execute: Optional[float] = None
    t_complete: Optional[float] = None
    wall_ms: float = 0.0  # host CPU time spent in this cycle's callbacks

    @property
    def latency(self) -> Optional[float]:
        """Monitor-to-done latency of this cycle."""
        if self.t_complete is None:
            return None
        return self.t_complete - self.t_monitor

    @property
    def staleness(self) -> Optional[float]:
        """Age of the observation when the Execute phase ran.

        ``None`` until the cycle reaches Execute (or when it never
        does — empty plans are not actuated, so they have no decision
        staleness).
        """
        if self.t_execute is None or self.t_observation is None:
            return None
        return self.t_execute - self.t_observation

    @property
    def acted(self) -> bool:
        return bool(self.results)
