"""Cross-loop plan arbitration.

Many concurrent autonomy loops share actuation targets: the Maintenance
and Scheduler cases both checkpoint jobs, two QoS loops may shape the
same tenant, partition-scoped misconfig loops can overlap.  Left
uncoordinated, loops fight — the instability risk the paper's Fig. 2c
discussion raises for decentralized patterns.

:class:`PlanArbiter` is the control plane's conflict resolver.  Every
non-advisory action a loop plans claims the **resource keys** it
touches (``(domain, target)`` pairs, e.g. ``("job", "j042")``); a claim
is held for a TTL.  A second loop planning against a held key within the
TTL loses by *priority-or-veto*: if its priority does not exceed the
claim holder's, the action is vetoed — recorded in the loop's iteration,
counted, and written to the :class:`~repro.core.audit.AuditTrail` with
phase ``"arbitrate"`` so operators can see every suppressed actuation.
A strictly higher-priority loop overrides the claim (and that preemption
is audited too).

The arbiter plugs into the normal guard chain via :class:`ArbiterGuard`,
which the :class:`~repro.core.runtime.LoopRuntime` appends after the
loop's own guards — trust controls first, coordination last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.audit import AuditTrail
from repro.core.guards import Guard
from repro.core.knowledge import KnowledgeBase
from repro.core.types import Action, Plan

#: ``(domain, target)`` — the unit of contention between loops.
ResourceKey = Tuple[str, str]

#: Action kinds that never actuate anything and therefore never conflict.
ADVISORY_KINDS = frozenset({"notify_user"})

#: Default domain of each built-in action kind; unknown kinds fall back
#: to the generic ``"target"`` domain so they still collide on equal
#: target strings.
KIND_DOMAINS: Dict[str, str] = {
    "request_extension": "job",
    "signal_checkpoint": "job",
    "fix_threads": "job",
    "fix_library": "job",
    "set_qos_rate": "tenant",
    "avoid_osts": "writer",
}


def default_resource_keys(action: Action) -> Tuple[ResourceKey, ...]:
    """Resource keys an action contends on; empty for advisory kinds."""
    if action.kind in ADVISORY_KINDS:
        return ()
    return ((KIND_DOMAINS.get(action.kind, "target"), action.target),)


@dataclass
class Claim:
    """One loop's hold on a resource key."""

    loop: str
    priority: int
    time: float
    expires: float
    kind: str


class PlanArbiter:
    """Priority-or-veto conflict resolution over claimed resource keys."""

    def __init__(self, *, audit: Optional[AuditTrail] = None) -> None:
        self.audit = audit
        self._claims: Dict[ResourceKey, Claim] = {}
        self.conflicts_total = 0
        self.vetoes_total = 0
        self.preemptions_total = 0
        self.vetoes_by_loop: Dict[str, int] = {}

    # ------------------------------------------------------------ resolution
    def resolve(
        self,
        loop: str,
        priority: int,
        plan: Plan,
        now: float,
        *,
        ttl_s: float,
        resource_keys: Callable[[Action], Sequence[ResourceKey]] = default_resource_keys,
    ) -> Tuple[Plan, List[Action]]:
        """Filter ``plan`` against current claims; claim what survives.

        Returns ``(filtered_plan, vetoed_actions)`` — the same contract
        as a guard, which is how the runtime applies it.
        """
        if len(self._claims) > 4096:
            self._sweep(now)
        vetoed: List[Action] = []
        for action in plan.actions:
            keys = tuple(resource_keys(action))
            blocker: Optional[Tuple[ResourceKey, Claim]] = None
            for key in keys:
                claim = self._claims.get(key)
                if claim is not None and claim.expires <= now:
                    del self._claims[key]  # lapsed: drop on touch
                    claim = None
                if (
                    claim is not None
                    and claim.loop != loop
                    and claim.priority >= priority
                ):
                    blocker = (key, claim)
                    break
            if blocker is not None:
                key, claim = blocker
                vetoed.append(action)
                self.conflicts_total += 1
                self.vetoes_total += 1
                self.vetoes_by_loop[loop] = self.vetoes_by_loop.get(loop, 0) + 1
                if self.audit is not None:
                    self.audit.record(
                        now,
                        loop,
                        "arbitrate",
                        f"vetoed {action.kind}({action.target}): {key[0]}/{key[1]} "
                        f"claimed by {claim.loop} (prio {claim.priority} >= {priority})",
                        data={
                            "winner": claim.loop,
                            "winner_priority": claim.priority,
                            "loser_priority": priority,
                            "resource": f"{key[0]}/{key[1]}",
                        },
                    )
                continue
            for key in keys:
                prior = self._claims.get(key)
                if (
                    prior is not None
                    and prior.expires > now
                    and prior.loop != loop
                ):
                    # strictly higher priority: preempt the stale claim
                    self.conflicts_total += 1
                    self.preemptions_total += 1
                    if self.audit is not None:
                        self.audit.record(
                            now,
                            loop,
                            "arbitrate",
                            f"preempted {key[0]}/{key[1]} from {prior.loop} "
                            f"(prio {priority} > {prior.priority})",
                            data={"preempted": prior.loop, "resource": f"{key[0]}/{key[1]}"},
                        )
                self._claims[key] = Claim(loop, priority, now, now + ttl_s, action.kind)
        return plan.without(vetoed), vetoed

    def _sweep(self, now: float) -> None:
        """Purge lapsed claims so the table tracks live contention only."""
        stale = [k for k, c in self._claims.items() if c.expires <= now]
        for k in stale:
            del self._claims[k]

    # ------------------------------------------------------------- inspection
    def active_claims(self, now: float) -> Dict[ResourceKey, Claim]:
        return {k: c for k, c in self._claims.items() if c.expires > now}

    def release(self, loop: str) -> int:
        """Drop every claim held by ``loop`` (e.g. when it is removed)."""
        mine = [k for k, c in self._claims.items() if c.loop == loop]
        for k in mine:
            del self._claims[k]
        return len(mine)

    def stats(self) -> Dict[str, float]:
        return {
            "conflicts_total": float(self.conflicts_total),
            "vetoes_total": float(self.vetoes_total),
            "preemptions_total": float(self.preemptions_total),
        }


class ArbiterGuard(Guard):
    """Adapter exposing one loop's view of the shared arbiter as a Guard.

    Appended by the runtime as the final guard, so a loop's own trust
    controls run first and cross-loop coordination only sees actions the
    loop is actually allowed to take.
    """

    name = "arbiter"

    def __init__(
        self,
        arbiter: PlanArbiter,
        loop: str,
        priority: int,
        *,
        ttl_s: float,
        resource_keys: Optional[Callable[[Action], Sequence[ResourceKey]]] = None,
    ) -> None:
        self.arbiter = arbiter
        self.loop = loop
        self.priority = priority
        self.ttl_s = ttl_s
        self.resource_keys = resource_keys if resource_keys is not None else default_resource_keys

    def filter(self, plan: Plan, knowledge: KnowledgeBase, now: float):
        return self.arbiter.resolve(
            self.loop,
            self.priority,
            plan,
            now,
            ttl_s=self.ttl_s,
            resource_keys=self.resource_keys,
        )
