"""Cross-loop plan arbitration.

Many concurrent autonomy loops share actuation targets: the Maintenance
and Scheduler cases both checkpoint jobs, two QoS loops may shape the
same tenant, partition-scoped misconfig loops can overlap.  Left
uncoordinated, loops fight — the instability risk the paper's Fig. 2c
discussion raises for decentralized patterns.

:class:`PlanArbiter` is the control plane's conflict resolver.  Every
non-advisory action a loop plans claims the **resource keys** it
touches (``(domain, target)`` pairs, e.g. ``("job", "j042")``); a claim
is held for a TTL.  What happens when a second loop plans against a held
key is decided by a chain of pluggable :class:`ArbiterPolicy` objects:

* :class:`PriorityVetoPolicy` — the baseline (and always the implicit
  terminal policy): a contender whose priority does not exceed the claim
  holder's is vetoed; a strictly higher-priority loop preempts.
* :class:`MergePolicy` — a contender planning an action *compatible*
  with the one behind the claim (same kind, same target, params equal
  within a tolerance) is **absorbed**: the duplicate never executes, but
  it is audited as ``merged`` rather than vetoed and does not count
  against the loop's veto totals.  Incompatible plans fall through to
  the next policy (and are ultimately rejected).
* :class:`QueuePolicy` — a blocked contender is queued behind the claim
  with a TTL-bounded deferral: while its queue entry is live, the
  contender holds right-of-way on the key once the claim lapses (other
  loops are deferred behind it, unless strictly higher priority), so a
  deferred plan wins the resource on its next cycle instead of racing.
  Deferrals, like merges, do not count as vetoes.  Entries past their
  deferral deadline are dropped.

Every conflict resolution is written to the
:class:`~repro.core.audit.AuditTrail` with phase ``"arbitrate"`` and
``data["policy"]`` naming the policy that decided it, so operators can
see not just every suppressed actuation but *which rule* suppressed it.

The arbiter plugs into the normal guard chain via :class:`ArbiterGuard`,
which the :class:`~repro.core.runtime.LoopRuntime` appends after the
loop's own guards — trust controls first, coordination last.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.audit import AuditTrail
from repro.core.guards import Guard
from repro.core.knowledge import KnowledgeBase
from repro.core.types import Action, Plan
from repro.obs.trace import TRACER

#: ``(domain, target)`` — the unit of contention between loops.
ResourceKey = Tuple[str, str]

#: Action kinds that never actuate anything and therefore never conflict.
ADVISORY_KINDS = frozenset({"notify_user"})

#: Default domain of each built-in action kind; unknown kinds fall back
#: to the generic ``"target"`` domain so they still collide on equal
#: target strings.  The ``loop`` and ``hub`` domains are the fleet
#: itself: supervision actions contend like any other actuation.
KIND_DOMAINS: Dict[str, str] = {
    "request_extension": "job",
    "signal_checkpoint": "job",
    "fix_threads": "job",
    "fix_library": "job",
    "set_qos_rate": "tenant",
    "avoid_osts": "writer",
    "restart_loop": "loop",
    "quarantine_loop": "loop",
    "unquarantine_loop": "loop",
    "retune_loop": "loop",
    "set_fuse": "hub",
}


def default_resource_keys(action: Action) -> Tuple[ResourceKey, ...]:
    """Resource keys an action contends on; empty for advisory kinds."""
    if action.kind in ADVISORY_KINDS:
        return ()
    return ((KIND_DOMAINS.get(action.kind, "target"), action.target),)


@dataclass
class Claim:
    """One loop's hold on a resource key."""

    loop: str
    priority: int
    time: float
    expires: float
    kind: str
    #: the action that established the claim — what merge compatibility
    #: is judged against (``None`` for claims recorded by older callers)
    action: Optional[Action] = None


@dataclass(frozen=True)
class Decision:
    """A policy's ruling on one conflicting action.

    ``outcome`` is ``"veto"`` (suppress, report as vetoed), ``"merge"``
    (absorb a duplicate), or ``"defer"`` (suppress for now with queued
    right-of-way).  Merged and deferred actions are dropped from the
    plan but do **not** count toward the loop's veto totals — a loop
    politely waiting its turn must not read as a veto storm to the
    health supervisor.  ``policy`` names the deciding policy for the
    audit trail; ``data`` is merged into the audit record's payload
    (winner, resource, queue position, …).
    """

    outcome: str
    policy: str
    detail: str = ""
    data: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.outcome not in ("veto", "merge", "defer"):
            raise ValueError(f"unknown decision outcome {self.outcome!r}")


class ArbiterPolicy:
    """One pluggable conflict-resolution rule.

    Policies are chained: the arbiter asks each in turn and the first
    non-``None`` :class:`Decision` wins.  A policy may also rule on
    *free* keys (no live claim) via :meth:`on_free_key` — that is how
    queued right-of-way is enforced — and observe grants/releases to
    keep its own bookkeeping.
    """

    name = "policy"

    def on_conflict(
        self,
        arbiter: "PlanArbiter",
        key: ResourceKey,
        claim: Claim,
        loop: str,
        priority: int,
        action: Action,
        now: float,
    ) -> Optional[Decision]:
        """Rule on ``loop`` contending against a live ``claim``; ``None`` defers."""
        return None

    def on_free_key(
        self,
        arbiter: "PlanArbiter",
        key: ResourceKey,
        loop: str,
        priority: int,
        action: Action,
        now: float,
    ) -> Optional[Decision]:
        """Rule on ``loop`` taking an unclaimed key; ``None`` allows it."""
        return None

    def on_preemptible(
        self,
        arbiter: "PlanArbiter",
        key: ResourceKey,
        claim: Claim,
        loop: str,
        priority: int,
        action: Action,
        now: float,
    ) -> Optional[Decision]:
        """Rule on ``loop`` outranking a live ``claim``; ``None`` preempts."""
        return None

    def on_grant(self, key: ResourceKey, loop: str, now: float) -> None:
        """Observe ``loop`` winning ``key``."""

    def on_release(self, loop: str) -> None:
        """Observe every claim of ``loop`` being dropped."""


class PriorityVetoPolicy(ArbiterPolicy):
    """The baseline rule: priority-or-veto (always decides)."""

    name = "priority-veto"

    def on_conflict(self, arbiter, key, claim, loop, priority, action, now):
        return Decision(
            "veto",
            self.name,
            f"{key[0]}/{key[1]} claimed by {claim.loop} "
            f"(prio {claim.priority} >= {priority})",
            data=(
                ("winner", claim.loop),
                ("winner_priority", claim.priority),
                ("resource", f"{key[0]}/{key[1]}"),
            ),
        )


class MergePolicy(ArbiterPolicy):
    """Absorb contending actions that duplicate the claimed one.

    Two actions are merge-compatible when they share kind and target and
    their numeric params agree within ``tolerance`` (missing params are
    treated as 0, matching :meth:`repro.core.types.Action.param`).  The
    absorbed action is suppressed — its effect is already in flight
    behind the claim — but recorded as ``merged``, not vetoed.
    """

    name = "merge"

    def __init__(self, *, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def compatible(self, claimed: Optional[Action], action: Action) -> bool:
        if claimed is None:
            return False
        if claimed.kind != action.kind or claimed.target != action.target:
            return False
        for name in set(claimed.params) | set(action.params):
            if abs(claimed.param(name) - action.param(name)) > self.tolerance:
                return False
        return True

    def on_conflict(self, arbiter, key, claim, loop, priority, action, now):
        if not self.compatible(claim.action, action):
            return None  # incompatible plans: rejected by the next policy
        return Decision(
            "merge",
            self.name,
            f"{action.kind}({action.target}) duplicates {claim.loop}'s claim",
            data=(("winner", claim.loop), ("resource", f"{key[0]}/{key[1]}")),
        )

    # a duplicate is a duplicate regardless of rank: a higher-priority
    # loop planning the claimed action must absorb it, not preempt and
    # execute the same effect twice
    on_preemptible = on_conflict


@dataclass
class _QueueEntry:
    loop: str
    priority: int
    enqueued: float
    deadline: float


class QueuePolicy(ArbiterPolicy):
    """Queue blocked contenders behind the claim, with TTL-bounded deferral.

    A blocked contender is enqueued (FIFO per key, one live entry per
    loop) and its action deferred — suppressed this cycle, but not
    counted as a veto.  While its entry is live the contender holds
    right-of-way: once the claim lapses, other loops asking for the key
    are deferred behind the queue head (unless strictly higher
    priority), so the queued loop wins on its next cycle.  Entries
    expire after ``defer_ttl_s`` — a loop that stopped asking does not
    block a key forever.
    """

    name = "queue"

    def __init__(self, *, defer_ttl_s: float = 300.0) -> None:
        if defer_ttl_s <= 0:
            raise ValueError("defer_ttl_s must be positive")
        self.defer_ttl_s = defer_ttl_s
        self._queues: Dict[ResourceKey, Deque[_QueueEntry]] = {}
        #: full-sweep backstop, mirroring the arbiter's claims sweep: a
        #: stream of short-lived contended keys must not grow the table
        self.sweep_threshold = 4096
        self.queued_total = 0
        self.expired_total = 0
        self.granted_total = 0

    # ------------------------------------------------------------- helpers
    def _purge(self, key: ResourceKey, now: float) -> Optional[Deque[_QueueEntry]]:
        """Drop lapsed entries; forget the key entirely once empty.

        Deleting drained queues is what keeps the table bounded by
        *live* contention — a stream of short-lived resource keys must
        not leave one empty deque each behind.
        """
        queue = self._queues.get(key)
        if queue is None:
            return None
        while queue and queue[0].deadline <= now:
            queue.popleft()
            self.expired_total += 1
        if not queue:
            del self._queues[key]
            return None
        return queue

    def _enqueue(self, key: ResourceKey, loop: str, priority: int, now: float) -> None:
        if len(self._queues) > self.sweep_threshold:
            self.sweep(now)
        queue = self._queues.setdefault(key, deque())
        if not any(e.loop == loop for e in queue):
            queue.append(_QueueEntry(loop, priority, now, now + self.defer_ttl_s))
            self.queued_total += 1

    def sweep(self, now: float) -> None:
        """Purge lapsed entries (and drained keys) across every queue."""
        for key in list(self._queues):
            self._purge(key, now)

    def head(self, key: ResourceKey, now: float) -> Optional[_QueueEntry]:
        queue = self._purge(key, now)
        return queue[0] if queue else None

    def depth(self, key: ResourceKey, now: float) -> int:
        queue = self._purge(key, now)
        return len(queue) if queue else 0

    # -------------------------------------------------------------- policy
    def on_conflict(self, arbiter, key, claim, loop, priority, action, now):
        self._purge(key, now)
        self._enqueue(key, loop, priority, now)
        queue = self._queues[key]
        position = next(i for i, e in enumerate(queue) if e.loop == loop)
        return Decision(
            "defer",
            self.name,
            f"queued behind {claim.loop}'s {key[0]}/{key[1]} claim "
            f"(position {position}, deferral expires {now + self.defer_ttl_s:g}s)",
            data=(
                ("winner", claim.loop),
                ("winner_priority", claim.priority),
                ("resource", f"{key[0]}/{key[1]}"),
                ("queue_position", position),
            ),
        )

    def on_free_key(self, arbiter, key, loop, priority, action, now):
        head = self.head(key, now)
        if head is None or head.loop == loop:
            return None  # no reservation, or it is ours: proceed to grant
        if priority > head.priority:
            return None  # strictly higher priority overrides the queue too
        self._enqueue(key, loop, priority, now)
        return Decision(
            "defer",
            self.name,
            f"{key[0]}/{key[1]} reserved by queued {head.loop} "
            f"(prio {head.priority} >= {priority})",
            data=(
                ("winner", head.loop),
                ("winner_priority", head.priority),
                ("resource", f"{key[0]}/{key[1]}"),
            ),
        )

    def on_grant(self, key: ResourceKey, loop: str, now: float) -> None:
        queue = self._queues.get(key)
        if queue and queue[0].loop == loop:
            queue.popleft()
            self.granted_total += 1
            if not queue:
                del self._queues[key]

    def on_release(self, loop: str) -> None:
        for key in list(self._queues):
            queue = self._queues[key]
            live = [e for e in queue if e.loop != loop]
            if len(live) != len(queue):
                queue.clear()
                queue.extend(live)
            if not queue:
                del self._queues[key]


def default_policies() -> Tuple[ArbiterPolicy, ...]:
    """The baseline chain: plain priority-or-veto (PR 3 behavior)."""
    return (PriorityVetoPolicy(),)


def cooperative_policies(
    *, defer_ttl_s: float = 300.0, tolerance: float = 1e-9
) -> Tuple[ArbiterPolicy, ...]:
    """Merge duplicates, queue the rest: the richer production chain."""
    return (
        MergePolicy(tolerance=tolerance),
        QueuePolicy(defer_ttl_s=defer_ttl_s),
        PriorityVetoPolicy(),
    )


class PlanArbiter:
    """Conflict resolution over claimed resource keys via a policy chain."""

    def __init__(
        self,
        *,
        audit: Optional[AuditTrail] = None,
        policies: Optional[Sequence[ArbiterPolicy]] = None,
    ) -> None:
        self.audit = audit
        self.policies: Tuple[ArbiterPolicy, ...] = (
            tuple(policies) if policies is not None else default_policies()
        )
        self._terminal = PriorityVetoPolicy()
        self._claims: Dict[ResourceKey, Claim] = {}
        self.conflicts_total = 0
        self.vetoes_total = 0
        self.preemptions_total = 0
        self.merged_total = 0
        self.deferred_total = 0
        self.vetoes_by_loop: Dict[str, int] = {}
        self.decisions_by_policy: Dict[str, int] = {}

    # ------------------------------------------------------------ resolution
    def resolve(
        self,
        loop: str,
        priority: int,
        plan: Plan,
        now: float,
        *,
        ttl_s: float,
        resource_keys: Callable[[Action], Sequence[ResourceKey]] = default_resource_keys,
    ) -> Tuple[Plan, List[Action]]:
        """Filter ``plan`` against current claims; claim what survives.

        Returns ``(filtered_plan, vetoed_actions)`` — the same contract
        as a guard, which is how the runtime applies it.  Actions a
        policy *merged* are removed from the plan but not reported as
        vetoed: their effect is already in flight behind the claim.
        """
        if TRACER.enabled:
            with TRACER.span("arbiter.resolve", loop=loop,
                             actions=len(plan.actions)):
                return self._resolve(loop, priority, plan, now,
                                     ttl_s=ttl_s, resource_keys=resource_keys)
        return self._resolve(loop, priority, plan, now,
                             ttl_s=ttl_s, resource_keys=resource_keys)

    def _resolve(
        self,
        loop: str,
        priority: int,
        plan: Plan,
        now: float,
        *,
        ttl_s: float,
        resource_keys: Callable[[Action], Sequence[ResourceKey]],
    ) -> Tuple[Plan, List[Action]]:
        if len(self._claims) > 4096:
            self._sweep(now)
        vetoed: List[Action] = []
        absorbed: List[Action] = []
        for action in plan.actions:
            keys = tuple(resource_keys(action))
            decision = self._decide(loop, priority, action, keys, now)
            if decision is not None:
                self.conflicts_total += 1
                self.decisions_by_policy[decision.policy] = (
                    self.decisions_by_policy.get(decision.policy, 0) + 1
                )
                if decision.outcome == "merge":
                    absorbed.append(action)
                    self.merged_total += 1
                elif decision.outcome == "defer":
                    absorbed.append(action)
                    self.deferred_total += 1
                else:
                    vetoed.append(action)
                    self.vetoes_total += 1
                    self.vetoes_by_loop[loop] = self.vetoes_by_loop.get(loop, 0) + 1
                if self.audit is not None:
                    data = {
                        "policy": decision.policy,
                        "outcome": decision.outcome,
                        "loser_priority": priority,
                    }
                    data.update(dict(decision.data))
                    self.audit.record(
                        now,
                        loop,
                        "arbitrate",
                        f"{decision.outcome} {action.kind}({action.target}): "
                        f"{decision.detail}",
                        data=data,
                    )
                continue
            self._grant(loop, priority, action, keys, now, ttl_s)
        return plan.without(vetoed + absorbed), vetoed

    def _decide(
        self,
        loop: str,
        priority: int,
        action: Action,
        keys: Tuple[ResourceKey, ...],
        now: float,
    ) -> Optional[Decision]:
        """First blocking decision across the action's keys, or ``None``."""
        for key in keys:
            claim = self._claims.get(key)
            if claim is not None and claim.expires <= now:
                del self._claims[key]  # lapsed: drop on touch
                claim = None
            if claim is not None and claim.loop != loop:
                if claim.priority >= priority:
                    for policy in (*self.policies, self._terminal):
                        decision = policy.on_conflict(
                            self, key, claim, loop, priority, action, now
                        )
                        if decision is not None:
                            return decision
                else:
                    # outranked claim: policies may still rule (e.g. merge
                    # absorbs a duplicate); no decision means preemption
                    for policy in self.policies:
                        decision = policy.on_preemptible(
                            self, key, claim, loop, priority, action, now
                        )
                        if decision is not None:
                            return decision
            elif claim is None:
                for policy in self.policies:
                    decision = policy.on_free_key(self, key, loop, priority, action, now)
                    if decision is not None:
                        return decision
        return None

    def _grant(
        self,
        loop: str,
        priority: int,
        action: Action,
        keys: Tuple[ResourceKey, ...],
        now: float,
        ttl_s: float,
    ) -> None:
        for key in keys:
            prior = self._claims.get(key)
            if prior is not None and prior.expires > now and prior.loop != loop:
                # strictly higher priority: preempt the live claim
                self.conflicts_total += 1
                self.preemptions_total += 1
                if self.audit is not None:
                    self.audit.record(
                        now,
                        loop,
                        "arbitrate",
                        f"preempted {key[0]}/{key[1]} from {prior.loop} "
                        f"(prio {priority} > {prior.priority})",
                        data={
                            "policy": "priority-veto",
                            "outcome": "preempt",
                            "preempted": prior.loop,
                            "resource": f"{key[0]}/{key[1]}",
                        },
                    )
            self._claims[key] = Claim(loop, priority, now, now + ttl_s, action.kind, action)
            for policy in self.policies:
                policy.on_grant(key, loop, now)

    def _sweep(self, now: float) -> None:
        """Purge lapsed claims so the table tracks live contention only."""
        stale = [k for k, c in self._claims.items() if c.expires <= now]
        for k in stale:
            del self._claims[k]

    # ------------------------------------------------------------- inspection
    def active_claims(self, now: float) -> Dict[ResourceKey, Claim]:
        return {k: c for k, c in self._claims.items() if c.expires > now}

    def release(self, loop: str) -> int:
        """Drop every claim held by ``loop`` (e.g. when it is removed)."""
        mine = [k for k, c in self._claims.items() if c.loop == loop]
        for k in mine:
            del self._claims[k]
        for policy in self.policies:
            policy.on_release(loop)
        return len(mine)

    def stats(self) -> Dict[str, float]:
        out = {
            "conflicts_total": float(self.conflicts_total),
            "vetoes_total": float(self.vetoes_total),
            "preemptions_total": float(self.preemptions_total),
            "merged_total": float(self.merged_total),
            "deferred_total": float(self.deferred_total),
        }
        for policy in self.policies:
            if isinstance(policy, QueuePolicy):
                out["queued_total"] = float(policy.queued_total)
                out["queue_expired_total"] = float(policy.expired_total)
                out["queue_granted_total"] = float(policy.granted_total)
        return out


class ArbiterGuard(Guard):
    """Adapter exposing one loop's view of the shared arbiter as a Guard.

    Appended by the runtime as the final guard, so a loop's own trust
    controls run first and cross-loop coordination only sees actions the
    loop is actually allowed to take.
    """

    name = "arbiter"

    def __init__(
        self,
        arbiter: PlanArbiter,
        loop: str,
        priority: int,
        *,
        ttl_s: float,
        resource_keys: Optional[Callable[[Action], Sequence[ResourceKey]]] = None,
    ) -> None:
        self.arbiter = arbiter
        self.loop = loop
        self.priority = priority
        self.ttl_s = ttl_s
        self.resource_keys = resource_keys if resource_keys is not None else default_resource_keys

    def filter(self, plan: Plan, knowledge: KnowledgeBase, now: float):
        return self.arbiter.resolve(
            self.loop,
            self.priority,
            plan,
            now,
            ttl_s=self.ttl_s,
            resource_keys=self.resource_keys,
        )
