"""Component registry — interchangeability by name.

Methodology question ii asks what interfaces make components
interchangeable.  The registry is the runtime half of the answer:
implementations register factories under ``(role, name)``, and a loop
assembled from registry lookups can swap any phase implementation
without code changes (exercised by experiment E12).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: Canonical role names for MAPE-K phases plus forecaster plugins.
ROLES = ("monitor", "analyzer", "planner", "executor", "assessor", "forecaster", "guard")


class ComponentRegistry:
    """Factory registry keyed by ``(role, name)``."""

    def __init__(self) -> None:
        self._factories: Dict[Tuple[str, str], Callable[..., Any]] = {}

    def register(self, role: str, name: str, factory: Callable[..., Any]) -> None:
        if role not in ROLES:
            raise ValueError(f"unknown role {role!r}; choose from {ROLES}")
        key = (role, name)
        if key in self._factories:
            raise ValueError(f"{role}/{name} already registered")
        self._factories[key] = factory

    def create(self, role: str, name: str, **kwargs: Any) -> Any:
        factory = self._factories.get((role, name))
        if factory is None:
            raise KeyError(
                f"no {role} named {name!r}; available: {self.names(role)}"
            )
        return factory(**kwargs)

    def names(self, role: str) -> List[str]:
        return sorted(n for (r, n) in self._factories if r == role)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._factories


def default_registry() -> ComponentRegistry:
    """Registry pre-loaded with the analytics forecasters.

    The use-case loops (``repro.loops``) register their own components
    on import via :func:`repro.loops.register_components`.
    """
    from repro.analytics.forecast import _FORECASTERS

    registry = ComponentRegistry()
    for name, cls in _FORECASTERS.items():
        registry.register("forecaster", name, cls)
    return registry
