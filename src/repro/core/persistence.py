"""Knowledge persistence.

The K in MAPE-K outlives any single loop deployment: run histories and
plan-effectiveness records accumulated this week seed next week's
priors.  This module serializes the durable parts of a
:class:`~repro.core.knowledge.KnowledgeBase` — scalar facts, run
history, and assessed plan-outcome summaries — to JSON and back.

Live model objects are deliberately *not* serialized (models are
re-trained from data); their registry metadata is.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.analytics.similarity import JobRecord
from repro.core.knowledge import KnowledgeBase

FORMAT_VERSION = 1

_JSON_SCALARS = (str, int, float, bool, type(None))


def _serializable_facts(knowledge: KnowledgeBase) -> Dict[str, Any]:
    """Facts with JSON-scalar values; others are skipped (session-local)."""
    return {
        key: value
        for key, value in knowledge.facts().items()
        if isinstance(value, _JSON_SCALARS)
    }


def save_knowledge(knowledge: KnowledgeBase, path: Union[str, Path]) -> Dict[str, int]:
    """Write the durable knowledge to ``path``; returns section counts."""
    records = [
        {
            "job_id": r.job_id,
            "app_name": r.app_name,
            "features": dict(r.features),
            "runtime_s": r.runtime_s,
            "succeeded": r.succeeded,
            "tags": list(r.tags),
        }
        for r in knowledge.run_history.records()
    ]
    outcomes = [
        {
            "time": o.plan.time,
            "source": o.plan.source,
            "n_actions": len(o.plan.actions),
            "honored": o.honored,
            "score": o.score,
        }
        for o in knowledge.plan_outcomes
        if o.score is not None
    ]
    models = [
        {
            "name": name,
            "kind": knowledge.model(name).kind,
            "trained_at": knowledge.model(name).trained_at,
            "metadata": dict(knowledge.model(name).metadata),
        }
        for name in knowledge.models()
    ]
    payload = {
        "version": FORMAT_VERSION,
        "facts": _serializable_facts(knowledge),
        "run_history": records,
        "plan_outcomes": outcomes,
        "model_metadata": models,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return {
        "facts": len(payload["facts"]),
        "run_history": len(records),
        "plan_outcomes": len(outcomes),
        "model_metadata": len(models),
    }


def load_knowledge(path: Union[str, Path]) -> KnowledgeBase:
    """Rebuild a knowledge base from a file written by :func:`save_knowledge`.

    Plan outcomes are restored as summary facts
    (``restored_outcomes`` / ``restored_effectiveness``) rather than
    fake Plan objects — downstream confidence measures read history
    through those aggregates on cold start.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported knowledge format version: {version!r}")
    knowledge = KnowledgeBase()
    for key, value in payload.get("facts", {}).items():
        knowledge.remember(key, value)
    for rec in payload.get("run_history", []):
        knowledge.run_history.add(
            JobRecord(
                rec["job_id"],
                rec["app_name"],
                rec["features"],
                rec["runtime_s"],
                rec.get("succeeded", True),
                tuple(rec.get("tags", ())),
            )
        )
    outcomes = payload.get("plan_outcomes", [])
    if outcomes:
        scores = [o["score"] for o in outcomes if o.get("score") is not None]
        knowledge.remember("restored_outcomes", len(outcomes))
        if scores:
            knowledge.remember("restored_effectiveness", sum(scores) / len(scores))
    return knowledge
