"""Human-in-the-loop and human-on-the-loop adapters.

The paper's core motivation: "having a human in the loop limits the
speed of response and consequently, the opportunities for
feedback-driven improvements".  To quantify that (experiment E8), the
human is modelled as a decision channel with reaction latency,
availability, and error:

* :class:`HumanInTheLoopExecutor` wraps any Executor — plans wait for a
  simulated operator; unavailable operators drop the plan (by the time
  they see it, it is stale), and a distracted operator occasionally
  rejects a good plan.
* :class:`HumanOnTheLoopNotifier` implements the complementary pattern
  of Section IV: the loop acts autonomously and the human receives
  notifications with explanations, able to observe effects without
  gating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.audit import AuditTrail
from repro.core.component import Executor
from repro.core.knowledge import KnowledgeBase
from repro.core.types import ExecutionResult, Plan
from repro.sim.engine import Engine


class ContingencyPolicy:
    """A safe fallback executed when the human is absent or too slow.

    Section IV: decision-making "would then also include execution of
    contingency plans for when the humans are absent".  The policy wraps
    an executor and an optional plan transform — e.g. the Scheduler case
    downgrades "request_extension" to the safer "signal_checkpoint"
    before executing without approval.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        transform: Optional[Callable[[Plan], Plan]] = None,
    ) -> None:
        self.executor = executor
        self.transform = transform
        self.invocations = 0

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        self.invocations += 1
        if self.transform is not None:
            plan = self.transform(plan)
        return self.executor.execute(plan, knowledge)


@dataclass
class HumanResponseModel:
    """Statistical model of operator response behaviour.

    ``median_latency_s`` and ``latency_sigma`` parameterize a lognormal
    reaction time (median ~ minutes-to-hours in practice);
    ``availability`` is the probability the operator is present when a
    request lands; ``approve_prob`` is the chance a correct plan is
    approved rather than second-guessed.
    """

    median_latency_s: float = 900.0
    latency_sigma: float = 0.8
    availability: float = 0.7
    approve_prob: float = 0.9

    def __post_init__(self) -> None:
        if self.median_latency_s < 0:
            raise ValueError("median_latency_s must be >= 0")
        if self.latency_sigma < 0:
            raise ValueError("latency_sigma must be >= 0")
        for name in ("availability", "approve_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def sample_latency(self, rng: np.random.Generator) -> float:
        if self.median_latency_s == 0:
            return 0.0
        return float(
            self.median_latency_s * np.exp(rng.normal(0.0, self.latency_sigma))
        )


class HumanInTheLoopExecutor(Executor):
    """Executor wrapper that routes every plan through a simulated human.

    Plans execute only after the operator's reaction latency, and only
    if the operator was available and approved.  Results of deferred
    executions are recorded on the knowledge base when they happen (the
    wrapped call returns immediately with a "queued for approval"
    placeholder, honest to how ticket-driven operations behave).
    """

    name = "human-in-the-loop"

    def __init__(
        self,
        engine: Engine,
        inner: Executor,
        model: HumanResponseModel,
        rng: np.random.Generator,
        *,
        audit: Optional[AuditTrail] = None,
        contingency: Optional[ContingencyPolicy] = None,
        contingency_after_s: Optional[float] = None,
    ) -> None:
        if contingency_after_s is not None and contingency_after_s < 0:
            raise ValueError("contingency_after_s must be >= 0")
        self.engine = engine
        self.inner = inner
        self.model = model
        self.rng = rng
        self.audit = audit
        self.contingency = contingency
        self.contingency_after_s = contingency_after_s
        self.plans_queued = 0
        self.plans_executed = 0
        self.plans_dropped_unavailable = 0
        self.plans_rejected = 0
        self.contingency_executions = 0
        self.total_approval_latency_s = 0.0

    def execute(self, plan: Plan, knowledge: KnowledgeBase) -> List[ExecutionResult]:
        self.plans_queued += 1
        now = self.engine.now
        if self.rng.random() >= self.model.availability:
            self.plans_dropped_unavailable += 1
            if self.contingency is not None:
                # "execution of contingency plans for when the humans are
                # absent" — act immediately through the safe fallback
                self.contingency_executions += 1
                self._note(now, "operator unavailable; executing contingency plan")
                results = self.contingency.execute(plan, knowledge)
                knowledge.record_plan(plan, results)
                return results
            self._note(now, "operator unavailable; request expired in queue")
            return [
                ExecutionResult(a, now, honored=False, detail="operator unavailable")
                for a in plan.actions
            ]
        if self.rng.random() >= self.model.approve_prob:
            self.plans_rejected += 1
            self._note(now, "operator rejected the plan")
            return [
                ExecutionResult(a, now, honored=False, detail="operator rejected")
                for a in plan.actions
            ]
        latency = self.model.sample_latency(self.rng)
        self.total_approval_latency_s += latency
        if (
            self.contingency is not None
            and self.contingency_after_s is not None
            and latency > self.contingency_after_s
        ):
            # approval would land too late: the contingency deadline fires
            # first and the (late) approval is ignored
            self.contingency_executions += 1
            self.engine.schedule(
                self.contingency_after_s, self._contingency_fires, plan, knowledge,
                label="human-contingency",
            )
            self._note(now, f"approval ETA {latency:.0f}s exceeds contingency "
                            f"deadline {self.contingency_after_s:.0f}s")
            return [
                ExecutionResult(
                    a, now, honored=False,
                    detail=f"contingency armed (deadline {self.contingency_after_s:.0f}s)",
                )
                for a in plan.actions
            ]
        self.engine.schedule(
            latency, self._approved, plan, knowledge, label="human-approval"
        )
        return [
            ExecutionResult(a, now, honored=False, detail=f"queued for approval (~{latency:.0f}s)")
            for a in plan.actions
        ]

    def _contingency_fires(self, plan: Plan, knowledge: KnowledgeBase) -> None:
        results = self.contingency.execute(plan, knowledge)
        knowledge.record_plan(plan, results)
        self._note(self.engine.now, "contingency plan executed (operator too slow)")

    def _approved(self, plan: Plan, knowledge: KnowledgeBase) -> None:
        self.plans_executed += 1
        results = self.inner.execute(plan, knowledge)
        knowledge.record_plan(plan, results)
        self._note(self.engine.now, f"operator approved; {len(results)} action(s) executed")

    def _note(self, time: float, message: str) -> None:
        if self.audit is not None:
            self.audit.record(time, self.name, "human", message)


class HumanOnTheLoopNotifier:
    """Notification stream for autonomous loops (Section IV).

    Call :meth:`notify` after decisions; the human reads explanations
    asynchronously.  ``unacknowledged`` models the operator's queue.
    """

    def __init__(self, audit: AuditTrail, *, digest_period_s: float = 3600.0) -> None:
        if digest_period_s <= 0:
            raise ValueError("digest_period_s must be positive")
        self.audit = audit
        self.digest_period_s = digest_period_s
        self.notifications = 0
        self.unacknowledged = 0

    def notify(self, time: float, loop: str, message: str, **data) -> None:
        self.audit.record(time, loop, "notify", message, data=data)
        self.notifications += 1
        self.unacknowledged += 1

    def acknowledge_all(self) -> int:
        """Operator catches up on the queue; returns how many were read."""
        n = self.unacknowledged
        self.unacknowledged = 0
        return n
