"""Decision confidence measures.

Section IV: "our analyses will also be expanded to include determination
of confidence in the models for decision-making".  Two orthogonal
signals are combined:

* **interval confidence** — how tight the forecaster's prediction
  interval is relative to the decision horizon (a sharp forecast earns
  trust, a vague one does not);
* **success confidence** — the Laplace-smoothed success rate of this
  loop's recent plans from the knowledge base (a loop whose plans keep
  failing should hesitate).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analytics.forecast import ForecastResult
from repro.core.knowledge import KnowledgeBase


def interval_confidence(result: ForecastResult, horizon_s: float) -> float:
    """Map prediction-interval width to [0, 1].

    Width equal to 0 → 1.0; width equal to ``horizon_s`` → ~0.37; wider
    decays exponentially.  ``horizon_s`` should be the decision-relevant
    scale (e.g. remaining allocation time).
    """
    if horizon_s <= 0:
        return 0.0
    width = max(0.0, result.interval_width)
    return math.exp(-width / horizon_s)


def success_confidence(knowledge: KnowledgeBase, last_n: int = 20) -> float:
    """Laplace-smoothed honored-and-effective rate of recent plans."""
    outcomes = [o for o in knowledge.plan_outcomes if o.score is not None][-last_n:]
    successes = sum(1 for o in outcomes if o.score is not None and o.score >= 0.5)
    # Laplace prior of one success and one failure keeps cold-start at 0.5
    return (successes + 1) / (len(outcomes) + 2)


def combined_confidence(
    forecast: Optional[ForecastResult],
    knowledge: KnowledgeBase,
    horizon_s: float,
    *,
    forecast_weight: float = 0.6,
) -> float:
    """Weighted blend of interval and success confidence in [0, 1]."""
    if not 0.0 <= forecast_weight <= 1.0:
        raise ValueError("forecast_weight must be in [0, 1]")
    success = success_confidence(knowledge)
    if forecast is None:
        return (1.0 - forecast_weight) * success
    interval = interval_confidence(forecast, horizon_s)
    return forecast_weight * interval + (1.0 - forecast_weight) * success
