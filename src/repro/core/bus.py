"""Message bus between loop components.

Decentralized patterns exchange observations, intents, and actions over
a network; the bus models per-message latency and loss and counts
traffic so experiment E2 can report message volume per pattern.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Engine


class MessageBus:
    """Point-to-point message delivery with latency/loss."""

    def __init__(
        self,
        engine: Engine,
        *,
        latency_s: float = 0.01,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError("loss_prob must be in [0, 1]")
        if loss_prob > 0 and rng is None:
            raise ValueError("rng required when loss_prob is set")
        self.engine = engine
        self.latency_s = latency_s
        self.loss_prob = loss_prob
        self.rng = rng
        self.messages_sent = 0
        self.messages_lost = 0
        self.messages_delivered = 0

    def send(self, payload: Any, on_delivery: Callable[[Any], None]) -> None:
        """Deliver ``payload`` to ``on_delivery`` after the bus latency."""
        self.messages_sent += 1
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self.messages_lost += 1
            return
        if self.latency_s > 0:
            self.engine.schedule(self.latency_s, self._deliver, payload, on_delivery, label="bus")
        else:
            self._deliver(payload, on_delivery)

    def _deliver(self, payload: Any, on_delivery: Callable[[Any], None]) -> None:
        self.messages_delivered += 1
        on_delivery(payload)
