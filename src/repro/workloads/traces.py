"""Trace datasets — the open-data answer to methodology question iii.

The paper commits to "release the exploratory datasets used to gain
insight into the variation of progress markers and run-time variation
as open datasets".  These helpers export exactly those two datasets
from a simulation — a job outcome trace and a progress-marker dataset —
as plain CSV, and load them back.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.cluster.job import Job
from repro.telemetry.markers import ProgressMarkerChannel

JOB_TRACE_FIELDS = [
    "job_id",
    "user",
    "app_name",
    "n_nodes",
    "submit_time",
    "start_time",
    "end_time",
    "walltime_request_s",
    "time_limit_s",
    "state",
    "final_step",
    "total_steps",
    "extensions",
    "extension_seconds",
]


def export_job_trace(jobs: Iterable[Job], path: Union[str, Path]) -> int:
    """Write a job outcome trace as CSV; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=JOB_TRACE_FIELDS)
        writer.writeheader()
        for job in jobs:
            writer.writerow(
                {
                    "job_id": job.job_id,
                    "user": job.user,
                    "app_name": job.profile.name,
                    "n_nodes": job.n_nodes,
                    "submit_time": f"{job.submit_time:.3f}",
                    "start_time": "" if job.start_time is None else f"{job.start_time:.3f}",
                    "end_time": "" if job.end_time is None else f"{job.end_time:.3f}",
                    "walltime_request_s": f"{job.walltime_request_s:.3f}",
                    "time_limit_s": f"{job.time_limit_s:.3f}",
                    "state": job.state.value,
                    "final_step": "" if job.final_step is None else f"{job.final_step:.3f}",
                    "total_steps": f"{job.profile.total_steps:.3f}",
                    "extensions": job.extension_count,
                    "extension_seconds": f"{job.total_extension_s:.3f}",
                }
            )
            rows += 1
    return rows


def load_job_trace(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a job trace CSV back as a list of string dicts."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))


def export_marker_dataset(
    channel: ProgressMarkerChannel,
    path: Union[str, Path],
    job_ids: Sequence[str] = (),
) -> int:
    """Write the progress-marker dataset as CSV; returns the row count."""
    path = Path(path)
    ids = list(job_ids) if job_ids else channel.jobs()
    rows = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["job_id", "time", "step", "total_steps"])
        for job_id in ids:
            for marker in channel.read_all(job_id):
                writer.writerow(
                    [
                        marker.job_id,
                        f"{marker.time:.3f}",
                        f"{marker.step:.3f}",
                        "" if marker.total_steps is None else f"{marker.total_steps:.3f}",
                    ]
                )
                rows += 1
    return rows
