"""Application archetypes.

Each archetype is a factory drawing a randomized
:class:`~repro.cluster.application.ApplicationProfile` from a
distribution that mimics one class of HPC workload:

* ``simulation_app`` — steady iterative solver (LAMMPS/CFD-like) with
  mild step-rate noise.
* ``adaptive_mesh_app`` — refinement phases slow the step rate as the
  run progresses (the forecasting stress case).
* ``ml_training_app`` — GPU training; epochs as steps; large checkpoint.
* ``io_heavy_app`` — periodic heavy output phases (couples to storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.cluster.application import ApplicationProfile, PhaseChange


@dataclass(frozen=True)
class ArchetypeSpec:
    """A named archetype with a sampling weight."""

    name: str
    factory: Callable[[np.random.Generator], ApplicationProfile]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


def simulation_app(rng: np.random.Generator) -> ApplicationProfile:
    """Steady iterative simulation: runtime ~ lognormal hours."""
    runtime_s = float(rng.lognormal(mean=np.log(3600.0), sigma=0.5))
    rate = float(rng.uniform(0.5, 4.0))  # steps/s
    return ApplicationProfile(
        name="simulation",
        total_steps=runtime_s * rate,
        base_step_rate=rate,
        rate_noise_std=float(rng.uniform(0.02, 0.10)),
        marker_period_s=30.0,
        checkpoint_cost_s=float(rng.uniform(30.0, 120.0)),
    )


def adaptive_mesh_app(rng: np.random.Generator) -> ApplicationProfile:
    """AMR-style run: the mesh refines and steps get slower over time."""
    runtime_s = float(rng.lognormal(mean=np.log(5400.0), sigma=0.4))
    rate = float(rng.uniform(0.5, 2.0))
    slow1 = float(rng.uniform(0.5, 0.8))
    slow2 = slow1 * float(rng.uniform(0.5, 0.9))
    phases = (
        PhaseChange(float(rng.uniform(0.3, 0.5)), slow1),
        PhaseChange(float(rng.uniform(0.6, 0.8)), slow2),
    )
    return ApplicationProfile(
        name="adaptive-mesh",
        total_steps=runtime_s * rate,
        base_step_rate=rate,
        rate_noise_std=float(rng.uniform(0.05, 0.15)),
        phases=phases,
        marker_period_s=30.0,
        checkpoint_cost_s=float(rng.uniform(60.0, 180.0)),
    )


def ml_training_app(rng: np.random.Generator) -> ApplicationProfile:
    """GPU training run: epoch markers, chunky checkpoints."""
    epochs = float(rng.integers(50, 400))
    epoch_s = float(rng.uniform(20.0, 120.0))
    return ApplicationProfile(
        name="ml-training",
        total_steps=epochs,
        base_step_rate=1.0 / epoch_s,
        rate_noise_std=float(rng.uniform(0.02, 0.08)),
        marker_period_s=max(30.0, epoch_s),
        checkpoint_cost_s=float(rng.uniform(60.0, 240.0)),
        uses_gpu=True,
    )


def io_heavy_app(rng: np.random.Generator) -> ApplicationProfile:
    """Output-dominated workload with periodic heavy writes."""
    runtime_s = float(rng.lognormal(mean=np.log(2700.0), sigma=0.4))
    rate = float(rng.uniform(1.0, 3.0))
    return ApplicationProfile(
        name="io-heavy",
        total_steps=runtime_s * rate,
        base_step_rate=rate,
        rate_noise_std=float(rng.uniform(0.05, 0.12)),
        marker_period_s=30.0,
        checkpoint_cost_s=float(rng.uniform(120.0, 300.0)),
        io_every_s=float(rng.uniform(300.0, 900.0)),
        io_size_mb=float(rng.uniform(512.0, 4096.0)),
    )


def standard_mix() -> List[ArchetypeSpec]:
    """The default job mix used across experiments."""
    return [
        ArchetypeSpec("simulation", simulation_app, weight=0.45),
        ArchetypeSpec("adaptive-mesh", adaptive_mesh_app, weight=0.25),
        ArchetypeSpec("ml-training", ml_training_app, weight=0.15),
        ArchetypeSpec("io-heavy", io_heavy_app, weight=0.15),
    ]
