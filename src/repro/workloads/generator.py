"""Job arrival generation with walltime misestimation and resubmission.

Users systematically misestimate walltimes; the generator models the
requested walltime as the true nominal runtime scaled by a lognormal
factor.  Under-estimates (factor < 1 after safety behaviour) are the
jobs the Scheduler loop rescues; over-estimates create the backfill
slack the trust metrics care about.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.job import Job, JobState
from repro.cluster.scheduler import Scheduler
from repro.sim.engine import Engine
from repro.workloads.archetypes import ArchetypeSpec, standard_mix


@dataclass
class MisestimationModel:
    """Requested walltime = nominal runtime × lognormal(mu, sigma) factor.

    ``mu`` < 0 biases toward underestimation.  The factor is clipped to
    ``[min_factor, max_factor]``; a floor walltime avoids degenerate
    requests.
    """

    mu: float = 0.0
    sigma: float = 0.35
    min_factor: float = 0.4
    max_factor: float = 4.0
    floor_s: float = 600.0

    def __post_init__(self) -> None:
        if self.min_factor <= 0 or self.max_factor < self.min_factor:
            raise ValueError("need 0 < min_factor <= max_factor")

    def request_for(self, nominal_runtime_s: float, rng: np.random.Generator) -> float:
        factor = float(np.exp(rng.normal(self.mu, self.sigma)))
        factor = min(self.max_factor, max(self.min_factor, factor))
        return max(self.floor_s, nominal_runtime_s * factor)


@dataclass
class WorkloadSpec:
    """Shape of a generated workload."""

    n_jobs: int = 50
    arrival_rate_per_s: float = 1.0 / 120.0
    mix: Sequence[ArchetypeSpec] = field(default_factory=standard_mix)
    misestimation: MisestimationModel = field(default_factory=MisestimationModel)
    max_nodes_per_job: int = 4
    user_pool: int = 8

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if not self.mix:
            raise ValueError("mix must be non-empty")


class WorkloadGenerator:
    """Submits a Poisson stream of jobs drawn from the archetype mix."""

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        rng: np.random.Generator,
        spec: Optional[WorkloadSpec] = None,
        *,
        id_prefix: str = "job",
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.rng = rng
        self.spec = spec if spec is not None else WorkloadSpec()
        self.id_prefix = id_prefix
        self.jobs: List[Job] = []
        self._weights = np.array([a.weight for a in self.spec.mix], dtype=float)
        self._weights /= self._weights.sum()
        self._counter = itertools.count()

    def start(self) -> None:
        """Schedule all arrivals up front (Poisson process)."""
        t = 0.0
        for _ in range(self.spec.n_jobs):
            t += float(self.rng.exponential(1.0 / self.spec.arrival_rate_per_s))
            self.engine.schedule_at(
                max(t, self.engine.now), self._submit_one, label="workload-arrival"
            )

    def _submit_one(self) -> None:
        job = self.make_job()
        self.jobs.append(job)
        self.scheduler.submit(job)

    def make_job(self) -> Job:
        spec = self.spec
        idx = int(self.rng.choice(len(spec.mix), p=self._weights))
        profile = spec.mix[idx].factory(self.rng)
        nominal = profile.nominal_runtime_s()
        walltime = spec.misestimation.request_for(nominal, self.rng)
        n_nodes = int(self.rng.integers(1, spec.max_nodes_per_job + 1))
        user = f"user{int(self.rng.integers(spec.user_pool))}"
        return Job(
            f"{self.id_prefix}-{next(self._counter):04d}",
            user,
            profile,
            n_nodes=n_nodes,
            walltime_request_s=walltime,
        )

    def underestimated_jobs(self) -> List[Job]:
        """Jobs whose request was below their nominal runtime."""
        return [
            j for j in self.jobs if j.walltime_request_s < j.profile.nominal_runtime_s()
        ]


class ResubmitPolicy:
    """Resubmits lost jobs, restarting from checkpoints when available.

    Mirrors user behaviour after a timeout or maintenance kill: resubmit
    the same work (new job id), with the same — typically still wrong —
    walltime request, restarting from the newest checkpoint.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        *,
        checkpoint_store: Optional[CheckpointStore] = None,
        max_resubmits_per_job: int = 2,
        resubmit_delay_s: float = 300.0,
        resubmit_states: Sequence[JobState] = (
            JobState.TIMEOUT,
            JobState.KILLED_MAINTENANCE,
        ),
    ) -> None:
        if max_resubmits_per_job < 0:
            raise ValueError("max_resubmits_per_job must be >= 0")
        self.engine = engine
        self.scheduler = scheduler
        self.checkpoint_store = checkpoint_store
        self.max_resubmits_per_job = max_resubmits_per_job
        self.resubmit_delay_s = resubmit_delay_s
        self.resubmit_states = frozenset(resubmit_states)
        self.resubmissions = 0
        self._attempts: Dict[str, int] = {}
        self._origin: Dict[str, str] = {}  # resubmitted id -> original id
        scheduler.on_job_end.append(self._job_ended)

    def _root_id(self, job_id: str) -> str:
        return self._origin.get(job_id, job_id)

    def _job_ended(self, job: Job) -> None:
        if job.state not in self.resubmit_states:
            return
        root = self._root_id(job.job_id)
        attempts = self._attempts.get(root, 0)
        if attempts >= self.max_resubmits_per_job:
            return
        self._attempts[root] = attempts + 1
        restart_step = 0.0
        if self.checkpoint_store is not None:
            restart_step = self.checkpoint_store.restart_step(job.user, job.profile.name)
        new_id = f"{root}-r{attempts + 1}"
        self._origin[new_id] = root
        clone = Job(
            new_id,
            job.user,
            job.profile,
            n_nodes=job.n_nodes,
            walltime_request_s=job.walltime_request_s,
            priority=job.priority,
            launch=job.launch,
            restart_step=restart_step,
        )
        self.resubmissions += 1
        self.engine.schedule(
            self.resubmit_delay_s, self.scheduler.submit, clone, label="resubmit"
        )
