"""Workload generation and trace datasets.

Synthetic-but-calibrated job populations for the experiments: application
archetypes with realistic variability, Poisson job arrivals with user
walltime misestimation (the phenomenon the Scheduler case exists to
absorb), resubmission policies, and exportable trace datasets (the
paper's open-datasets commitment, methodology question iii).
"""

from repro.workloads.archetypes import (
    ArchetypeSpec,
    adaptive_mesh_app,
    io_heavy_app,
    ml_training_app,
    simulation_app,
    standard_mix,
)
from repro.workloads.generator import (
    MisestimationModel,
    ResubmitPolicy,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workloads.traces import export_job_trace, export_marker_dataset, load_job_trace

__all__ = [
    "ArchetypeSpec",
    "MisestimationModel",
    "ResubmitPolicy",
    "WorkloadGenerator",
    "WorkloadSpec",
    "adaptive_mesh_app",
    "export_job_trace",
    "export_marker_dataset",
    "io_heavy_app",
    "load_job_trace",
    "ml_training_app",
    "simulation_app",
    "standard_mix",
]
