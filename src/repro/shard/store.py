"""Hash-partitioned time-series store: N shards behind one facade.

:class:`ShardedTimeSeriesStore` partitions series across ``n_shards``
independent :class:`~repro.telemetry.tsdb.TimeSeriesStore` instances.
Each shard owns the full single-store machinery — its own
:class:`~repro.telemetry.batch.SeriesRegistry`, ring buffers, per-metric
write epochs and series generations, ingest listeners, and (when the
query layer attaches them) rollup tiers — so a shard is exactly the
storage unit a production deployment would run as one process.

Routing is **deterministic and content-addressed**: a series key always
maps to the same shard (:func:`shard_of_key`, CRC-32 of the canonical
key string), independent of insertion order, process, or run.  The
facade keeps a *global* registry interning keys to dense global ids —
the currency of the columnar ingest pipeline — plus vectorized routing
tables ``global id → (shard, local id)``, so splitting a
:class:`~repro.telemetry.batch.SampleBatch` by shard costs a couple of
NumPy gathers, not a Python call per row.

The batch commit path sorts the batch **once** (the same
``(series, time)`` lexsort the single store pays), maps each resulting
per-series segment to its shard, and hands segments to the shards
through :meth:`TimeSeriesStore.append_segments` — the trusted pre-sorted
entry — so sharded ingest does not regress against a single store's
``append_batch`` on the same rows.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry.batch import SeriesRegistry, sort_series_columns
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import IngestListener, SeriesStats, TimeSeriesStore


def shard_of_key(key: SeriesKey, n_shards: int) -> int:
    """Deterministic shard index of a series key.

    CRC-32 over the canonical string form — stable across processes and
    runs (unlike ``hash()``, which is salted per interpreter), cheap,
    and well-spread for the ``metric{label=value}`` shapes telemetry
    produces.
    """
    return zlib.crc32(str(key).encode()) % n_shards


class ShardedTimeSeriesStore:
    """Facade over ``n_shards`` single stores with deterministic routing.

    Implements the full read/write surface of
    :class:`~repro.telemetry.tsdb.TimeSeriesStore` (scalar inserts,
    per-series bulk inserts, columnar ``append_batch``, window queries,
    key listing, epochs/generations, listeners), so every existing
    consumer — collectors, loops, dashboards, the query layer — works
    unchanged on top of it.  Cross-shard aggregate queries should go
    through :class:`repro.shard.federated.FederatedQueryEngine`, which
    scatters per-shard subqueries and merges partial results.
    """

    def __init__(self, n_shards: int = 4, default_capacity: int = 4096) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = int(n_shards)
        self.default_capacity = int(default_capacity)
        self.shards: List[TimeSeriesStore] = [
            self._make_shard(idx) for idx in range(self.n_shards)
        ]
        #: global intern table — the id namespace the ingest pipeline moves
        self.registry = SeriesRegistry()
        #: routing tables indexed by global series id (dense, grown lazily)
        self._shard_of = np.empty(0, dtype=np.int64)
        self._local_of = np.empty(0, dtype=np.int64)
        self._routed = 0
        #: per-shard local id → global id (for translating listener columns)
        self._global_of: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self.n_shards)
        ]
        self._listeners: List[IngestListener] = []

    def _make_shard(self, idx: int) -> TimeSeriesStore:
        """Build the per-shard store.  Subclasses override to relocate
        shard columns (e.g. :class:`repro.shard.parallel.SharedTimeSeriesStore`
        over shared memory for the process-parallel tier)."""
        return TimeSeriesStore(self.default_capacity)

    # ------------------------------------------------------------- routing
    def shard_index(self, key: SeriesKey) -> int:
        """The shard a series key routes to."""
        return shard_of_key(key, self.n_shards)

    def shard_for(self, key: SeriesKey) -> TimeSeriesStore:
        return self.shards[shard_of_key(key, self.n_shards)]

    def _ensure_routed(self) -> None:
        """Extend the routing tables to cover every interned global id.

        Ids are assigned densely by the global registry; each new id is
        routed once, interned into its shard's registry (shard-local
        ids are therefore monotone in global id, which keeps per-shard
        segment streams sorted after a global ``(series, time)`` sort).
        """
        n = len(self.registry)
        if self._routed == n:
            return
        if n > self._shard_of.size:
            cap = max(64, 2 * self._shard_of.size, n)
            self._shard_of = np.resize(self._shard_of, cap)
            self._local_of = np.resize(self._local_of, cap)
        for gid in range(self._routed, n):
            key = self.registry.key_for(gid)
            s = shard_of_key(key, self.n_shards)
            local = self.shards[s].registry.id_for(key)
            self._shard_of[gid] = s
            self._local_of[gid] = local
            g_map = self._global_of[s]
            if local >= g_map.size:
                self._global_of[s] = g_map = np.resize(g_map, max(64, 2 * g_map.size, local + 1))
            g_map[local] = gid
        self._routed = n

    # ---------------------------------------------------------- management
    def set_capacity(self, metric: str, capacity: int) -> None:
        for shard in self.shards:
            shard.set_capacity(metric, capacity)

    def add_ingest_listener(self, listener: IngestListener) -> None:
        """Register a facade-level listener over every shard's commits.

        The listener receives **global** series ids (this facade's
        :attr:`registry` namespace); shard-local ids are translated
        through the routing tables before delivery.  Components that
        attach to one shard directly (per-shard rollup managers) keep
        using that shard's local ids.
        """
        self._listeners.append(listener)
        for s, shard in enumerate(self.shards):
            shard.add_ingest_listener(self._translating_listener(s, listener))

    def _translating_listener(self, shard_idx: int, listener: IngestListener) -> IngestListener:
        def on_ingest(ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
            self._ensure_routed()
            listener(self._global_of[shard_idx][ids], times, values)

        return on_ingest

    # --------------------------------------------------------------- writing
    def insert(self, key: SeriesKey, t: float, value: float) -> None:
        self.registry.id_for(key)
        self.shard_for(key).insert(key, t, value)

    def insert_batch(self, key: SeriesKey, times: np.ndarray, values: np.ndarray) -> None:
        self.registry.id_for(key)
        self.shard_for(key).insert_batch(key, times, values)

    def append_batch(
        self,
        series_ids: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Columnar bulk commit split across shards.

        One global ``(series, time)`` lexsort — the identical sort a
        single store would pay — then each per-series segment is routed
        to its shard and committed through the trusted pre-sorted
        :meth:`TimeSeriesStore.append_segments` path, so the split adds
        only two O(segments) gathers over the unsharded commit.  Ids
        must come from this facade's :attr:`registry`.
        """
        series_ids = np.asarray(series_ids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if not (series_ids.shape == times.shape == values.shape):
            raise ValueError("series_ids, times, values must be parallel 1-D arrays")
        if series_ids.size == 0:
            return
        self._ensure_routed()
        if int(series_ids.max()) >= self._routed:
            raise IndexError("series id not interned in this store's registry")
        ids_s, times_s, values_s, starts, ends = sort_series_columns(
            series_ids, times, values
        )
        seg_gids = ids_s[starts]
        seg_shards = self._shard_of[seg_gids]
        seg_locals = self._local_of[seg_gids]
        if self.n_shards == 1:
            self.shards[0].append_segments(seg_locals, times_s, values_s, starts, ends)
            return
        order = np.argsort(seg_shards, kind="stable")
        seg_shards_o = seg_shards[order]
        bounds = np.flatnonzero(seg_shards_o[1:] != seg_shards_o[:-1]) + 1
        for lo, hi in zip(
            np.concatenate(([0], bounds)).tolist(),
            np.concatenate((bounds, [order.size])).tolist(),
        ):
            sel = order[lo:hi]
            self.shards[seg_shards_o[lo]].append_segments(
                seg_locals[sel], times_s, values_s, starts[sel], ends[sel]
            )

    # --------------------------------------------------------------- reading
    def has(self, key: SeriesKey) -> bool:
        return self.shard_for(key).has(key)

    def series_keys(self, metric: Optional[str] = None) -> List[SeriesKey]:
        keys: List[SeriesKey] = []
        for shard in self.shards:
            keys.extend(shard.series_keys(metric))
        keys.sort(key=str)
        return keys

    def series_generation(self, metric: str) -> int:
        """Monotone: bumps whenever any shard grows a series of ``metric``."""
        return sum(shard.series_generation(metric) for shard in self.shards)

    def metric_epoch(self, metric: str) -> int:
        """Monotone: bumps on every commit touching ``metric`` on any shard."""
        return sum(shard.metric_epoch(metric) for shard in self.shards)

    def cardinality(self) -> int:
        return sum(shard.cardinality() for shard in self.shards)

    @property
    def total_inserts(self) -> int:
        return sum(shard.total_inserts for shard in self.shards)

    def latest(self, key: SeriesKey) -> Optional[Tuple[float, float]]:
        return self.shard_for(key).latest(key)

    def earliest_time(self, key: SeriesKey) -> Optional[float]:
        return self.shard_for(key).earliest_time(key)

    def query(self, key: SeriesKey, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        return self.shard_for(key).query(key, t0, t1)

    def stats(self, key: SeriesKey, t0: float, t1: float) -> SeriesStats:
        return self.shard_for(key).stats(key, t0, t1)

    def rate(self, key: SeriesKey, t0: float, t1: float) -> Optional[float]:
        return self.shard_for(key).rate(key, t0, t1)

    def downsample(
        self,
        key: SeriesKey,
        t0: float,
        t1: float,
        step: float,
        agg: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.shard_for(key).downsample(key, t0, t1, step, agg)

    def aggregate_across(
        self, metric: str, t0: float, t1: float, agg: str = "mean"
    ) -> Optional[float]:
        """Aggregate all points of all series of one metric over a window.

        Pools windows in **series-creation order** — the global
        registry's interning order, which is exactly the insertion
        order the single store's implementation iterates — so
        order-sensitive aggregates (``last``, float summation) match a
        :class:`TimeSeriesStore` holding the same data.
        """
        from repro.telemetry.tsdb import _AGGREGATORS

        try:
            fn = _AGGREGATORS[agg]
        except KeyError:
            raise ValueError(f"unknown aggregator {agg!r}") from None
        self._ensure_routed()
        chunks = []
        for gid in range(self._routed):
            key = self.registry.key_for(gid)
            if key.metric != metric:
                continue
            _, values = self.query(key, t0, t1)
            if values.size:
                chunks.append(values)
        if not chunks:
            return None
        return float(fn(np.concatenate(chunks)))

    # ------------------------------------------------------------ telemetry
    def shard_cardinalities(self) -> List[int]:
        """Live series per shard (balance diagnostics)."""
        return [shard.cardinality() for shard in self.shards]

    def shard_stats(self) -> Dict[str, float]:
        cards = self.shard_cardinalities()
        return {
            "shards": float(self.n_shards),
            "series_total": float(sum(cards)),
            "series_max_shard": float(max(cards)) if cards else 0.0,
            "series_min_shard": float(min(cards)) if cards else 0.0,
            "inserts_total": float(self.total_inserts),
        }
