"""Federated scatter-gather query engine over a sharded store.

:class:`FederatedQueryEngine` implements the full
:class:`~repro.query.engine.QueryEngine` API (``query`` / ``scalar`` /
``samples`` / ``select`` / caching) over a
:class:`~repro.shard.store.ShardedTimeSeriesStore`.  Execution is a
three-stage scatter-gather:

1. **Plan** — resolve matchers to series keys, assign each key its
   output group (``gidx``) and its canonical rank within the group, and
   partition the work by owning shard.
2. **Scatter** — each touched shard computes *per-series partial rows*:
   windowed reads stitched from the shard's rollup tier plus its raw
   tail, reduced per ``(series, bin)`` with ``reduceat`` over composite
   keys (sum/count/min/max/last partials, counter increases for
   ``rate``, pooled samples for percentiles).  No per-group Python
   loops — a shard's whole worklist is one vectorized pass.
3. **Gather** — partial rows from every shard are concatenated, sorted
   into one **canonical order** ``(group, bin, last_t, source, rank)``
   that is independent of how series are partitioned, and reduced to
   output bins with ``reduceat`` kernels.

The per-shard scatter passes are module-level functions parameterized by
a **shard reader** (:class:`KeyShardReader` here; the sid-addressed
worker-side reader in :mod:`repro.shard.parallel`), so the serial loop
below and the process-parallel tier execute literally the same pass code
— the engine's only serial/parallel difference is *where* the pass runs.
:meth:`FederatedQueryEngine._scatter` is that seam: the parallel engine
overrides it to dispatch the passes to worker processes over
shared-memory columns.

Because per-series arithmetic happens on exactly one shard (a series
never splits) and the cross-series reduction runs in a
partition-independent order, the result is **bit-identical for every
shard count** — the property tests pin the federated result against the
same engine running over a single-shard store.  Against the legacy
per-group :class:`QueryEngine`, results are equal up to floating-point
association (≤1e-9 relative), since that engine pools samples in a
different (but equally valid) summation order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.query.engine import (
    QueryEngine,
    QueryResult,
    ResultSeries,
    instant_tier_partials,
    instant_tier_rate,
)
from repro.obs.trace import TRACER
from repro.query.kernels import PARTIAL_AGGS, counter_increase, grouped_aggregate
from repro.query.model import MetricQuery
from repro.query.rollup import RollupManager, select_tier_index
from repro.query.standing import StoreStandingProvider, concat_entries
from repro.shard.store import ShardedTimeSeriesStore
from repro.telemetry.metric import SeriesKey

#: One shard's worklist as parallel columns: ``(items, group indices,
#: ranks within group)``.  Items are series keys for the in-process
#: reader and shard-local series ids for the worker-side reader.
ShardWork = Tuple[list, List[int], List[int]]


def _segment_bounds(comp: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of the runs of a nondecreasing int array."""
    if comp.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    bounds = np.flatnonzero(comp[1:] != comp[:-1]) + 1
    return (
        np.concatenate(([0], bounds)),
        np.concatenate((bounds, [comp.size])),
    )


def _bin_of(times: np.ndarray, grid_t0: float, step: Optional[float]) -> np.ndarray:
    if step is None:  # instant query: everything pools into one bin
        return np.zeros(times.size, dtype=np.int64)
    return ((times - grid_t0) // step).astype(np.int64)


def _sample_entries(
    t_chunks: List[np.ndarray],
    v_chunks: List[np.ndarray],
    gidxs: List[int],
    ranks: List[int],
    grid_t0: float,
    step: Optional[float],
    n_bins: int,
) -> Dict[str, np.ndarray]:
    """Per-``(series, bin)`` partial rows from raw sample windows.

    Chunks are per-series and time-sorted, so the composite key
    ``series_pos * n_bins + bin`` is nondecreasing over the pooled
    columns and every statistic reduces with one ``reduceat`` pass —
    ``last`` falls out of the segment tails (latest time; ties resolve
    to the later sample, matching the single-store semantics).
    """
    lens = np.fromiter((c.size for c in t_chunks), dtype=np.int64, count=len(t_chunks))
    t = np.concatenate(t_chunks)
    v = np.concatenate(v_chunks)
    series_pos = np.repeat(np.arange(lens.size), lens)
    bins = _bin_of(t, grid_t0, step)
    starts, ends = _segment_bounds(series_pos * n_bins + bins)
    sel = series_pos[starts]
    return {
        "gidx": np.asarray(gidxs, dtype=np.int64)[sel],
        "rank": np.asarray(ranks, dtype=np.int64)[sel],
        "bin": bins[starts],
        "source": np.ones(starts.size, dtype=np.int64),  # samples beat rows on last_t ties
        "sum": np.add.reduceat(v, starts),
        "count": (ends - starts).astype(np.float64),
        "vmin": np.minimum.reduceat(v, starts),
        "vmax": np.maximum.reduceat(v, starts),
        "last_t": t[ends - 1],
        "last_v": v[ends - 1],
    }


def _row_entries(
    row_chunks: List[Dict[str, np.ndarray]],
    gidxs: List[int],
    ranks: List[int],
    grid_t0: float,
    step: float,
    n_bins: int,
) -> Dict[str, np.ndarray]:
    """Per-``(series, bin)`` partial rows from rollup-tier rows."""
    lens = np.fromiter(
        (c["time"].size for c in row_chunks), dtype=np.int64, count=len(row_chunks)
    )
    cols = {
        name: np.concatenate([c[name] for c in row_chunks])
        for name in ("time", "sum", "count", "min", "max", "last_t", "last_v")
    }
    series_pos = np.repeat(np.arange(lens.size), lens)
    bins = _bin_of(cols["time"], grid_t0, step)
    starts, ends = _segment_bounds(series_pos * n_bins + bins)
    sel = series_pos[starts]
    return {
        "gidx": np.asarray(gidxs, dtype=np.int64)[sel],
        "rank": np.asarray(ranks, dtype=np.int64)[sel],
        "bin": bins[starts],
        "source": np.zeros(starts.size, dtype=np.int64),
        "sum": np.add.reduceat(cols["sum"], starts),
        "count": np.add.reduceat(cols["count"], starts),
        "vmin": np.minimum.reduceat(cols["min"], starts),
        "vmax": np.maximum.reduceat(cols["max"], starts),
        # tier rows of one series are time-ordered, so the segment tail
        # carries the latest underlying sample of the (series, bin)
        "last_t": cols["last_t"][ends - 1],
        "last_v": cols["last_v"][ends - 1],
    }


# --------------------------------------------------------------------------
# Shard readers: the data-access surface the scatter passes run against.


class KeyShardReader:
    """Key-addressed reader over one in-process shard store.

    ``tier`` is the pre-selected rollup tier for the running query (or
    ``None``); ``manager`` is the shard's rollup cascade for the
    instant-query aged-out fallbacks (or ``None``).
    """

    __slots__ = ("shard", "manager", "tier")

    def __init__(self, shard, manager, tier) -> None:
        self.shard = shard
        self.manager = manager
        self.tier = tier

    def window(self, item, lo: float, hi: float):
        """Inclusive raw window ``[lo, hi]`` of one series."""
        return self.shard.query(item, lo, hi)

    def watermark(self, item) -> Optional[float]:
        return self.tier.watermark(item)

    def rows(self, item, lo: float, hi: float):
        """Selected-tier rows with bin start in ``[lo, hi)``."""
        return self.tier.window(item, lo, hi)

    def instant_partials(self, item, t0: float, t1: float):
        if self.manager is None:
            return None
        return instant_tier_partials(self.shard, self.manager, item, t0, t1)

    def instant_rate(self, item, t0: float, t1: float):
        if self.manager is None:
            return None
        return instant_tier_rate(self.shard, self.manager, item, t0, t1)


def _read_window(reader, item, lo: float, hi: float, right_exclusive: bool):
    """Raw window read: ``[lo, hi)`` for range queries (half-open bins),
    ``[lo, hi]`` inclusive for instant queries."""
    times, values = reader.window(item, lo, hi)
    if right_exclusive and times.size and times[-1] >= hi:
        keep = times < hi
        times, values = times[keep], values[keep]
    return times, values


# --------------------------------------------------------------------------
# Scatter passes.  Each computes one shard's contribution to one query
# kind from a reader + worklist columns, returning plain dict-of-array
# partials that the parent gathers.  Everything here must stay
# shard-local and partition-invariant — these functions run serially
# in-process *and* inside pool workers against shared-memory columns.


def scatter_partial(
    reader, items: list, gidxs: List[int], ranks: List[int],
    singleton: Optional[list], p: Dict,
) -> Optional[Tuple[List[Dict[str, np.ndarray]], bool]]:
    """Partial-aggregate pass: tier rows + raw tails + aged-out synth."""
    grid_t0, t1_hi, step, n_bins = p["grid_t0"], p["t1_hi"], p["step"], p["n_bins"]
    instant_tiers = p["instant_tiers"]
    tier = reader.tier
    st_chunks: List[np.ndarray] = []
    sv_chunks: List[np.ndarray] = []
    s_gidx: List[int] = []
    s_rank: List[int] = []
    row_chunks: List[Dict[str, np.ndarray]] = []
    r_gidx: List[int] = []
    r_rank: List[int] = []
    synth: List[Tuple[int, Dict[str, float]]] = []
    used_tier = False
    for i, item in enumerate(items):
        gidx, rank = gidxs[i], ranks[i]
        cut = grid_t0
        if tier is not None:
            wm = reader.watermark(item)
            if wm is not None:
                cut = min(max(wm, grid_t0), t1_hi)
            rows = reader.rows(item, grid_t0, cut)
            if rows is not None and rows["time"].size:
                row_chunks.append(rows)
                r_gidx.append(gidx)
                r_rank.append(rank)
        times, values = _read_window(reader, item, cut, t1_hi, step is not None)
        if times.size:
            st_chunks.append(times)
            sv_chunks.append(values)
            s_gidx.append(gidx)
            s_rank.append(rank)
        elif instant_tiers and singleton is not None and singleton[i]:
            # mirror the single-store engine: a singleton group whose raw
            # ring aged past the window is served from the shard's tiers
            # (per-series and shard-local, so still partition-invariant)
            row = reader.instant_partials(item, grid_t0, t1_hi)
            if row is not None:
                synth.append((gidx, row))
    entries: List[Dict[str, np.ndarray]] = []
    if row_chunks:
        used_tier = True
        entries.append(_row_entries(row_chunks, r_gidx, r_rank, grid_t0, step, n_bins))
    if st_chunks:
        entries.append(
            _sample_entries(st_chunks, sv_chunks, s_gidx, s_rank, grid_t0, step, n_bins)
        )
    if synth:
        used_tier = True
        entries.append(
            {
                "gidx": np.array([g for g, _ in synth], dtype=np.int64),
                "rank": np.zeros(len(synth), dtype=np.int64),
                "bin": np.zeros(len(synth), dtype=np.int64),
                "source": np.zeros(len(synth), dtype=np.int64),
                "sum": np.array([r["sum"] for _, r in synth]),
                "count": np.array([r["count"] for _, r in synth]),
                "vmin": np.array([r["min"] for _, r in synth]),
                "vmax": np.array([r["max"] for _, r in synth]),
                "last_t": np.array([r["last_t"] for _, r in synth]),
                "last_v": np.array([r["last_v"] for _, r in synth]),
            }
        )
    if not entries and not used_tier:
        return None
    return entries, used_tier


def scatter_rate(
    reader, items: list, gidxs: List[int], ranks: List[int],
    singleton: Optional[list], p: Dict,
) -> Optional[Dict[str, np.ndarray]]:
    """Range-rate pass: per-``(series, bin)`` reset-clamped increases."""
    grid_t0, t1_hi, step, n_bins = p["grid_t0"], p["t1_hi"], p["step"], p["n_bins"]
    inc_chunks: List[np.ndarray] = []
    bin_chunks: List[np.ndarray] = []
    g_list: List[int] = []
    r_list: List[int] = []
    for i, item in enumerate(items):
        times, values = _read_window(reader, item, grid_t0, t1_hi, True)
        if times.size < 2:
            continue
        inc_chunks.append(counter_increase(values))
        bin_chunks.append(_bin_of(times[1:], grid_t0, step))
        g_list.append(gidxs[i])
        r_list.append(ranks[i])
    if not inc_chunks:
        return None
    lens = np.fromiter((c.size for c in inc_chunks), dtype=np.int64, count=len(inc_chunks))
    inc = np.concatenate(inc_chunks)
    bins = np.concatenate(bin_chunks)
    series_pos = np.repeat(np.arange(lens.size), lens)
    starts, _ = _segment_bounds(series_pos * n_bins + bins)
    sel = series_pos[starts]
    return {
        "gidx": np.asarray(g_list, dtype=np.int64)[sel],
        "rank": np.asarray(r_list, dtype=np.int64)[sel],
        "bin": bins[starts],
        "inc": np.add.reduceat(inc, starts),
    }


def scatter_instant_rate(
    reader, items: list, gidxs: List[int], ranks: List[int],
    singleton: Optional[list], p: Dict,
) -> Optional[Tuple[Dict[str, np.ndarray], bool]]:
    """Instant-rate pass: per-series total increases (+ tier fallback)."""
    t0, t1 = p["t0"], p["t1"]
    inc_chunks: List[np.ndarray] = []
    g_list: List[int] = []
    r_list: List[int] = []
    synth_g: List[int] = []
    synth_r: List[int] = []
    synth_total: List[float] = []
    used_tier = False
    for i, item in enumerate(items):
        _, values = reader.window(item, t0, t1)
        inc = counter_increase(values)
        if inc.size:
            inc_chunks.append(inc)
            g_list.append(gidxs[i])
            r_list.append(ranks[i])
        elif p["tier_fallback"] and singleton is not None and singleton[i]:
            # aged-out singleton counter: the increase comes from rollup
            # bin-end values (see instant_tier_rate) — shard-local, so
            # still partition-invariant
            hit = reader.instant_rate(item, t0, t1)
            if hit is not None:
                synth_g.append(gidxs[i])
                synth_r.append(ranks[i])
                synth_total.append(hit[0])
                used_tier = True
    if not inc_chunks and not synth_total:
        return None
    if inc_chunks:
        lens = np.fromiter(
            (c.size for c in inc_chunks), dtype=np.int64, count=len(inc_chunks)
        )
        series_pos = np.repeat(np.arange(lens.size), lens)
        starts, _ = _segment_bounds(series_pos)
        totals = np.add.reduceat(np.concatenate(inc_chunks), starts)
    else:
        totals = np.empty(0)
    return {
        "gidx": np.concatenate(
            (np.asarray(g_list, dtype=np.int64), np.asarray(synth_g, dtype=np.int64))
        ),
        "rank": np.concatenate(
            (np.asarray(r_list, dtype=np.int64), np.asarray(synth_r, dtype=np.int64))
        ),
        "total": np.concatenate((totals, np.asarray(synth_total, dtype=np.float64))),
    }, used_tier


def scatter_sampled(
    reader, items: list, gidxs: List[int], ranks: List[int],
    singleton: Optional[list], p: Dict,
) -> Optional[Dict[str, np.ndarray]]:
    """Percentile pass: pooled raw samples keyed by ``(group, bin)``."""
    grid_t0, t1_hi, step, n_bins = p["grid_t0"], p["t1_hi"], p["step"], p["n_bins"]
    v_chunks: List[np.ndarray] = []
    comp_chunks: List[np.ndarray] = []
    for i, item in enumerate(items):
        times, values = _read_window(reader, item, grid_t0, t1_hi, step is not None)
        if times.size:
            v_chunks.append(values)
            comp_chunks.append(gidxs[i] * n_bins + _bin_of(times, grid_t0, step))
    if not v_chunks:
        return None
    return {"comp": np.concatenate(comp_chunks), "v": np.concatenate(v_chunks)}


def scatter_samples(
    reader, items: list, gidxs: List[int], ranks: List[int],
    singleton: Optional[list], p: Dict,
) -> Optional[Dict[str, list]]:
    """Raw-sample extraction pass (``samples()`` fan-out).

    ``gidxs`` carries each item's position in the engine's selection
    order; per-series chunks come back labeled with it so the gather
    can reproduce the single-store pooling order exactly.
    """
    t0, t1, since = p["t0"], p["t1"], p["since"]
    sels: List[int] = []
    t_chunks: List[np.ndarray] = []
    v_chunks: List[np.ndarray] = []
    for i, item in enumerate(items):
        times, values = reader.window(item, t0, t1)
        if since is not None and times.size and times[0] <= since:
            keep = times > since
            times, values = times[keep], values[keep]
        if times.size:
            sels.append(gidxs[i])
            t_chunks.append(times)
            v_chunks.append(values)
    if not sels:
        return None
    return {"sel": sels, "times": t_chunks, "values": v_chunks}


#: Scatter pass per query kind; the worker-side task handler indexes
#: this same table, so serial and parallel execution share one code path.
SCATTER_FNS = {
    "partial": scatter_partial,
    "rate": scatter_rate,
    "instant_rate": scatter_instant_rate,
    "sampled": scatter_sampled,
    "samples": scatter_samples,
}


class FederatedStandingProvider:
    """Shard-local standing state behind the single provider seam.

    One :class:`StoreStandingProvider` per shard store: every grid is
    fed by its own shard's ingest listener with shard-local series ids,
    so registration and incremental updates never cross the partition.
    Reads route the planned selection with the same hash partition as
    the scatter passes and concatenate the per-shard row chunks — the
    engine-side assembler's canonical lexsort+reduceat merge is
    partition-invariant, so the gathered result matches the single-store
    provider for every shard count.
    """

    def __init__(self, store: ShardedTimeSeriesStore) -> None:
        self.store = store
        self.shard_providers = [StoreStandingProvider(s) for s in store.shards]

    def register(self, metric: str, step: float, n_slots: int, *, want_rate: bool) -> None:
        for provider in self.shard_providers:
            provider.register(metric, step, n_slots, want_rate=want_rate)

    def entries(
        self,
        metric: str,
        step: float,
        keys: Sequence[SeriesKey],
        gidxs: np.ndarray,
        ranks: np.ndarray,
        b0: int,
        b1: int,
        *,
        want_rate: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Scatter the planned selection, gather per-shard partial rows.

        Any shard that cannot cover the window fails the whole read
        (``None`` -> batch fallback) — partial coverage would silently
        drop that shard's series from the merge.
        """
        work: List[ShardWork] = [([], [], []) for _ in range(self.store.n_shards)]
        shard_index = self.store.shard_index
        for i, key in enumerate(keys):
            wl = work[shard_index(key)]
            wl[0].append(key)
            wl[1].append(int(gidxs[i]))
            wl[2].append(int(ranks[i]))
        chunks: List[Dict[str, np.ndarray]] = []
        for s, (s_keys, s_gidxs, s_ranks) in enumerate(work):
            if not s_keys:
                continue
            with TRACER.span("standing.shard", shard=s, items=len(s_keys)):
                ent = self.shard_providers[s].entries(
                    metric,
                    step,
                    s_keys,
                    np.asarray(s_gidxs, dtype=np.int64),
                    np.asarray(s_ranks, dtype=np.int64),
                    b0,
                    b1,
                    want_rate=want_rate,
                )
            if ent is None:
                return None
            chunks.append(ent)
        return concat_entries(chunks)

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for provider in self.shard_providers:
            for k, v in provider.stats().items():
                out[k] = out.get(k, 0.0) + v
        return out


class FederatedQueryEngine(QueryEngine):
    """Scatter-gather query serving over hash-partitioned shard stores."""

    def __init__(
        self,
        store: ShardedTimeSeriesStore,
        *,
        rollups: Optional[Sequence[RollupManager]] = None,
        cache=None,
        enable_cache: bool = True,
        instant_quantum_s: float = 1.0,
    ) -> None:
        if rollups is not None and len(rollups) != store.n_shards:
            raise ValueError(
                f"need one rollup manager per shard: got {len(rollups)} for "
                f"{store.n_shards} shards"
            )
        super().__init__(
            store,
            rollups=None,
            cache=cache,
            enable_cache=enable_cache,
            instant_quantum_s=instant_quantum_s,
        )
        #: per-shard rollup managers, parallel to ``store.shards``
        self.shard_rollups = list(rollups) if rollups is not None else None
        self._tier_resolutions: Optional[List[float]] = (
            [t.resolution_s for t in self.shard_rollups[0].tiers]
            if self.shard_rollups
            else None
        )
        self.federated_queries = 0
        self.fanout_total = 0
        self.fanout_last = 0
        self._fold_task = None
        #: scatter-plan memo keyed by the store's per-metric series
        #: generation: group labels, per-shard worklists, group sizes,
        #: and fanout are recomputed only when the metric's key set
        #: changes
        self._plan_cache: Dict[
            MetricQuery, Tuple[int, List, List[ShardWork], List[int], int]
        ] = {}

    # ------------------------------------------------------------- rollups
    @classmethod
    def with_rollups(
        cls,
        store: ShardedTimeSeriesStore,
        *,
        resolutions: Sequence[float] = (10.0, 60.0, 600.0),
        capacity: int = 4096,
        **kwargs,
    ) -> "FederatedQueryEngine":
        """Build the engine plus one rollup cascade per shard."""
        managers = [
            RollupManager(shard, resolutions, capacity=capacity) for shard in store.shards
        ]
        return cls(store, rollups=managers, **kwargs)

    def fold_rollups(self, now: float) -> int:
        """Fold every shard's tiers up to ``now``; returns rows written."""
        return sum(m.fold(now) for m in self.shard_rollups or ())

    def attach_rollups(self, engine, period_s: Optional[float] = None, *, start_at=None) -> None:
        """Drive per-shard folding from a simulation engine, one task."""
        if not self.shard_rollups:
            return
        if self._fold_task is not None and not self._fold_task.stopped:
            raise RuntimeError("federated rollups already attached")
        period = period_s if period_s is not None else self._tier_resolutions[0]
        self._fold_task = engine.every(
            period, lambda: self.fold_rollups(engine.now), start_at=start_at,
            label="federated-rollup-fold",
        )

    def tier_resolutions(self) -> List[float]:
        """Per-shard rollup resolutions (identical across shards)."""
        return list(self._tier_resolutions) if self._tier_resolutions else []

    # ------------------------------------------------------------ standing
    def make_standing_provider(self) -> FederatedStandingProvider:
        """Shard-local standing state for :class:`StandingQueryEngine`."""
        return FederatedStandingProvider(self.store)

    # ----------------------------------------------------------- execution
    def _cache_version(self, q: MetricQuery):
        """Instant results additionally depend on per-shard fold state
        (the aged-out tier fallback), so mix the summed fold counter in."""
        epoch = self.store.metric_epoch(q.metric)
        if q.step_s is None and self.shard_rollups is not None:
            return (epoch, sum(m.folds for m in self.shard_rollups))
        return epoch

    def _plan(self, q: MetricQuery) -> Tuple[List, List[ShardWork], List[int], int]:
        """Grouped, shard-partitioned worklists for ``q`` (memoized)."""
        gen = self.store.series_generation(q.metric)
        plan = self._plan_cache.get(q)
        if plan is not None and plan[0] == gen:
            return plan[1], plan[2], plan[3], plan[4]
        keys = self.select(q)
        groups: Dict[Tuple[Tuple[str, str], ...], List[SeriesKey]] = {}
        for key in keys:
            groups.setdefault(q.group_key(key), []).append(key)
        sorted_labels = sorted(groups)
        group_sizes = [len(groups[labels]) for labels in sorted_labels]
        work: List[ShardWork] = [([], [], []) for _ in range(self.store.n_shards)]
        shard_index = self.store.shard_index
        for gidx, labels in enumerate(sorted_labels):
            for rank, key in enumerate(sorted(groups[labels], key=str)):
                wl = work[shard_index(key)]
                wl[0].append(key)
                wl[1].append(gidx)
                wl[2].append(rank)
        fanout = sum(1 for wl in work if wl[0])
        if len(self._plan_cache) > 4096:  # unbounded query shapes: reset
            self._plan_cache.clear()
        self._plan_cache[q] = (gen, sorted_labels, work, group_sizes, fanout)
        return sorted_labels, work, group_sizes, fanout

    def _execute(self, q: MetricQuery, at: float) -> QueryResult:
        t1 = float(at)
        sorted_labels, work, group_sizes, fanout = self._plan(q)
        t0 = t1 - q.range_s if q.range_s is not None else self._earliest(self.select(q), t1)
        self.federated_queries += 1
        self.fanout_last = fanout
        self.fanout_total += fanout

        step = q.step_s
        used_tier = False
        if step is not None:
            grid_t0, n_bins = self._grid(t0, t1, step)
            t1_hi = grid_t0 + n_bins * step  # exclusive right edge
            if q.agg == "rate":
                series = self._fed_rate(q, work, sorted_labels, grid_t0, t1_hi, step, n_bins)
            elif q.agg in PARTIAL_AGGS:
                series, used_tier = self._fed_partial(
                    q, work, sorted_labels, grid_t0, t1_hi, step, n_bins, group_sizes
                )
            else:
                series = self._fed_sampled(q, work, sorted_labels, grid_t0, t1_hi, step, n_bins)
        elif q.agg == "rate":
            series, used_tier = self._fed_instant_rate(
                q, work, sorted_labels, t0, t1, group_sizes
            )
        elif q.agg in PARTIAL_AGGS:
            series, used_tier = self._fed_partial(
                q, work, sorted_labels, t0, t1, None, 1, group_sizes
            )
        else:
            series = self._fed_sampled(q, work, sorted_labels, t0, t1, None, 1)

        if used_tier:
            source = "federated:rollup"
            self.served_rollup += 1
        else:
            source = "federated:raw"
            self.served_raw += 1
        return QueryResult(q, t0, t1, tuple(series), source)

    # ----------------------------------------------------- scatter dispatch
    def _scatter(self, kind: str, work: List[ShardWork], params: Dict) -> List:
        """Run one scatter pass over every touched shard.

        Always exactly one ``federated.scatter`` span per pass (when
        tracing), with per-shard ``scatter.shard`` children — the
        process-parallel engine overrides :meth:`_scatter_impl`, not
        this wrapper, so a serial pass, a pool dispatch, and a
        worker-death fallback all produce the same span tree shape.
        """
        if TRACER.enabled:
            with TRACER.span(
                "federated.scatter", kind=kind,
                fanout=sum(1 for wl in work if wl[0]),
            ):
                return self._scatter_impl(kind, work, params)
        return self._scatter_impl(kind, work, params)

    def _scatter_impl(self, kind: str, work: List[ShardWork], params: Dict) -> List:
        """One scatter pass over every touched shard, serially
        in-process.  The process-parallel engine overrides exactly this
        method to dispatch the same passes (same functions, sid-addressed
        readers) to its worker pool — plan and gather stay identical.
        """
        fn = SCATTER_FNS[kind]
        tier_idx = params.get("tier_idx")
        group_sizes = params.get("group_sizes")
        traced = TRACER.enabled
        out: List = [None] * len(work)
        for s, wl in enumerate(work):
            items, gidxs, ranks = wl
            if not items:
                continue
            manager = self.shard_rollups[s] if self.shard_rollups is not None else None
            tier = manager.tiers[tier_idx] if manager is not None and tier_idx is not None else None
            reader = KeyShardReader(self.store.shards[s], manager, tier)
            singleton = (
                [group_sizes[g] == 1 for g in gidxs] if group_sizes is not None else None
            )
            if traced:
                with TRACER.span("scatter.shard", shard=s, items=len(items)):
                    out[s] = fn(reader, items, gidxs, ranks, singleton, params)
            else:
                out[s] = fn(reader, items, gidxs, ranks, singleton, params)
        return out

    def _tier_index(self, step: Optional[float], agg: str) -> Optional[int]:
        if self._tier_resolutions is None:
            return None
        return select_tier_index(self._tier_resolutions, step, agg)

    # --------------------------------------------------- partial-agg path
    def _fed_partial(
        self,
        q: MetricQuery,
        work: List[ShardWork],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: Optional[float],
        n_bins: int,
        group_sizes: Optional[List[int]] = None,
    ) -> Tuple[List[ResultSeries], bool]:
        instant_tiers = (
            step is None and group_sizes is not None and self.shard_rollups is not None
        )
        params = {
            "grid_t0": grid_t0,
            "t1_hi": t1_hi,
            "step": step,
            "n_bins": n_bins,
            "tier_idx": self._tier_index(step, q.agg) if step is not None else None,
            "instant_tiers": instant_tiers,
            "group_sizes": group_sizes if instant_tiers else None,
        }
        entries: List[Dict[str, np.ndarray]] = []
        used_tier = False
        for res in self._scatter("partial", work, params):
            if res is None:
                continue
            entries.extend(res[0])
            used_tier = used_tier or res[1]
        if not entries:
            return [], used_tier
        return (
            self._reduce_partial(entries, q.agg, sorted_labels, grid_t0, step, n_bins),
            used_tier,
        )

    def _reduce_partial(
        self,
        entries: List[Dict[str, np.ndarray]],
        agg: str,
        sorted_labels: List,
        grid_t0: float,
        step: Optional[float],
        n_bins: int,
    ) -> List[ResultSeries]:
        """Merge per-series partial rows from every shard into output bins.

        The one canonical ``lexsort`` — ``(group, bin, last_t, source,
        rank)``, every key partition-independent — fixes both the
        summation order (bit-stable across shard counts) and the
        ``last`` winner (latest ``last_t``; ties prefer raw samples
        over tier rows, then the later-ranked series, exactly the
        single-store merge rule).
        """
        cols = {k: np.concatenate([e[k] for e in entries]) for k in entries[0]}
        order = np.lexsort(
            (cols["rank"], cols["source"], cols["last_t"], cols["bin"], cols["gidx"])
        )
        gidx = cols["gidx"][order]
        bins = cols["bin"][order]
        starts, ends = _segment_bounds(gidx * n_bins + bins)
        if agg == "mean":
            vals = np.add.reduceat(cols["sum"][order], starts) / np.add.reduceat(
                cols["count"][order], starts
            )
        elif agg == "sum":
            vals = np.add.reduceat(cols["sum"][order], starts)
        elif agg == "count":
            vals = np.add.reduceat(cols["count"][order], starts)
        elif agg == "min":
            vals = np.minimum.reduceat(cols["vmin"][order], starts)
        elif agg == "max":
            vals = np.maximum.reduceat(cols["vmax"][order], starts)
        else:  # last
            vals = cols["last_v"][order][ends - 1]
        return self._build_series(gidx[starts], bins[starts], vals, sorted_labels, grid_t0, step)

    # ------------------------------------------------------- sampled path
    def _fed_sampled(
        self,
        q: MetricQuery,
        work: List[ShardWork],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: Optional[float],
        n_bins: int,
    ) -> List[ResultSeries]:
        """Percentiles: pool raw samples per ``(group, bin)`` across shards.

        Percentile is a multiset statistic (the kernel value-sorts each
        bin), so pooling order cannot affect the result — bit-identical
        for every shard count by construction.
        """
        params = {"grid_t0": grid_t0, "t1_hi": t1_hi, "step": step, "n_bins": n_bins}
        parts = [r for r in self._scatter("sampled", work, params) if r is not None]
        if not parts:
            return []
        comp = np.concatenate([r["comp"] for r in parts])
        vals_in = np.concatenate([r["v"] for r in parts])
        nz, vals = grouped_aggregate(comp, vals_in, q.agg)
        return self._build_series(nz // n_bins, nz % n_bins, vals, sorted_labels, grid_t0, step)

    # ---------------------------------------------------------- rate path
    def _fed_rate(
        self,
        q: MetricQuery,
        work: List[ShardWork],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: float,
        n_bins: int,
    ) -> List[ResultSeries]:
        """Counter rate: per-series reset-clamped increases, summed per bin."""
        params = {"grid_t0": grid_t0, "t1_hi": t1_hi, "step": step, "n_bins": n_bins}
        parts = [r for r in self._scatter("rate", work, params) if r is not None]
        if not parts:
            return []
        e_gidx = np.concatenate([r["gidx"] for r in parts])
        e_rank = np.concatenate([r["rank"] for r in parts])
        e_bin = np.concatenate([r["bin"] for r in parts])
        e_inc = np.concatenate([r["inc"] for r in parts])
        order = np.lexsort((e_rank, e_bin, e_gidx))
        gidx = e_gidx[order]
        bin_o = e_bin[order]
        m_starts, _ = _segment_bounds(gidx * n_bins + bin_o)
        vals = np.add.reduceat(e_inc[order], m_starts) / step
        return self._build_series(
            gidx[m_starts], bin_o[m_starts], vals, sorted_labels, grid_t0, step
        )

    def _fed_instant_rate(
        self,
        q: MetricQuery,
        work: List[ShardWork],
        sorted_labels: List,
        t0: float,
        t1: float,
        group_sizes: Optional[List[int]] = None,
    ) -> Tuple[List[ResultSeries], bool]:
        span = t1 - t0
        if span <= 0:
            return [], False
        tier_fallback = group_sizes is not None and self.shard_rollups is not None
        params = {
            "t0": t0,
            "t1": t1,
            "tier_fallback": tier_fallback,
            "group_sizes": group_sizes if tier_fallback else None,
        }
        parts = []
        used_tier = False
        for res in self._scatter("instant_rate", work, params):
            if res is None:
                continue
            parts.append(res[0])
            used_tier = used_tier or res[1]
        if not parts:
            return [], used_tier
        e_gidx = np.concatenate([r["gidx"] for r in parts])
        e_rank = np.concatenate([r["rank"] for r in parts])
        e_total = np.concatenate([r["total"] for r in parts])
        order = np.lexsort((e_rank, e_gidx))
        gidx = e_gidx[order]
        m_starts, _ = _segment_bounds(gidx)
        totals = np.add.reduceat(e_total[order], m_starts)
        return self._build_series(
            gidx[m_starts],
            np.zeros(m_starts.size, dtype=np.int64),
            totals / span,
            sorted_labels,
            t0,
            None,
        ), used_tier

    # ------------------------------------------------------- samples path
    def samples(
        self,
        q: Union[str, MetricQuery],
        *,
        at: float,
        since: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw sample extraction fanned out across shards.

        Scatters per-shard window reads, then merges chunks back in the
        engine's **selection order** before the one stable time sort —
        reproducing the single-store pooling order exactly, so the
        result is bit-identical to :meth:`QueryEngine.samples` over the
        same data (cursor semantics included).
        """
        if isinstance(q, str):
            q = self.parse(q)
        self.samples_total += 1
        keys = self.select(q)
        t1 = float(at)
        t0 = t1 - q.range_s if q.range_s is not None else self._earliest(keys, t1)
        if since is not None:
            t0 = max(t0, since)
        work: List[ShardWork] = [([], [], []) for _ in range(self.store.n_shards)]
        shard_index = self.store.shard_index
        for sel_idx, key in enumerate(keys):
            wl = work[shard_index(key)]
            wl[0].append(key)
            wl[1].append(sel_idx)  # selection position, not a group index
            wl[2].append(0)
        params = {"t0": t0, "t1": t1, "since": since}
        chunks: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for res in self._scatter("samples", work, params):
            if res is None:
                continue
            chunks.extend(zip(res["sel"], res["times"], res["values"]))
        if not chunks:
            return np.empty(0), np.empty(0)
        chunks.sort(key=lambda c: c[0])
        times = np.concatenate([c[1] for c in chunks])
        values = np.concatenate([c[2] for c in chunks])
        if len(chunks) > 1:
            order = np.argsort(times, kind="stable")
            times, values = times[order], values[order]
        return times, values

    # ------------------------------------------------------------- output
    def _build_series(
        self,
        out_gidx: np.ndarray,
        out_bins: np.ndarray,
        vals: np.ndarray,
        sorted_labels: List,
        grid_t0: float,
        step: Optional[float],
    ) -> List[ResultSeries]:
        """Slice reduced ``(group, bin)`` rows into per-group result series."""
        series: List[ResultSeries] = []
        g_starts, g_ends = _segment_bounds(out_gidx)
        if step is None:
            times_all = np.full(out_bins.size, grid_t0)
        else:
            times_all = grid_t0 + out_bins * step
        times_all.flags.writeable = False
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        vals.flags.writeable = False
        for g, lo, hi in zip(
            out_gidx[g_starts].tolist(), g_starts.tolist(), g_ends.tolist()
        ):
            # slices of frozen arrays inherit non-writeability — no
            # per-group freeze or copy needed
            series.append(ResultSeries(sorted_labels[g], times_all[lo:hi], vals[lo:hi]))
        return series

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["shards"] = float(self.store.n_shards)
        out["federated_queries"] = float(self.federated_queries)
        out["fanout_total"] = float(self.fanout_total)
        out["fanout_mean"] = self.fanout_total / max(1, self.federated_queries)
        if self.shard_rollups:
            folds = 0.0
            tier_rows: Dict[str, float] = {}
            for manager in self.shard_rollups:
                for k, v in manager.stats().items():
                    if k == "folds":
                        folds += v
                    else:
                        tier_rows[k] = tier_rows.get(k, 0.0) + v
            out["rollup_folds"] = folds
            out.update({f"rollup_{k}": v for k, v in tier_rows.items()})
        return out
