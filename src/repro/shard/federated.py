"""Federated scatter-gather query engine over a sharded store.

:class:`FederatedQueryEngine` implements the full
:class:`~repro.query.engine.QueryEngine` API (``query`` / ``scalar`` /
``samples`` / ``select`` / caching) over a
:class:`~repro.shard.store.ShardedTimeSeriesStore`.  Execution is a
three-stage scatter-gather:

1. **Plan** — resolve matchers to series keys, assign each key its
   output group (``gidx``) and its canonical rank within the group, and
   partition the work by owning shard.
2. **Scatter** — each touched shard computes *per-series partial rows*:
   windowed reads stitched from the shard's rollup tier plus its raw
   tail, reduced per ``(series, bin)`` with ``reduceat`` over composite
   keys (sum/count/min/max/last partials, counter increases for
   ``rate``, pooled samples for percentiles).  No per-group Python
   loops — a shard's whole worklist is one vectorized pass.
3. **Gather** — partial rows from every shard are concatenated, sorted
   into one **canonical order** ``(group, bin, last_t, source, rank)``
   that is independent of how series are partitioned, and reduced to
   output bins with ``reduceat`` kernels.

Because per-series arithmetic happens on exactly one shard (a series
never splits) and the cross-series reduction runs in a
partition-independent order, the result is **bit-identical for every
shard count** — the property tests pin the federated result against the
same engine running over a single-shard store.  Against the legacy
per-group :class:`QueryEngine`, results are equal up to floating-point
association (≤1e-9 relative), since that engine pools samples in a
different (but equally valid) summation order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.query.engine import (
    QueryEngine,
    QueryResult,
    ResultSeries,
    instant_tier_partials,
)
from repro.query.kernels import PARTIAL_AGGS, counter_increase, grouped_aggregate
from repro.query.model import MetricQuery
from repro.query.rollup import RollupManager
from repro.shard.store import ShardedTimeSeriesStore
from repro.telemetry.metric import SeriesKey

#: One shard's worklist: ``(key, group index, rank within group)``.
WorkItem = Tuple[SeriesKey, int, int]


def _segment_bounds(comp: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of the runs of a nondecreasing int array."""
    if comp.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    bounds = np.flatnonzero(comp[1:] != comp[:-1]) + 1
    return (
        np.concatenate(([0], bounds)),
        np.concatenate((bounds, [comp.size])),
    )


def _bin_of(times: np.ndarray, grid_t0: float, step: Optional[float]) -> np.ndarray:
    if step is None:  # instant query: everything pools into one bin
        return np.zeros(times.size, dtype=np.int64)
    return ((times - grid_t0) // step).astype(np.int64)


def _sample_entries(
    t_chunks: List[np.ndarray],
    v_chunks: List[np.ndarray],
    gidxs: List[int],
    ranks: List[int],
    grid_t0: float,
    step: Optional[float],
    n_bins: int,
) -> Dict[str, np.ndarray]:
    """Per-``(series, bin)`` partial rows from raw sample windows.

    Chunks are per-series and time-sorted, so the composite key
    ``series_pos * n_bins + bin`` is nondecreasing over the pooled
    columns and every statistic reduces with one ``reduceat`` pass —
    ``last`` falls out of the segment tails (latest time; ties resolve
    to the later sample, matching the single-store semantics).
    """
    lens = np.fromiter((c.size for c in t_chunks), dtype=np.int64, count=len(t_chunks))
    t = np.concatenate(t_chunks)
    v = np.concatenate(v_chunks)
    series_pos = np.repeat(np.arange(lens.size), lens)
    bins = _bin_of(t, grid_t0, step)
    starts, ends = _segment_bounds(series_pos * n_bins + bins)
    sel = series_pos[starts]
    return {
        "gidx": np.asarray(gidxs, dtype=np.int64)[sel],
        "rank": np.asarray(ranks, dtype=np.int64)[sel],
        "bin": bins[starts],
        "source": np.ones(starts.size, dtype=np.int64),  # samples beat rows on last_t ties
        "sum": np.add.reduceat(v, starts),
        "count": (ends - starts).astype(np.float64),
        "vmin": np.minimum.reduceat(v, starts),
        "vmax": np.maximum.reduceat(v, starts),
        "last_t": t[ends - 1],
        "last_v": v[ends - 1],
    }


def _row_entries(
    row_chunks: List[Dict[str, np.ndarray]],
    gidxs: List[int],
    ranks: List[int],
    grid_t0: float,
    step: float,
    n_bins: int,
) -> Dict[str, np.ndarray]:
    """Per-``(series, bin)`` partial rows from rollup-tier rows."""
    lens = np.fromiter(
        (c["time"].size for c in row_chunks), dtype=np.int64, count=len(row_chunks)
    )
    cols = {
        name: np.concatenate([c[name] for c in row_chunks])
        for name in ("time", "sum", "count", "min", "max", "last_t", "last_v")
    }
    series_pos = np.repeat(np.arange(lens.size), lens)
    bins = _bin_of(cols["time"], grid_t0, step)
    starts, ends = _segment_bounds(series_pos * n_bins + bins)
    sel = series_pos[starts]
    return {
        "gidx": np.asarray(gidxs, dtype=np.int64)[sel],
        "rank": np.asarray(ranks, dtype=np.int64)[sel],
        "bin": bins[starts],
        "source": np.zeros(starts.size, dtype=np.int64),
        "sum": np.add.reduceat(cols["sum"], starts),
        "count": np.add.reduceat(cols["count"], starts),
        "vmin": np.minimum.reduceat(cols["min"], starts),
        "vmax": np.maximum.reduceat(cols["max"], starts),
        # tier rows of one series are time-ordered, so the segment tail
        # carries the latest underlying sample of the (series, bin)
        "last_t": cols["last_t"][ends - 1],
        "last_v": cols["last_v"][ends - 1],
    }


class FederatedQueryEngine(QueryEngine):
    """Scatter-gather query serving over hash-partitioned shard stores."""

    def __init__(
        self,
        store: ShardedTimeSeriesStore,
        *,
        rollups: Optional[Sequence[RollupManager]] = None,
        cache=None,
        enable_cache: bool = True,
        instant_quantum_s: float = 1.0,
    ) -> None:
        if rollups is not None and len(rollups) != store.n_shards:
            raise ValueError(
                f"need one rollup manager per shard: got {len(rollups)} for "
                f"{store.n_shards} shards"
            )
        super().__init__(
            store,
            rollups=None,
            cache=cache,
            enable_cache=enable_cache,
            instant_quantum_s=instant_quantum_s,
        )
        #: per-shard rollup managers, parallel to ``store.shards``
        self.shard_rollups = list(rollups) if rollups is not None else None
        self.federated_queries = 0
        self.fanout_total = 0
        self.fanout_last = 0
        self._fold_task = None
        #: scatter-plan memo keyed by the store's per-metric series
        #: generation: group labels, per-shard worklists, group sizes,
        #: and fanout are recomputed only when the metric's key set
        #: changes
        self._plan_cache: Dict[
            MetricQuery, Tuple[int, List, List[List[WorkItem]], List[int], int]
        ] = {}

    # ------------------------------------------------------------- rollups
    @classmethod
    def with_rollups(
        cls,
        store: ShardedTimeSeriesStore,
        *,
        resolutions: Sequence[float] = (10.0, 60.0, 600.0),
        capacity: int = 4096,
        **kwargs,
    ) -> "FederatedQueryEngine":
        """Build the engine plus one rollup cascade per shard."""
        managers = [
            RollupManager(shard, resolutions, capacity=capacity) for shard in store.shards
        ]
        return cls(store, rollups=managers, **kwargs)

    def fold_rollups(self, now: float) -> int:
        """Fold every shard's tiers up to ``now``; returns rows written."""
        return sum(m.fold(now) for m in self.shard_rollups or ())

    def attach_rollups(self, engine, period_s: Optional[float] = None, *, start_at=None) -> None:
        """Drive per-shard folding from a simulation engine, one task."""
        if not self.shard_rollups:
            return
        if self._fold_task is not None and not self._fold_task.stopped:
            raise RuntimeError("federated rollups already attached")
        period = period_s if period_s is not None else self.shard_rollups[0].tiers[0].resolution_s
        self._fold_task = engine.every(
            period, lambda: self.fold_rollups(engine.now), start_at=start_at,
            label="federated-rollup-fold",
        )

    # ----------------------------------------------------------- execution
    def _cache_version(self, q: MetricQuery):
        """Instant results additionally depend on per-shard fold state
        (the aged-out tier fallback), so mix the summed fold counter in."""
        epoch = self.store.metric_epoch(q.metric)
        if q.step_s is None and self.shard_rollups is not None:
            return (epoch, sum(m.folds for m in self.shard_rollups))
        return epoch

    def _execute(self, q: MetricQuery, at: float) -> QueryResult:
        t1 = float(at)
        gen = self.store.series_generation(q.metric)
        plan = self._plan_cache.get(q)
        if plan is not None and plan[0] == gen:
            _, sorted_labels, work, group_sizes, fanout = plan
        else:
            keys = self.select(q)
            groups: Dict[Tuple[Tuple[str, str], ...], List[SeriesKey]] = {}
            for key in keys:
                groups.setdefault(q.group_key(key), []).append(key)
            sorted_labels = sorted(groups)
            group_sizes = [len(groups[labels]) for labels in sorted_labels]
            work = [[] for _ in range(self.store.n_shards)]
            shard_index = self.store.shard_index
            for gidx, labels in enumerate(sorted_labels):
                for rank, key in enumerate(sorted(groups[labels], key=str)):
                    work[shard_index(key)].append((key, gidx, rank))
            fanout = sum(1 for wl in work if wl)
            if len(self._plan_cache) > 4096:  # unbounded query shapes: reset
                self._plan_cache.clear()
            self._plan_cache[q] = (gen, sorted_labels, work, group_sizes, fanout)
        t0 = t1 - q.range_s if q.range_s is not None else self._earliest(self.select(q), t1)
        self.federated_queries += 1
        self.fanout_last = fanout
        self.fanout_total += fanout

        step = q.step_s
        used_tier = False
        if step is not None:
            grid_t0, n_bins = self._grid(t0, t1, step)
            t1_hi = grid_t0 + n_bins * step  # exclusive right edge
            if q.agg == "rate":
                series = self._fed_rate(q, work, sorted_labels, grid_t0, t1_hi, step, n_bins)
            elif q.agg in PARTIAL_AGGS:
                series, used_tier = self._fed_partial(
                    q, work, sorted_labels, grid_t0, t1_hi, step, n_bins, group_sizes
                )
            else:
                series = self._fed_sampled(q, work, sorted_labels, grid_t0, t1_hi, step, n_bins)
        elif q.agg == "rate":
            series = self._fed_instant_rate(q, work, sorted_labels, t0, t1)
        elif q.agg in PARTIAL_AGGS:
            series, used_tier = self._fed_partial(
                q, work, sorted_labels, t0, t1, None, 1, group_sizes
            )
        else:
            series = self._fed_sampled(q, work, sorted_labels, t0, t1, None, 1)

        if used_tier:
            source = "federated:rollup"
            self.served_rollup += 1
        else:
            source = "federated:raw"
            self.served_raw += 1
        return QueryResult(q, t0, t1, tuple(series), source)

    def _shard_raw_window(self, shard, key: SeriesKey, lo: float, hi: float, step):
        """Raw window read on one shard: ``[lo, hi)`` for range queries
        (half-open bins), ``[lo, hi]`` inclusive for instant queries."""
        times, values = shard.query(key, lo, hi)
        if step is not None and times.size and times[-1] >= hi:
            keep = times < hi
            times, values = times[keep], values[keep]
        return times, values

    # --------------------------------------------------- partial-agg path
    def _fed_partial(
        self,
        q: MetricQuery,
        work: List[List[WorkItem]],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: Optional[float],
        n_bins: int,
        group_sizes: Optional[List[int]] = None,
    ) -> Tuple[List[ResultSeries], bool]:
        entries: List[Dict[str, np.ndarray]] = []
        used_tier = False
        instant_tiers = (
            step is None and group_sizes is not None and self.shard_rollups is not None
        )
        for s, wl in enumerate(work):
            if not wl:
                continue
            shard = self.store.shards[s]
            tier = None
            if step is not None and self.shard_rollups is not None:
                tier = self.shard_rollups[s].tier_for(step, q.agg)
            st_chunks: List[np.ndarray] = []
            sv_chunks: List[np.ndarray] = []
            s_gidx: List[int] = []
            s_rank: List[int] = []
            row_chunks: List[Dict[str, np.ndarray]] = []
            r_gidx: List[int] = []
            r_rank: List[int] = []
            synth: List[Tuple[int, Dict[str, float]]] = []
            for key, gidx, rank in wl:
                cut = grid_t0
                if tier is not None:
                    wm = tier.watermark(key)
                    if wm is not None:
                        cut = min(max(wm, grid_t0), t1_hi)
                    rows = tier.window(key, grid_t0, cut)
                    if rows is not None and rows["time"].size:
                        row_chunks.append(rows)
                        r_gidx.append(gidx)
                        r_rank.append(rank)
                times, values = self._shard_raw_window(shard, key, cut, t1_hi, step)
                if times.size:
                    st_chunks.append(times)
                    sv_chunks.append(values)
                    s_gidx.append(gidx)
                    s_rank.append(rank)
                elif instant_tiers and group_sizes[gidx] == 1:
                    # mirror the single-store engine: a singleton group
                    # whose raw ring aged past the window is served from
                    # the shard's tiers (per-series and shard-local, so
                    # still partition-invariant)
                    row = instant_tier_partials(
                        shard, self.shard_rollups[s], key, grid_t0, t1_hi
                    )
                    if row is not None:
                        synth.append((gidx, row))
            if row_chunks:
                used_tier = True
                entries.append(
                    _row_entries(row_chunks, r_gidx, r_rank, grid_t0, step, n_bins)
                )
            if st_chunks:
                entries.append(
                    _sample_entries(st_chunks, sv_chunks, s_gidx, s_rank, grid_t0, step, n_bins)
                )
            if synth:
                used_tier = True
                entries.append(
                    {
                        "gidx": np.array([g for g, _ in synth], dtype=np.int64),
                        "rank": np.zeros(len(synth), dtype=np.int64),
                        "bin": np.zeros(len(synth), dtype=np.int64),
                        "source": np.zeros(len(synth), dtype=np.int64),
                        "sum": np.array([r["sum"] for _, r in synth]),
                        "count": np.array([r["count"] for _, r in synth]),
                        "vmin": np.array([r["min"] for _, r in synth]),
                        "vmax": np.array([r["max"] for _, r in synth]),
                        "last_t": np.array([r["last_t"] for _, r in synth]),
                        "last_v": np.array([r["last_v"] for _, r in synth]),
                    }
                )
        if not entries:
            return [], used_tier
        return (
            self._reduce_partial(entries, q.agg, sorted_labels, grid_t0, step, n_bins),
            used_tier,
        )

    def _reduce_partial(
        self,
        entries: List[Dict[str, np.ndarray]],
        agg: str,
        sorted_labels: List,
        grid_t0: float,
        step: Optional[float],
        n_bins: int,
    ) -> List[ResultSeries]:
        """Merge per-series partial rows from every shard into output bins.

        The one canonical ``lexsort`` — ``(group, bin, last_t, source,
        rank)``, every key partition-independent — fixes both the
        summation order (bit-stable across shard counts) and the
        ``last`` winner (latest ``last_t``; ties prefer raw samples
        over tier rows, then the later-ranked series, exactly the
        single-store merge rule).
        """
        cols = {k: np.concatenate([e[k] for e in entries]) for k in entries[0]}
        order = np.lexsort(
            (cols["rank"], cols["source"], cols["last_t"], cols["bin"], cols["gidx"])
        )
        gidx = cols["gidx"][order]
        bins = cols["bin"][order]
        starts, ends = _segment_bounds(gidx * n_bins + bins)
        if agg == "mean":
            vals = np.add.reduceat(cols["sum"][order], starts) / np.add.reduceat(
                cols["count"][order], starts
            )
        elif agg == "sum":
            vals = np.add.reduceat(cols["sum"][order], starts)
        elif agg == "count":
            vals = np.add.reduceat(cols["count"][order], starts)
        elif agg == "min":
            vals = np.minimum.reduceat(cols["vmin"][order], starts)
        elif agg == "max":
            vals = np.maximum.reduceat(cols["vmax"][order], starts)
        else:  # last
            vals = cols["last_v"][order][ends - 1]
        return self._build_series(gidx[starts], bins[starts], vals, sorted_labels, grid_t0, step)

    # ------------------------------------------------------- sampled path
    def _fed_sampled(
        self,
        q: MetricQuery,
        work: List[List[WorkItem]],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: Optional[float],
        n_bins: int,
    ) -> List[ResultSeries]:
        """Percentiles: pool raw samples per ``(group, bin)`` across shards.

        Percentile is a multiset statistic (the kernel value-sorts each
        bin), so pooling order cannot affect the result — bit-identical
        for every shard count by construction.
        """
        v_chunks: List[np.ndarray] = []
        comp_chunks: List[np.ndarray] = []
        for s, wl in enumerate(work):
            if not wl:
                continue
            shard = self.store.shards[s]
            for key, gidx, rank in wl:
                times, values = self._shard_raw_window(shard, key, grid_t0, t1_hi, step)
                if times.size:
                    v_chunks.append(values)
                    comp_chunks.append(gidx * n_bins + _bin_of(times, grid_t0, step))
        if not v_chunks:
            return []
        comp = np.concatenate(comp_chunks)
        nz, vals = grouped_aggregate(comp, np.concatenate(v_chunks), q.agg)
        return self._build_series(nz // n_bins, nz % n_bins, vals, sorted_labels, grid_t0, step)

    # ---------------------------------------------------------- rate path
    def _fed_rate(
        self,
        q: MetricQuery,
        work: List[List[WorkItem]],
        sorted_labels: List,
        grid_t0: float,
        t1_hi: float,
        step: float,
        n_bins: int,
    ) -> List[ResultSeries]:
        """Counter rate: per-series reset-clamped increases, summed per bin."""
        inc_chunks: List[np.ndarray] = []
        bin_chunks: List[np.ndarray] = []
        g_list: List[int] = []
        r_list: List[int] = []
        for s, wl in enumerate(work):
            if not wl:
                continue
            shard = self.store.shards[s]
            for key, gidx, rank in wl:
                times, values = self._shard_raw_window(shard, key, grid_t0, t1_hi, step)
                if times.size < 2:
                    continue
                inc_chunks.append(counter_increase(values))
                bin_chunks.append(_bin_of(times[1:], grid_t0, step))
                g_list.append(gidx)
                r_list.append(rank)
        if not inc_chunks:
            return []
        lens = np.fromiter((c.size for c in inc_chunks), dtype=np.int64, count=len(inc_chunks))
        inc = np.concatenate(inc_chunks)
        bins = np.concatenate(bin_chunks)
        series_pos = np.repeat(np.arange(lens.size), lens)
        starts, ends = _segment_bounds(series_pos * n_bins + bins)
        sel = series_pos[starts]
        e_gidx = np.asarray(g_list, dtype=np.int64)[sel]
        e_rank = np.asarray(r_list, dtype=np.int64)[sel]
        e_bin = bins[starts]
        e_inc = np.add.reduceat(inc, starts)
        order = np.lexsort((e_rank, e_bin, e_gidx))
        gidx = e_gidx[order]
        bin_o = e_bin[order]
        m_starts, _ = _segment_bounds(gidx * n_bins + bin_o)
        vals = np.add.reduceat(e_inc[order], m_starts) / step
        return self._build_series(
            gidx[m_starts], bin_o[m_starts], vals, sorted_labels, grid_t0, step
        )

    def _fed_instant_rate(
        self,
        q: MetricQuery,
        work: List[List[WorkItem]],
        sorted_labels: List,
        t0: float,
        t1: float,
    ) -> List[ResultSeries]:
        span = t1 - t0
        if span <= 0:
            return []
        inc_chunks: List[np.ndarray] = []
        g_list: List[int] = []
        r_list: List[int] = []
        for s, wl in enumerate(work):
            if not wl:
                continue
            shard = self.store.shards[s]
            for key, gidx, rank in wl:
                _, values = shard.query(key, t0, t1)
                inc = counter_increase(values)
                if inc.size:
                    inc_chunks.append(inc)
                    g_list.append(gidx)
                    r_list.append(rank)
        if not inc_chunks:
            return []
        lens = np.fromiter((c.size for c in inc_chunks), dtype=np.int64, count=len(inc_chunks))
        series_pos = np.repeat(np.arange(lens.size), lens)
        starts, _ = _segment_bounds(series_pos)
        e_inc = np.add.reduceat(np.concatenate(inc_chunks), starts)
        e_gidx = np.asarray(g_list, dtype=np.int64)
        e_rank = np.asarray(r_list, dtype=np.int64)
        order = np.lexsort((e_rank, e_gidx))
        gidx = e_gidx[order]
        m_starts, _ = _segment_bounds(gidx)
        totals = np.add.reduceat(e_inc[order], m_starts)
        return self._build_series(
            gidx[m_starts],
            np.zeros(m_starts.size, dtype=np.int64),
            totals / span,
            sorted_labels,
            t0,
            None,
        )

    # ------------------------------------------------------------- output
    def _build_series(
        self,
        out_gidx: np.ndarray,
        out_bins: np.ndarray,
        vals: np.ndarray,
        sorted_labels: List,
        grid_t0: float,
        step: Optional[float],
    ) -> List[ResultSeries]:
        """Slice reduced ``(group, bin)`` rows into per-group result series."""
        series: List[ResultSeries] = []
        g_starts, g_ends = _segment_bounds(out_gidx)
        if step is None:
            times_all = np.full(out_bins.size, grid_t0)
        else:
            times_all = grid_t0 + out_bins * step
        times_all.flags.writeable = False
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        vals.flags.writeable = False
        for g, lo, hi in zip(
            out_gidx[g_starts].tolist(), g_starts.tolist(), g_ends.tolist()
        ):
            # slices of frozen arrays inherit non-writeability — no
            # per-group freeze or copy needed
            series.append(ResultSeries(sorted_labels[g], times_all[lo:hi], vals[lo:hi]))
        return series

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["shards"] = float(self.store.n_shards)
        out["federated_queries"] = float(self.federated_queries)
        out["fanout_total"] = float(self.fanout_total)
        out["fanout_mean"] = self.fanout_total / max(1, self.federated_queries)
        if self.shard_rollups:
            folds = 0.0
            tier_rows: Dict[str, float] = {}
            for manager in self.shard_rollups:
                for k, v in manager.stats().items():
                    if k == "folds":
                        folds += v
                    else:
                        tier_rows[k] = tier_rows.get(k, 0.0) + v
            out["rollup_folds"] = folds
            out.update({f"rollup_{k}": v for k, v in tier_rows.items()})
        return out
