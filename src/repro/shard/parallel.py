"""Process-parallel shard execution over shared-memory columns.

This module is the parallel tier of the shard stack: shard ring buffers
and rollup tiers are relocated into ``multiprocessing.shared_memory``
blocks, and a persistent pool of worker processes executes per-shard
work — scatter passes for federated queries, segment appends plus tier-0
rollup folds for ingest, and full tier cascades — directly against those
columns.  Only task metadata and per-shard *partial results* cross the
process boundary; the sample columns themselves never move.

Layering (parent process owns everything above the pipe):

* :class:`SharedArena` / :class:`_BlockCache` — bump-pointer allocation
  of NumPy arrays inside shared-memory blocks, addressed by portable
  descriptors ``(block, offset, count, dtype)`` that any process can
  attach on demand.
* :class:`SharedRingBuffer` / :class:`SharedStatRing` — the existing
  ring structures with storage relocated into an arena and their mutable
  ints (head/count/written) mirrored in a tiny shared meta array, synced
  at mutation boundaries so either side sees the other's writes.
* :class:`SharedTimeSeriesStore` — a per-shard
  :class:`~repro.telemetry.tsdb.TimeSeriesStore` whose rings live in the
  arena; ring creation is announced to the worker through a per-shard
  **event log** so the worker's sid-addressed mirror stays consistent.
* :class:`TierFolder` — sid-addressed rollup folding built on the fold
  primitives of :mod:`repro.query.rollup`; runs inside workers (and in
  the parent when degraded) and produces bit-identical tier rows to
  :class:`~repro.query.rollup.RollupManager` on the same inputs.
* :class:`ShardWorkerPool` — worker lifecycle, the per-shard event logs,
  batched task dispatch with crash detection, and shared-memory result
  transport.
* :class:`ParallelShardedStore` / :class:`ParallelFederatedQueryEngine`
  — the sharded store facade and federated engine with ingest and
  scatter dispatched to the pool; every parallel path degrades to the
  inherited serial implementation when the pool is unavailable or a
  worker dies, so correctness never depends on the pool being healthy.

Determinism: workers compute exactly the per-shard passes the serial
engine runs (same :data:`~repro.shard.federated.SCATTER_FNS` functions,
sid-addressed readers), and the parent's gather is the canonical
partition-invariant merge — so parallel results are **bit-identical** to
serial execution for every worker count.
"""

from __future__ import annotations

import math
import os
import traceback
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import TRACER
from repro.query.engine import instant_tier_partials, instant_tier_rate
from repro.query.rollup import (
    ROW_COLUMNS,
    _StatRing,
    fold_cascade_rows,
    fold_rawscan_rows,
    fold_segment_rows,
)
from repro.query.standing import StandingGrid, concat_entries
from repro.shard.federated import SCATTER_FNS, FederatedQueryEngine, ShardWork
from repro.shard.store import ShardedTimeSeriesStore
from repro.telemetry.batch import sort_series_columns
from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import (
    RingBuffer,
    TimeSeriesStore,
    segment_notify_columns,
)

#: Sentinel dispatch result for tasks lost to a dead worker.
WORKER_DIED = object()

#: Arrays at or above this many bytes travel through shared memory;
#: smaller ones are pickled inline with the reply (cheaper than a block).
_INLINE_MAX = 1 << 14


def _unregister_shm(shm: shared_memory.SharedMemory, name: str) -> None:
    """Detach a block from this process's resource tracker.

    Attachers (and creators whose blocks outlive them, like worker
    arenas the parent unlinks later) must not let the tracker unlink
    the block when this process exits — on 3.10–3.12 every
    ``SharedMemory`` is registered unconditionally, so a dying worker
    would otherwise tear down blocks the parent still maps.
    """
    try:
        resource_tracker.unregister(getattr(shm, "_name", name), "shared_memory")
    except Exception:
        pass


#: Whether attaching a block must be followed by a tracker unregister.
#: True in any process with its *own* resource tracker (the parent, and
#: spawn-started workers): there, an attach-registration would make this
#: process's tracker unlink the block when the process dies, tearing
#: down storage another process still maps.  Fork-started workers set
#: this False in ``_worker_main``: they share the parent's tracker, its
#: cache is a plain set, and the extra unregister would cancel the
#: creator's registration.
_UNREGISTER_ON_ATTACH = True


def _attach_block(name: str) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(name=name)
    if _UNREGISTER_ON_ATTACH:
        _unregister_shm(shm, name)
    return shm


def _unlink_block(name: str) -> None:
    """Best-effort unlink of a block by name (idempotent).

    No manual tracker bookkeeping here: on the Pythons this targets the
    attach registers with the resource tracker and ``unlink`` issues the
    matching unregister, so the pair stays balanced.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        shm.close()
        shm.unlink()
    except Exception:
        pass


class SharedArena:
    """Bump-pointer allocator of NumPy arrays inside shared-memory blocks.

    Allocations return ``(array, descriptor)`` where the descriptor
    ``(block_name, offset, count, dtype_str)`` lets any process attach
    the same storage via :class:`_BlockCache`.  Blocks are zero-filled
    on creation (fresh pages), never reused or freed individually; the
    arena is the allocation unit for long-lived ring storage and for
    per-batch result transport.
    """

    def __init__(self, prefix: str, block_bytes: int = 1 << 22, *, untrack: bool = False) -> None:
        self.prefix = prefix
        self.block_bytes = int(block_bytes)
        self._blocks: List[Tuple[str, shared_memory.SharedMemory]] = []
        self._cur: Optional[shared_memory.SharedMemory] = None
        self._cur_name = ""
        self._off = 0
        self._seq = 0
        #: names of blocks created since the last :meth:`drain_new_names`
        self._new_names: List[str] = []
        self._untrack = untrack

    @property
    def block_names(self) -> List[str]:
        return [name for name, _ in self._blocks]

    def drain_new_names(self) -> List[str]:
        names, self._new_names = self._new_names, []
        return names

    def alloc(self, count: int, dtype=np.float64) -> Tuple[np.ndarray, Tuple[str, int, int, str]]:
        dt = np.dtype(dtype)
        nbytes = int(count) * dt.itemsize
        aligned = (nbytes + 7) & ~7
        if self._cur is None or self._off + aligned > self._cur.size:
            size = max(self.block_bytes, aligned, 8)
            name = f"{self.prefix}.{os.getpid()}.{self._seq}"
            self._seq += 1
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            if self._untrack:
                _unregister_shm(shm, name)
            self._blocks.append((name, shm))
            self._new_names.append(name)
            self._cur, self._cur_name, self._off = shm, name, 0
        arr = np.ndarray((int(count),), dtype=dt, buffer=self._cur.buf, offset=self._off)
        desc = (self._cur_name, self._off, int(count), dt.str)
        self._off += aligned
        return arr, desc

    def close(self, *, unlink: bool) -> None:
        for name, shm in self._blocks:
            try:
                shm.close()
            except BufferError:
                pass  # a view is still alive; the mapping outlives us
            if unlink:
                # unlink even while mapped (POSIX keeps live mappings
                # valid) — skipping it would leak the block and leave a
                # stale resource-tracker registration
                try:
                    shm.unlink()
                except Exception:
                    pass
        self._blocks = []
        self._cur = None


class _BlockCache:
    """Name → attached ``SharedMemory`` map with descriptor views."""

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}

    def view(self, desc: Tuple[str, int, int, str]) -> np.ndarray:
        name, off, count, dt = desc
        shm = self._blocks.get(name)
        if shm is None:
            shm = self._blocks[name] = _attach_block(name)
        return np.ndarray((count,), dtype=np.dtype(dt), buffer=shm.buf, offset=off)

    def close(self) -> None:
        for shm in self._blocks.values():
            try:
                shm.close()
            except BufferError:
                pass
        self._blocks = {}


# --------------------------------------------------------------------------
# Shared ring structures.


class SharedRingBuffer(RingBuffer):
    """A :class:`RingBuffer` whose columns and mutable ints live in shm.

    The buffer-relocatable base already stores samples in caller-provided
    arrays; this subclass adds a 3-slot ``int64`` meta array —
    ``(head, count, written)``.  While ``lazy`` is set (workers always;
    the parent once the pool is live) every mutation syncs the meta
    **into** the Python ints first and **out of** them after, and every
    read re-syncs in, so writes from either side of the process boundary
    are immediately visible to the other.  Before the pool is live the
    ring behaves exactly like the in-process base — no per-operation
    loads or stores — and :meth:`SharedTimeSeriesStore.mark_shared`
    publishes the accumulated state in one flush when the mode flips.
    """

    __slots__ = ("_meta", "_lazy", "descs")

    META_SLOTS = 3

    def __init__(
        self,
        capacity: int,
        times: np.ndarray,
        values: np.ndarray,
        meta: np.ndarray,
        *,
        lazy: bool = False,
        descs: Tuple = (),
    ) -> None:
        super().__init__(capacity, times=times, values=values)
        self._meta = meta
        self._lazy = lazy
        self.descs = descs
        self._sync_in()

    @classmethod
    def create(cls, arena: SharedArena, capacity: int) -> "SharedRingBuffer":
        t_arr, t_desc = arena.alloc(capacity)
        v_arr, v_desc = arena.alloc(capacity)
        m_arr, m_desc = arena.alloc(cls.META_SLOTS, dtype=np.int64)
        return cls(capacity, t_arr, v_arr, m_arr, descs=(t_desc, v_desc, m_desc))

    @classmethod
    def attach(
        cls, cache: _BlockCache, capacity: int, t_desc, v_desc, m_desc
    ) -> "SharedRingBuffer":
        return cls(
            capacity,
            cache.view(t_desc),
            cache.view(v_desc),
            cache.view(m_desc),
            lazy=True,
            descs=(t_desc, v_desc, m_desc),
        )

    def _sync_in(self) -> None:
        m = self._meta
        self._head = int(m[0])
        self._count = int(m[1])
        self._written = int(m[2])

    def _sync_out(self) -> None:
        m = self._meta
        m[0] = self._head
        m[1] = self._count
        m[2] = self._written

    # mutations: in shared mode, pick up the other side's state, write,
    # publish.  Before the pool is live (``lazy`` unset) the Python ints
    # are authoritative and no cross-process reader exists, so mutations
    # skip the meta round-trip entirely — ``mark_shared()`` flushes the
    # final pre-pool state exactly once when the mode flips.
    def append(self, t: float, v: float) -> None:
        if not self._lazy:
            super().append(t, v)
            return
        self._sync_in()
        super().append(t, v)
        self._sync_out()

    def extend(self, times: np.ndarray, values: np.ndarray) -> None:
        if not self._lazy:
            super().extend(times, values)
            return
        self._sync_in()
        super().extend(times, values)
        self._sync_out()

    def _extend_sorted(self, times: np.ndarray, values: np.ndarray) -> None:
        if not self._lazy:
            super()._extend_sorted(times, values)
            return
        self._sync_in()
        super()._extend_sorted(times, values)
        self._sync_out()

    # reads: re-sync only while cross-process writers exist
    def __len__(self) -> int:
        if self._lazy:
            self._sync_in()
        return self._count

    @property
    def total_appended(self) -> int:
        if self._lazy:
            self._sync_in()
        return self._written

    def arrays(self):
        if self._lazy:
            self._sync_in()
        return super().arrays()

    def first_time(self) -> float:
        if self._lazy:
            self._sync_in()
        return super().first_time()

    def last_time(self) -> float:
        if self._lazy:
            self._sync_in()
        return super().last_time()

    def last_value(self) -> float:
        if self._lazy:
            self._sync_in()
        return super().last_value()

    def window(self, t0: float, t1: float):
        if self._lazy:
            self._sync_in()
        return super().window(t0, t1)


class SharedStatRing(_StatRing):
    """A rollup row ring with columns and ``(head, count)`` in shm.

    Rollup rings are touched once per fold, not per sample, so every
    operation unconditionally syncs — no lazy mode needed.
    """

    __slots__ = ("_meta", "descs")

    def __init__(self, capacity: int, cols: Dict[str, np.ndarray], meta: np.ndarray,
                 descs: Tuple = ()) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._cols = cols
        self._meta = meta
        self.descs = descs
        self._head = int(meta[0])
        self._count = int(meta[1])

    @classmethod
    def create(cls, arena: SharedArena, capacity: int) -> "SharedStatRing":
        cols = {}
        descs = []
        for name in ROW_COLUMNS:
            arr, desc = arena.alloc(capacity)
            cols[name] = arr
            descs.append(desc)
        m_arr, m_desc = arena.alloc(2, dtype=np.int64)
        descs.append(m_desc)
        return cls(capacity, cols, m_arr, descs=tuple(descs))

    @classmethod
    def attach(cls, cache: _BlockCache, capacity: int, descs: Tuple) -> "SharedStatRing":
        cols = {name: cache.view(d) for name, d in zip(ROW_COLUMNS, descs)}
        return cls(capacity, cols, cache.view(descs[-1]), descs=tuple(descs))

    def _sync_in(self) -> None:
        self._head = int(self._meta[0])
        self._count = int(self._meta[1])

    def append_rows(self, cols: Dict[str, np.ndarray]) -> None:
        self._sync_in()
        super().append_rows(cols)
        self._meta[0] = self._head
        self._meta[1] = self._count

    def __len__(self) -> int:
        self._sync_in()
        return self._count

    def window(self, t0: float, t1: float) -> Dict[str, np.ndarray]:
        self._sync_in()
        return super().window(t0, t1)


class SharedTimeSeriesStore(TimeSeriesStore):
    """Per-shard store whose ring buffers live in a shared arena.

    Ring creation announces ``("ring", sid, capacity, *descs)`` through
    ``on_event`` so the owning worker attaches the same storage by
    descriptor before its next task.  The base class's inlined
    ``append_segments`` fast path bypasses the ring's sync discipline,
    so once :meth:`mark_shared` flips the store to cross-process mode it
    is replaced by the (synced) ``_extend_sorted`` loop; before that the
    inlined path runs unchanged over the shm-backed arrays.
    """

    def __init__(self, default_capacity: int, arena: SharedArena,
                 on_event: Callable[[Tuple], None]) -> None:
        super().__init__(default_capacity)
        self._arena = arena
        self._on_event = on_event
        self._shared_lazy = False

    def mark_shared(self) -> None:
        """Enable cross-process syncing (call once the pool is live).

        Flushes every ring's Python-side state to its shm meta block —
        pre-pool mutations skip that publish — then flips the rings to
        sync on every subsequent operation.
        """
        self._shared_lazy = True
        for buf in self._series.values():
            buf._sync_out()
            buf._lazy = True

    def _make_buffer(self, key: SeriesKey, capacity: int) -> RingBuffer:
        ring = SharedRingBuffer.create(self._arena, capacity)
        ring._lazy = self._shared_lazy
        sid = self.registry.id_for(key)
        self._on_event(("ring", sid, capacity) + ring.descs)
        return ring

    def append_segments(self, seg_ids, times, values, starts, ends) -> None:
        if not self._shared_lazy:
            # pool not live: the Python ints are authoritative and the
            # base class's inlined fast path is sync-correct as-is —
            # this is what keeps the shm layout inside the E18 ≤1.2×
            # ingest-overhead gate
            super().append_segments(seg_ids, times, values, starts, ends)
            return
        n = 0
        touched = set()
        id_buffers = self._id_buffers
        for sid, lo, hi in zip(seg_ids.tolist(), starts.tolist(), ends.tolist()):
            entry = id_buffers.get(sid)
            if entry is None:
                entry = self._buffer_for_id(sid)
            buf, metric = entry
            buf._extend_sorted(times[lo:hi], values[lo:hi])
            touched.add(metric)
            n += hi - lo
        if n == 0:
            return
        self.total_inserts += n
        self._record_commit(touched)
        if self._listeners:
            self._notify(*segment_notify_columns(seg_ids, times, values, starts, ends))


# --------------------------------------------------------------------------
# Sid-addressed rollup folding (worker-side, and parent-side when degraded).


class TierFolder:
    """Rollup folding over sid-addressed shared tier storage.

    A structural twin of :class:`~repro.query.rollup.RollupManager`'s
    fold paths with every ``SeriesKey`` replaced by a shard-local series
    id: buffered ingest columns fold through the segment path once a
    series' listener floor lies below its watermark, everything else
    bootstraps with a raw-ring scan, and coarser tiers cascade from the
    tier below.  All bin arithmetic is the shared fold primitives, so
    rows are bit-identical to the key-based manager on the same inputs.

    Storage access is injected: ``ring_of(sid)`` / ``known_sids()`` for
    raw rings, ``wm_of(tier_idx)`` for the shared watermark table
    (``NaN`` = unset; parent-allocated, so sids beyond the current table
    are simply deferred to a later fold), and ``tier_ring`` /
    ``make_tier_ring`` for rollup row rings.
    """

    def __init__(
        self,
        resolutions: Sequence[float],
        *,
        ring_of: Callable[[int], Optional[RingBuffer]],
        known_sids: Callable[[], Iterable[int]],
        wm_of: Callable[[int], np.ndarray],
        tier_ring: Callable[[int, int], Optional[SharedStatRing]],
        make_tier_ring: Callable[[int, int], SharedStatRing],
        buffer_cap: int = 1 << 18,
    ) -> None:
        self.resolutions = [float(r) for r in resolutions]
        self._ring_of = ring_of
        self._known_sids = known_sids
        self._wm_of = wm_of
        self._tier_ring = tier_ring
        self._make_tier_ring = make_tier_ring
        self._buffer_cap = int(buffer_cap)
        self._buffered: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered_rows = 0
        self._floors: Dict[int, float] = {}
        self.late_dropped = 0
        self.rows_written = 0

    def on_columns(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        self._buffered.append((ids, times, values))
        self._buffered_rows += int(ids.size)
        if self._buffered_rows > self._buffer_cap:
            res = self.resolutions[0]
            max_t = max(float(c[1].max()) for c in self._buffered if c[1].size)
            self._fold_tier0(math.floor(max_t / res) * res)

    def fold(self, boundary: float) -> int:
        """Fold complete tier-0 bins up to ``boundary`` and cascade."""
        written = self._fold_tier0(boundary)
        for ti in range(len(self.resolutions) - 1):
            wm_f = self._wm_of(ti)
            wm_c = self._wm_of(ti + 1)
            for sid in self._known_sids():
                written += self._fold_cascade(ti, sid, wm_f, wm_c)
        self.rows_written += written
        return written

    def _append_rows(self, tier_idx: int, sid: int, rows: Dict[str, np.ndarray]) -> int:
        ring = self._tier_ring(tier_idx, sid)
        if ring is None:
            ring = self._make_tier_ring(tier_idx, sid)
        ring.append_rows(rows)
        return int(rows["time"].size)

    def _fold_tier0(self, boundary: float) -> int:
        res = self.resolutions[0]
        wm0 = self._wm_of(0)
        written = 0
        if self._buffered:
            chunks, self._buffered = self._buffered, []
            self._buffered_rows = 0
            if len(chunks) == 1:
                ids, times, values = chunks[0]
            else:
                ids = np.concatenate([c[0] for c in chunks])
                times = np.concatenate([c[1] for c in chunks])
                values = np.concatenate([c[2] for c in chunks])
            complete = times < boundary
            if not complete.all():
                keep = ~complete
                self._buffered.append((ids[keep], times[keep], values[keep]))
                self._buffered_rows = int(keep.sum())
                ids, times, values = ids[complete], times[complete], values[complete]
            if ids.size:
                ids, times, values, starts, ends = sort_series_columns(ids, times, values)
                for lo, hi in zip(starts.tolist(), ends.tolist()):
                    sid = int(ids[lo])
                    floor_t = self._floors.get(sid)
                    if floor_t is None:
                        floor_t = float(times[lo])
                        self._floors[sid] = floor_t
                    if sid >= wm0.size:
                        continue  # table not grown yet; rawscan later
                    wm = float(wm0[sid])
                    if wm == wm and floor_t < wm:
                        rows, dropped = fold_segment_rows(
                            times[lo:hi], values[lo:hi], wm, res
                        )
                        self.late_dropped += dropped
                        if rows is not None:
                            written += self._append_rows(0, sid, rows)
                            wm0[sid] = boundary
        for sid in self._known_sids():
            if sid >= wm0.size:
                continue
            wm = float(wm0[sid])
            if wm == wm and wm >= boundary:
                continue
            floor_t = self._floors.get(sid)
            if wm == wm and floor_t is not None and floor_t < wm:
                wm0[sid] = boundary  # buffer path covered it
            else:
                written += self._fold_tier0_rawscan(sid, wm, boundary, wm0)
        return written

    def _fold_tier0_rawscan(
        self, sid: int, wm: float, boundary: float, wm0: np.ndarray
    ) -> int:
        res = self.resolutions[0]
        ring = self._ring_of(sid)
        start = wm
        if start != start:  # NaN: never folded
            if ring is None or len(ring) == 0:
                return 0
            start = math.floor(ring.first_time() / res) * res
        if boundary <= start or ring is None:
            return 0
        times, values = ring.window(start, boundary)
        rows = fold_rawscan_rows(times, values, start, boundary, res)
        if rows is None:
            wm0[sid] = boundary
            return 0
        written = self._append_rows(0, sid, rows)
        wm0[sid] = boundary
        return written

    def _fold_cascade(self, ti: int, sid: int, wm_f: np.ndarray, wm_c: np.ndarray) -> int:
        if sid >= wm_f.size or sid >= wm_c.size:
            return 0
        fine_wm = float(wm_f[sid])
        if fine_wm != fine_wm:
            return 0
        res = self.resolutions[ti + 1]
        boundary = math.floor(fine_wm / res) * res
        start = float(wm_c[sid])
        fine_ring = self._tier_ring(ti, sid)
        if start != start:  # NaN: find the first fine row
            if fine_ring is None or len(fine_ring) == 0:
                return 0
            rows = fine_ring.window(-np.inf, np.inf)
            if rows["time"].size == 0:
                return 0
            start = math.floor(rows["time"][0] / res) * res
        if boundary <= start:
            return 0
        rows = fine_ring.window(start, boundary) if fine_ring is not None else None
        if rows is None or rows["time"].size == 0:
            wm_c[sid] = boundary
            return 0
        out = fold_cascade_rows(rows, start, boundary, res)
        written = self._append_rows(ti + 1, sid, out)
        wm_c[sid] = boundary
        return written


# --------------------------------------------------------------------------
# Result transport: nested structures with large arrays relocated into a
# per-batch shared-memory arena, everything else pickled inline.


def _pack(obj, alloc: Optional[Callable[[np.ndarray], Optional[Tuple]]]):
    if isinstance(obj, np.ndarray):
        if alloc is not None:
            desc = alloc(obj)
            if desc is not None:
                return ("S", desc)
        return ("A", obj)
    if isinstance(obj, dict):
        return ("D", [(k, _pack(v, alloc)) for k, v in obj.items()])
    if isinstance(obj, tuple):
        return ("T", [_pack(v, alloc) for v in obj])
    if isinstance(obj, list):
        return ("L", [_pack(v, alloc) for v in obj])
    return ("V", obj)


def _unpack(enc, view: Callable[[Tuple], np.ndarray]):
    tag, payload = enc
    if tag == "S":
        return view(payload).copy()  # copy: result outlives the scratch block
    if tag == "A":
        return payload
    if tag == "D":
        return {k: _unpack(v, view) for k, v in payload}
    if tag == "T":
        return tuple(_unpack(v, view) for v in payload)
    if tag == "L":
        return [_unpack(v, view) for v in payload]
    return payload


# --------------------------------------------------------------------------
# Worker process.


class _SidTierView:
    """Worker-side tier view addressed by shard-local series id."""

    __slots__ = ("rings", "resolution_s")

    def __init__(self, rings: Dict[int, SharedStatRing], resolution_s: float) -> None:
        self.rings = rings
        self.resolution_s = resolution_s

    def window(self, sid: int, t0: float, t1: float) -> Optional[Dict[str, np.ndarray]]:
        ring = self.rings.get(sid)
        if ring is None or len(ring) == 0:
            return None
        return ring.window(t0, t1)


class _SidStoreView:
    """Worker-side raw-store view for the instant-query tier fallbacks."""

    __slots__ = ("rings",)

    def __init__(self, rings: List[Optional[SharedRingBuffer]]) -> None:
        self.rings = rings

    def earliest_time(self, sid: int) -> Optional[float]:
        ring = self.rings[sid] if sid < len(self.rings) else None
        if ring is None or len(ring) == 0:
            return None
        return ring.first_time()


class _SidTiers:
    __slots__ = ("tiers",)

    def __init__(self, tiers: List[_SidTierView]) -> None:
        self.tiers = tiers


class SidShardReader:
    """Scatter-pass reader addressed by shard-local series id.

    The exact worker-side counterpart of
    :class:`~repro.shard.federated.KeyShardReader`: the scatter pass
    functions run unchanged against it, with ``item`` a sid instead of a
    key.
    """

    __slots__ = ("_shard", "tier", "_tier_idx", "_store_view", "_tiers_view")

    def __init__(self, shard: "_WorkerShard", tier_idx: Optional[int]) -> None:
        self._shard = shard
        self._tier_idx = tier_idx
        self.tier = shard.tier_views[tier_idx] if tier_idx is not None else None
        self._store_view = _SidStoreView(shard.rings)
        self._tiers_view = _SidTiers(shard.tier_views) if shard.tier_views else None

    def window(self, sid: int, lo: float, hi: float):
        ring = self._shard.rings[sid] if sid < len(self._shard.rings) else None
        if ring is None:
            return np.empty(0), np.empty(0)
        return ring.window(lo, hi)

    def watermark(self, sid: int) -> Optional[float]:
        wm = self._shard.wm[self._tier_idx]
        if wm is None or sid >= wm.size:
            return None
        w = float(wm[sid])
        return None if w != w else w

    def rows(self, sid: int, lo: float, hi: float):
        return self.tier.window(sid, lo, hi)

    def instant_partials(self, sid: int, t0: float, t1: float):
        if self._tiers_view is None:
            return None
        return instant_tier_partials(self._store_view, self._tiers_view, sid, t0, t1)

    def instant_rate(self, sid: int, t0: float, t1: float):
        if self._tiers_view is None:
            return None
        return instant_tier_rate(self._store_view, self._tiers_view, sid, t0, t1)


class _WorkerShard:
    """One shard's sid-addressed mirror inside a worker process."""

    def __init__(self, cache: _BlockCache, arena: SharedArena) -> None:
        self._cache = cache
        self._arena = arena
        self.rings: List[Optional[SharedRingBuffer]] = []
        self.wm: List[Optional[np.ndarray]] = []
        self.tier_rings: List[Dict[int, SharedStatRing]] = []
        self.tier_views: List[_SidTierView] = []
        self.tier_capacity = 0
        self.folder: Optional[TierFolder] = None
        #: standing-query grids by step, fed from this shard's column
        #: stream; worker grids track every sid (no registry here, and
        #: reads only request the sids the parent planned)
        self.standing: Dict[float, StandingGrid] = {}
        #: tier rings created since the last reply: ``(tier_idx, sid,
        #: capacity, descs)`` for the parent to attach
        self.pending_trings: List[Tuple] = []

    # ------------------------------------------------------------- events
    def apply_event(self, ev: Tuple) -> None:
        kind = ev[0]
        if kind == "ring":
            _, sid, capacity, t_desc, v_desc, m_desc = ev
            while len(self.rings) <= sid:
                self.rings.append(None)
            self.rings[sid] = SharedRingBuffer.attach(
                self._cache, capacity, t_desc, v_desc, m_desc
            )
        elif kind == "wm":
            _, tier_idx, desc = ev
            while len(self.wm) <= tier_idx:
                self.wm.append(None)
            self.wm[tier_idx] = self._cache.view(desc)
        elif kind == "tiers":
            _, resolutions, tier_capacity, buffer_cap = ev
            self.tier_capacity = tier_capacity
            self.tier_rings = [dict() for _ in resolutions]
            self.tier_views = [
                _SidTierView(rings, res) for rings, res in zip(self.tier_rings, resolutions)
            ]
            self.folder = TierFolder(
                resolutions,
                ring_of=lambda sid: self.rings[sid] if sid < len(self.rings) else None,
                known_sids=lambda: [
                    sid for sid, r in enumerate(self.rings) if r is not None
                ],
                wm_of=lambda ti: self.wm[ti],
                tier_ring=lambda ti, sid: self.tier_rings[ti].get(sid),
                make_tier_ring=self._make_tier_ring,
                buffer_cap=buffer_cap,
            )
        elif kind == "tring":
            # crash-respawn replay: attach a tier ring a previous worker
            # incarnation created, instead of recreating it (the parent
            # still reads the original storage)
            _, tier_idx, sid, capacity, descs = ev
            self.tier_rings[tier_idx][sid] = SharedStatRing.attach(
                self._cache, capacity, descs
            )
        elif kind == "streg":
            _, step, n_slots, want_rate = ev
            self._register_standing(step, n_slots, want_rate)
        elif kind == "cols":
            _, ids, times, values = ev
            if self.folder is not None:
                self.folder.on_columns(ids, times, values)
            for grid in self.standing.values():
                grid.ingest(ids, times, values)

    def _register_standing(self, step: float, n_slots: int, want_rate: bool) -> None:
        """Create (or widen) the standing grid for ``step``, bootstrapped
        from the shared rings.  The backfill floor is each ring's current
        last timestamp: column events queued behind this registration
        carry samples already in the rings, and the floor keeps them from
        double-counting (exact-boundary ties resolve as already applied —
        the same best-effort semantics as crash re-apply)."""
        grid = self.standing.get(step)
        if (
            grid is not None
            and n_slots <= grid.n_slots
            and (not want_rate or grid.track_rate)
        ):
            return
        grid = StandingGrid(
            step,
            max(n_slots, grid.n_slots if grid is not None else 0),
            track_rate=want_rate or (grid.track_rate if grid is not None else False),
        )
        self.standing[step] = grid
        for sid, ring in enumerate(self.rings):
            if ring is None:
                continue
            times, values = ring.arrays()
            grid.backfill_series(
                sid,
                times,
                values,
                evicted=ring.total_appended > len(ring),
                floor=float(times[-1]) if times.size else None,
            )

    def _make_tier_ring(self, tier_idx: int, sid: int) -> SharedStatRing:
        ring = SharedStatRing.create(self._arena, self.tier_capacity)
        self.tier_rings[tier_idx][sid] = ring
        self.pending_trings.append((tier_idx, sid, self.tier_capacity, ring.descs))
        return ring

    def take_trings(self) -> List[Tuple]:
        out, self.pending_trings = self.pending_trings, []
        return out

    # -------------------------------------------------------------- tasks
    def run(self, kind: str, payload: Dict):
        if kind == "scatter":
            reader = SidShardReader(self, payload["params"].get("tier_idx"))
            fn = SCATTER_FNS[payload["kind"]]
            return fn(
                reader,
                payload["sids"],
                payload["gidxs"],
                payload["ranks"],
                payload.get("singleton"),
                payload["params"],
            )
        if kind == "append":
            ids, times, values = payload["ids"], payload["times"], payload["values"]
            bounds = np.flatnonzero(ids[1:] != ids[:-1]) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [ids.size]))
            for sid, lo, hi in zip(ids[starts].tolist(), starts.tolist(), ends.tolist()):
                self.rings[sid]._extend_sorted(times[lo:hi], values[lo:hi])
            if self.folder is not None:
                self.folder.on_columns(ids, times, values)
            for grid in self.standing.values():
                grid.ingest(ids, times, values)
            return {"n": int(ids.size)}
        if kind == "standing":
            grid = self.standing.get(payload["step"])
            if grid is None:
                return {"ok": False}
            sids = np.asarray(payload["sids"], dtype=np.int64)
            b0, b1 = payload["b0"], payload["b1"]
            for sid in grid.incomplete(sids, b0).tolist():
                ring = self.rings[sid] if sid < len(self.rings) else None
                if ring is not None and len(ring) > 0:
                    return {"ok": False}
            rows = grid.rows(sids, b0, b1, want_rate=payload["want_rate"])
            spos = rows.pop("spos")
            rows["gidx"] = np.asarray(payload["gidxs"], dtype=np.int64)[spos]
            rows["rank"] = np.asarray(payload["ranks"], dtype=np.int64)[spos]
            return {"ok": True, "rows": rows, "stats": grid.stats()}
        if kind == "fold":
            if self.folder is None:
                return {"written": 0, "late": 0}
            written = self.folder.fold(payload["boundary"])
            return {"written": written, "late": self.folder.late_dropped}
        raise ValueError(f"unknown task kind {kind!r}")


#: worker-side span name per task kind — mirrors the serial engine's
#: in-process span names so serial and parallel traces share one shape
_TASK_SPANS = {
    "scatter": "scatter.shard",
    "standing": "standing.shard",
    "append": "ingest.shard",
    "fold": "fold.shard",
}


def _worker_main(conn, worker_idx: int, prefix: str, shared_tracker: bool) -> None:
    """Worker process entry: attach-on-demand mirrors + task loop.

    One message per dispatch batch: ``(trace_parent,
    [(shard, events, kind, payload), ...])`` in,
    ``("ok", scratch_blocks, persist_blocks, replies, spans)`` out.
    Large reply arrays travel through a per-batch scratch arena whose
    blocks the parent unlinks after copying; tier rings live in this
    worker's persistent arena, whose block names ride along in replies
    so the parent can unlink them at pool close.

    ``trace_parent`` is the dispatching side's innermost open span id
    (or ``None`` when tracing is off): the worker adopts it as the
    parent of its per-task spans and ships the drained spans back in
    the reply, so worker-side work parents correctly under the parent
    process's scatter/append span.
    """
    global _UNREGISTER_ON_ATTACH
    if shared_tracker:  # fork: one tracker for the whole pool
        _UNREGISTER_ON_ATTACH = False
    # a fork-started worker inherits the parent's tracer state (ring,
    # stack, pid) — drop it; tracing re-arms per batch from trace_parent
    TRACER.enabled = False
    TRACER.reset()
    cache = _BlockCache()
    arena = SharedArena(f"{prefix}.w{worker_idx}", untrack=True)
    shards: Dict[int, _WorkerShard] = {}
    old_scratch: List[shared_memory.SharedMemory] = []
    conn.send(("hello", worker_idx))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        if msg == "__crash__":
            os._exit(1)
        trace_parent, batch = msg
        if trace_parent is not None:
            TRACER.enable()
            TRACER.reset()
            TRACER.adopt(trace_parent)
        else:
            TRACER.enabled = False
        for shm in old_scratch:
            try:
                shm.close()
            except BufferError:
                pass
        old_scratch = []
        scratch: List[SharedArena] = []

        def alloc(arr: np.ndarray) -> Optional[Tuple]:
            if arr.nbytes < _INLINE_MAX or arr.ndim != 1 or not arr.flags.c_contiguous:
                return None  # small / non-flat arrays ride inline
            if not scratch:
                scratch.append(SharedArena(f"{prefix}.s{worker_idx}", untrack=True))
            dst, desc = scratch[0].alloc(arr.size, arr.dtype)
            dst[:] = arr
            return desc

        try:
            replies = []
            for shard_idx, events, kind, payload in batch:
                state = shards.get(shard_idx)
                if state is None:
                    state = shards[shard_idx] = _WorkerShard(cache, arena)
                for ev in events:
                    state.apply_event(ev)
                if TRACER.enabled:
                    with TRACER.span(
                        _TASK_SPANS.get(kind, "task.shard"), shard=shard_idx
                    ):
                        data = state.run(kind, payload)
                else:
                    data = state.run(kind, payload)
                replies.append(_pack({"trings": state.take_trings(), "data": data}, alloc))
            scratch_names = scratch[0].block_names if scratch else []
            if scratch:
                old_scratch = [shm for _, shm in scratch[0]._blocks]
            spans = TRACER.drain() if TRACER.enabled else []
            conn.send(("ok", scratch_names, arena.drain_new_names(), replies, spans))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    try:
        conn.close()
    except Exception:
        pass


# --------------------------------------------------------------------------
# Parent-side pool.


class ShardWorkerPool:
    """Persistent worker pool with per-shard event logs and crash handling.

    Shards have **static ownership**: shard ``s`` always executes on
    worker ``s % n_workers``, so a shard's event stream and its
    shared-ring mutations are seen by exactly one worker in order.
    ``dispatch`` is synchronous — all tasks are sent, then one batched
    reply per worker is collected — so the parent and workers never
    race on the same ring.  A dead or hung worker marks the whole pool
    :attr:`broken`; callers degrade to their serial implementations
    (parent-side state is authoritative and shm-readable throughout).
    """

    def __init__(
        self,
        n_workers: int,
        n_shards: int,
        *,
        timeout_s: float = 60.0,
        respawn: bool = True,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self.n_shards = int(n_shards)
        self.timeout_s = float(timeout_s)
        self.respawn = bool(respawn)
        self.prefix = f"repro.{os.getpid()}.{id(self) & 0xFFFF:x}"
        self._events: List[List[Tuple]] = [[] for _ in range(n_shards)]
        self._procs: List = []
        self._conns: List = []
        self.started = False
        self.broken = False
        self.dispatches = 0
        self.tasks_sent = 0
        self.respawns_total = 0
        #: shard -> full replay event list reconstructing the worker-side
        #: mirror from parent-authoritative shared state; required for
        #: respawn (without it a crash still breaks the pool)
        self.replay_provider: Optional[Callable[[int], List[Tuple]]] = None
        #: worker-owned persistent blocks to unlink at close
        self._worker_blocks: List[str] = []

    def worker_of(self, shard: int) -> int:
        return shard % self.n_workers

    @property
    def active(self) -> bool:
        return self.started and not self.broken

    def log_event(self, shard: int, ev: Tuple) -> None:
        self._events[shard].append(ev)

    def _spawn_worker(self, w: int) -> Tuple:
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = get_context(method)
        if method == "fork":
            # Spawn the parent's resource-tracker daemon *before* forking:
            # children then inherit its live fd and share it, instead of
            # each lazily spawning a private tracker whose cache would
            # hold (and unlink, on worker exit) the parent's blocks.
            try:
                resource_tracker.ensure_running()
            except Exception:
                pass
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, w, self.prefix, method == "fork"),
            daemon=True,
            name=f"repro-shard-worker-{w}",
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def start(self) -> None:
        if self.started:
            return
        for w in range(self.n_workers):
            proc, parent_conn = self._spawn_worker(w)
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for w in range(self.n_workers):
            reply = self._recv(w, timeout_s=30.0)
            if reply is None or reply[0] != "hello":
                self.broken = True
                raise RuntimeError(f"shard worker {w} failed to start")
        self.started = True

    def _recv(self, w: int, timeout_s: Optional[float] = None):
        """One message from worker ``w``; ``None`` if it died or hung."""
        conn, proc = self._conns[w], self._procs[w]
        deadline = timeout_s if timeout_s is not None else self.timeout_s
        waited = 0.0
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError):
                return None
            if not proc.is_alive():
                # drain anything flushed before death
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                return None
            waited += 0.05
            if waited >= deadline:
                proc.terminate()
                return None

    def dispatch(self, tasks: List[Tuple[int, str, Dict]]) -> List:
        """Run ``(shard, kind, payload)`` tasks; one batched send+recv per
        worker.  Returns per-task results in order; tasks owned by a dead
        worker yield :data:`WORKER_DIED` (and the pool turns broken).

        When tracing is enabled the dispatching span's id rides along in
        each batch message and every worker's per-task spans come back
        in its reply — dispatch ingests them into the parent ring, so a
        cross-process scatter traces exactly like a serial one.
        """
        if not self.active:
            raise RuntimeError("pool is not active")
        self.dispatches += 1
        self.tasks_sent += len(tasks)
        trace_parent = TRACER.current_id() if TRACER.enabled else None
        per_worker: Dict[int, List[Tuple[int, int]]] = {}
        messages: Dict[int, List] = {}
        for pos, (shard, kind, payload) in enumerate(tasks):
            w = self.worker_of(shard)
            events = self._events[shard]
            if events:
                self._events[shard] = []
            per_worker.setdefault(w, []).append((pos, shard))
            messages.setdefault(w, []).append((shard, events, kind, payload))
        for w, msg in messages.items():
            try:
                self._conns[w].send((trace_parent, msg))
            except (BrokenPipeError, OSError):
                pass  # surfaces as a dead recv below
        results: List = [WORKER_DIED] * len(tasks)
        for w in per_worker:
            reply = self._recv(w)
            if reply is None:
                self._handle_death(w, messages[w])
                continue
            status = reply[0]
            if status == "err":
                self.broken = True
                raise RuntimeError(f"shard worker {w} task failed:\n{reply[1]}")
            _, scratch_names, persist_names, replies, spans = reply
            self._worker_blocks.extend(persist_names)
            if spans:
                TRACER.ingest(spans)
            scratch = _BlockCache()
            try:
                for (pos, _shard), enc in zip(per_worker[w], replies):
                    results[pos] = _unpack(enc, scratch.view)
            finally:
                scratch.close()
                for name in scratch_names:
                    _unlink_block(name)
        return results

    def _handle_death(self, w: int, sent: List) -> None:
        """Recover from worker ``w`` dying mid-dispatch.

        The batch's tasks stay :data:`WORKER_DIED` either way (callers
        re-apply or recompute against parent-authoritative shared state).
        With a replay provider the worker is respawned and every shard it
        owns gets a fresh mirror: the replay events (tier config, shared
        watermark tables, ring and tier-ring attaches, standing
        registrations) are queued first, then the events the dead worker
        may never have applied — watermarks, ring authority, and standing
        backfill floors make re-delivery idempotent.  Without a provider
        the pool turns broken, exactly the pre-respawn behavior.
        """
        if not self.respawn or self.replay_provider is None or not self._respawn(w):
            self.broken = True
            return
        requeue: Dict[int, List[Tuple]] = {}
        for shard, events, _kind, _payload in sent:
            if events:
                requeue.setdefault(shard, []).extend(events)
        for shard in range(self.n_shards):
            if self.worker_of(shard) != w:
                continue
            replay = self.replay_provider(shard)
            self._events[shard] = (
                replay + requeue.get(shard, []) + self._events[shard]
            )

    def _respawn(self, w: int) -> bool:
        proc = self._procs[w]
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        try:
            self._conns[w].close()
        except OSError:
            pass
        try:
            proc_new, conn_new = self._spawn_worker(w)
        except Exception:
            return False
        self._procs[w] = proc_new
        self._conns[w] = conn_new
        reply = self._recv(w, timeout_s=30.0)
        if reply is None or reply[0] != "hello":
            return False
        self.respawns_total += 1
        return True

    def inject_crash(self, worker_idx: int) -> None:
        """Kill one worker (tests: exercises degradation paths)."""
        try:
            self._conns[worker_idx].send("__crash__")
        except (BrokenPipeError, OSError):
            pass
        self._procs[worker_idx].join(timeout=5.0)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self.started = False
        for name in self._worker_blocks:
            _unlink_block(name)
        self._worker_blocks = []
        # backstop: unlink worker-owned blocks (persist + scratch arenas)
        # a crashed worker left behind — those are untracked, so nothing
        # else will ever reclaim them.  Parent-owned blocks are excluded;
        # their arena closes (and unlinks) through its own handles.
        try:
            for entry in os.listdir("/dev/shm"):
                if entry.startswith(f"{self.prefix}.w") or entry.startswith(
                    f"{self.prefix}.s"
                ):
                    _unlink_block(entry)
        except OSError:
            pass

    def stats(self) -> Dict[str, float]:
        return {
            "workers": float(self.n_workers),
            "dispatches": float(self.dispatches),
            "tasks_sent": float(self.tasks_sent),
            "broken": float(self.broken),
            "respawns_total": float(self.respawns_total),
        }


# --------------------------------------------------------------------------
# Parent-side shared rollup tiers.


class _SharedTierViewKeyed:
    """Key-addressed view of one shared tier (parent-side engine surface).

    Duck-types :class:`~repro.query.rollup.RollupTier`'s read methods so
    the inherited serial scatter path and the instant-query tier
    fallbacks work unchanged against worker-folded tiers.
    """

    __slots__ = ("_tierset", "_idx", "resolution_s")

    def __init__(self, tierset: "SharedTierSet", idx: int, resolution_s: float) -> None:
        self._tierset = tierset
        self._idx = idx
        self.resolution_s = resolution_s

    def _sid(self, key: SeriesKey) -> Optional[int]:
        return self._tierset.store.registry.get(key)

    def watermark(self, key: SeriesKey) -> Optional[float]:
        sid = self._sid(key)
        if sid is None:
            return None
        wm = self._tierset.wm[self._idx]
        if sid >= wm.size:
            return None
        w = float(wm[sid])
        return None if w != w else w

    def window(self, key: SeriesKey, t0: float, t1: float) -> Optional[Dict[str, np.ndarray]]:
        sid = self._sid(key)
        if sid is None:
            return None
        ring = self._tierset.tier_rings[self._idx].get(sid)
        if ring is None or len(ring) == 0:
            return None
        return ring.window(t0, t1)

    def __len__(self) -> int:
        return sum(len(r) for r in self._tierset.tier_rings[self._idx].values())


class SharedTierSet:
    """One shard's rollup cascade over shared storage (parent side).

    Presents the :class:`~repro.query.rollup.RollupManager` read surface
    (``tiers`` / ``folds`` / ``fold`` / ``stats``) while the folding
    itself normally runs inside the owning worker: the parent allocates
    the shared per-tier watermark tables (``NaN`` = unset) and announces
    them through the shard's event log; workers create tier row rings on
    demand and report them back for the parent to attach.  When the pool
    degrades, :meth:`fold` builds a parent-side :class:`TierFolder` over
    the same storage and folding continues in-process — watermarks make
    every fold idempotent, so a half-finished worker fold re-folds
    safely.
    """

    def __init__(
        self,
        store: SharedTimeSeriesStore,
        shard_idx: int,
        resolutions: Sequence[float],
        tier_capacity: int,
        arena: SharedArena,
        cache: _BlockCache,
        log_event: Callable[[Tuple], None],
        pool_active: Callable[[], bool],
        buffer_cap: int = 1 << 18,
    ) -> None:
        res = sorted(float(r) for r in resolutions)
        if len(set(res)) != len(res) or not res:
            raise ValueError("need distinct rollup resolutions")
        for fine, coarse in zip(res, res[1:]):
            if coarse % fine != 0.0:
                raise ValueError(
                    f"each tier must be a multiple of the previous: {coarse} % {fine} != 0"
                )
        self.store = store
        self.shard_idx = shard_idx
        self.resolutions = res
        self.tier_capacity = int(tier_capacity)
        self._arena = arena
        self._cache = cache
        self._log_event = log_event
        self._pool_active = pool_active
        self._buffer_cap = int(buffer_cap)
        self.folds = 0
        self.late_dropped = 0
        self.wm: List[np.ndarray] = []
        #: latest per-tier watermark-table descriptor (crash-respawn replay)
        self.wm_descs: List[Tuple] = []
        self.tier_rings: List[Dict[int, SharedStatRing]] = [dict() for _ in res]
        self.tiers = [_SharedTierViewKeyed(self, i, r) for i, r in enumerate(res)]
        self._folder: Optional[TierFolder] = None
        log_event(("tiers", tuple(res), self.tier_capacity, self._buffer_cap))
        for ti in range(len(res)):
            self._grow_wm(ti, 64)
        store.add_ingest_listener(self._on_shard_columns)

    # -------------------------------------------------------------- plumbing
    def _grow_wm(self, tier_idx: int, n: int) -> None:
        arr, desc = self._arena.alloc(n)
        arr.fill(np.nan)
        if tier_idx < len(self.wm):
            old = self.wm[tier_idx]
            arr[: old.size] = old
            self.wm[tier_idx] = arr
            self.wm_descs[tier_idx] = desc
        else:
            self.wm.append(arr)
            self.wm_descs.append(desc)
        self._log_event(("wm", tier_idx, desc))

    def ensure_wm(self, n: int) -> None:
        """Grow every watermark table to cover ``n`` sids (parent-only,
        called between dispatches so no worker holds the old view)."""
        for ti, arr in enumerate(self.wm):
            if n > arr.size:
                self._grow_wm(ti, max(64, 2 * arr.size, n))

    def _on_shard_columns(self, ids: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        """Shard ingest listener: serial-path commits (scalar inserts,
        degraded appends) feed the owning worker's folder through the
        event log — or the parent folder once degraded."""
        if self._pool_active():
            self._log_event(("cols", ids, times, values))
        else:
            self._parent_folder().on_columns(ids, times, values)

    def attach_tring(self, tier_idx: int, sid: int, capacity: int, descs: Tuple) -> None:
        """Attach a worker-created tier ring reported in a task reply."""
        self.tier_rings[tier_idx][sid] = SharedStatRing.attach(self._cache, capacity, descs)

    # ------------------------------------------------------- degraded folding
    def _known_sids(self) -> List[int]:
        registry = self.store.registry
        out = []
        for sid in range(len(registry)):
            if self.store._series.get(registry.key_for(sid)) is not None:
                out.append(sid)
        return out

    def _raw_ring(self, sid: int) -> Optional[RingBuffer]:
        return self.store._series.get(self.store.registry.key_for(sid))

    def _make_tier_ring(self, tier_idx: int, sid: int) -> SharedStatRing:
        ring = SharedStatRing.create(self._arena, self.tier_capacity)
        self.tier_rings[tier_idx][sid] = ring
        return ring

    def _parent_folder(self) -> TierFolder:
        if self._folder is None:
            self._folder = TierFolder(
                self.resolutions,
                ring_of=self._raw_ring,
                known_sids=self._known_sids,
                wm_of=lambda ti: self.wm[ti],
                tier_ring=lambda ti, sid: self.tier_rings[ti].get(sid),
                make_tier_ring=self._make_tier_ring,
                buffer_cap=self._buffer_cap,
            )
        return self._folder

    def fold(self, now: float) -> int:
        """Parent-side fold (pool down or never started): same cadence
        contract as :meth:`RollupManager.fold`."""
        self.ensure_wm(len(self.store.registry))
        res = self.resolutions[0]
        folder = self._parent_folder()
        written = folder.fold(math.floor(now / res) * res)
        self.late_dropped = folder.late_dropped
        self.folds += 1
        return written

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {"folds": float(self.folds)}
        for view in self.tiers:
            out[f"tier_{int(view.resolution_s)}s_rows"] = float(len(view))
        return out


# --------------------------------------------------------------------------
# Parallel store facade.


class ParallelShardedStore(ShardedTimeSeriesStore):
    """Sharded store with ingest executed by the worker pool.

    Shard ring buffers live in one parent-owned :class:`SharedArena`;
    :meth:`append_batch` routes segments exactly like the serial facade,
    then ships each shard's compact columns to its owning worker, which
    writes the shared rings and feeds its tier-0 folder in-process.  The
    parent keeps all bookkeeping (registries, epochs, generations,
    facade listeners) authoritative, so reads and serial fallbacks never
    depend on worker state.
    """

    def __init__(
        self,
        n_shards: int = 8,
        default_capacity: int = 4096,
        *,
        workers: int = 2,
        pool_timeout_s: float = 60.0,
        respawn: bool = True,
    ) -> None:
        self.pool = ShardWorkerPool(
            workers, n_shards, timeout_s=pool_timeout_s, respawn=respawn
        )
        self.pool.replay_provider = self._replay_events
        self.arena = SharedArena(f"{self.pool.prefix}.p")
        self.attach_cache = _BlockCache()
        self.tiersets: Optional[List[SharedTierSet]] = None
        #: standing registrations ``(metric, step, n_slots, want_rate)``,
        #: kept for crash-respawn replay
        self.standing_regs: List[Tuple] = []
        self.parallel_appends = 0
        self.serial_appends = 0
        self.append_recoveries = 0
        self._closed = False
        super().__init__(n_shards, default_capacity)

    def _make_shard(self, idx: int) -> TimeSeriesStore:
        return SharedTimeSeriesStore(
            self.default_capacity,
            self.arena,
            on_event=lambda ev, s=idx: self.pool.log_event(s, ev),
        )

    # ------------------------------------------------------------ lifecycle
    def create_tiersets(
        self,
        resolutions: Sequence[float],
        *,
        tier_capacity: int = 4096,
        ingest_buffer_cap: int = 1 << 18,
    ) -> List[SharedTierSet]:
        """Build one shared rollup cascade per shard.

        One rollup configuration per store: the tier layout is baked
        into every worker's mirror, so a second call with a different
        layout raises instead of silently forking the config.
        """
        if self.tiersets is not None:
            if [t.resolution_s for t in self.tiersets[0].tiers] == sorted(
                float(r) for r in resolutions
            ):
                return self.tiersets
            raise RuntimeError(
                "parallel store already has rollup tiers with a different "
                "layout; one rollup configuration per store"
            )
        self.tiersets = [
            SharedTierSet(
                self.shards[s],
                s,
                resolutions,
                tier_capacity,
                self.arena,
                self.attach_cache,
                log_event=lambda ev, s=s: self.pool.log_event(s, ev),
                pool_active=lambda: self.pool.active,
                buffer_cap=ingest_buffer_cap,
            )
            for s in range(self.n_shards)
        ]
        return self.tiersets

    def start_parallel(self) -> None:
        """Start the worker pool and switch rings to cross-process mode."""
        self.pool.start()
        for shard in self.shards:
            shard.mark_shared()

    @property
    def parallel_active(self) -> bool:
        return self.pool.active

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.pool.started:
            self.pool.close()
        self.attach_cache.close()
        self.arena.close(unlink=True)

    def __enter__(self) -> "ParallelShardedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- plumbing
    def _replay_events(self, s: int) -> List[Tuple]:
        """Full event list rebuilding shard ``s``'s worker mirror.

        Everything is reconstructed from parent-authoritative shared
        state: tier layout and watermark tables first, then ring
        attaches, then tier-ring attaches (the respawned worker must
        reuse the rings the parent already reads, not recreate them),
        then standing registrations — whose worker-side backfill reads
        the shm rings at apply time, so it also covers any columns the
        dead worker half-applied.
        """
        shard = self.shards[s]
        events: List[Tuple] = []
        ts = self.tiersets[s] if self.tiersets is not None else None
        if ts is not None:
            events.append(
                ("tiers", tuple(ts.resolutions), ts.tier_capacity, ts._buffer_cap)
            )
            for ti, desc in enumerate(ts.wm_descs):
                events.append(("wm", ti, desc))
        registry = shard.registry
        for key, buf in shard._series.items():
            events.append(("ring", registry.id_for(key), buf.capacity) + buf.descs)
        if ts is not None:
            for ti, rings in enumerate(ts.tier_rings):
                for sid, ring in rings.items():
                    events.append(("tring", ti, sid, ring.capacity, ring.descs))
        for _metric, step, n_slots, want_rate in self.standing_regs:
            events.append(("streg", step, n_slots, want_rate))
        return events

    def ensure_wm_capacity(self) -> None:
        if self.tiersets is None:
            return
        for s, ts in enumerate(self.tiersets):
            ts.ensure_wm(len(self.shards[s].registry))

    def apply_envelope(self, shard: int, reply):
        """Unwrap one task reply: attach reported tier rings, return data."""
        if reply is WORKER_DIED:
            return WORKER_DIED
        if self.tiersets is not None:
            for tier_idx, sid, capacity, descs in reply["trings"]:
                self.tiersets[shard].attach_tring(tier_idx, sid, capacity, descs)
        return reply["data"]

    # -------------------------------------------------------------- writing
    def append_batch(self, series_ids, times, values) -> None:
        if TRACER.enabled:
            with TRACER.span("store.append", samples=len(series_ids)):
                self._append_batch_impl(series_ids, times, values)
        else:
            self._append_batch_impl(series_ids, times, values)

    def _append_batch_impl(self, series_ids, times, values) -> None:
        if not self.pool.active:
            self.serial_appends += 1
            super().append_batch(series_ids, times, values)
            return
        series_ids = np.asarray(series_ids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if not (series_ids.shape == times.shape == values.shape):
            raise ValueError("series_ids, times, values must be parallel 1-D arrays")
        if series_ids.size == 0:
            return
        self._ensure_routed()
        if int(series_ids.max()) >= self._routed:
            raise IndexError("series id not interned in this store's registry")
        ids_s, times_s, values_s, starts, ends = sort_series_columns(
            series_ids, times, values
        )
        seg_gids = ids_s[starts]
        seg_shards = self._shard_of[seg_gids]
        seg_locals = self._local_of[seg_gids]
        order = np.argsort(seg_shards, kind="stable")
        seg_shards_o = seg_shards[order]
        bounds = np.flatnonzero(seg_shards_o[1:] != seg_shards_o[:-1]) + 1
        shard_slices: List[Tuple[int, np.ndarray]] = []
        tasks: List[Tuple[int, str, Dict]] = []
        for lo, hi in zip(
            np.concatenate(([0], bounds)).tolist(),
            np.concatenate((bounds, [order.size])).tolist(),
        ):
            sel = order[lo:hi]
            s = int(seg_shards_o[lo])
            shard = self.shards[s]
            # pre-create buffers parent-side so ring events precede the
            # task in the shard's event stream and parent bookkeeping
            # (metric keys, generations) stays authoritative
            for sid in seg_locals[sel].tolist():
                if sid not in shard._id_buffers:
                    shard._buffer_for_id(sid)
            ids_c, t_c, v_c = segment_notify_columns(
                seg_locals[sel], times_s, values_s, starts[sel], ends[sel]
            )
            shard_slices.append((s, sel))
            tasks.append((s, "append", {"ids": ids_c, "times": t_c, "values": v_c}))
        self.ensure_wm_capacity()
        results = self.pool.dispatch(tasks)
        self.parallel_appends += 1
        failed: List[Tuple[int, np.ndarray]] = []
        for (s, sel), res in zip(shard_slices, results):
            data = self.apply_envelope(s, res)
            if data is WORKER_DIED:
                failed.append((s, sel))
                continue
            self._commit_bookkeeping(s, seg_locals[sel], starts[sel], ends[sel],
                                     times_s, values_s)
        for s, sel in failed:
            self.append_recoveries += 1
            self._reapply_segments(s, seg_locals[sel], times_s, values_s,
                                   starts[sel], ends[sel])

    def _commit_bookkeeping(self, s, seg_sids, seg_starts, seg_ends, times_s, values_s):
        """Parent-side commit accounting for rows a worker wrote."""
        shard = self.shards[s]
        n = int((seg_ends - seg_starts).sum())
        shard.total_inserts += n
        shard._record_commit(
            {shard._id_buffers[sid][1] for sid in seg_sids.tolist()}
        )
        if self._listeners:
            ids_c, t_c, v_c = segment_notify_columns(
                seg_sids, times_s, values_s, seg_starts, seg_ends
            )
            gids = self._global_of[s][ids_c]
            for listener in self._listeners:
                listener(gids, t_c, v_c)

    def _reapply_segments(self, s, seg_sids, times_s, values_s, seg_starts, seg_ends):
        """Serial re-apply after a worker died mid-append.

        The worker may have committed any prefix of its segments, so
        each segment is trimmed at the ring's current last timestamp
        before re-writing — best-effort dedup (rows sharing the exact
        boundary timestamp are treated as already applied).
        """
        shard = self.shards[s]
        touched = set()
        n = 0
        for sid, lo, hi in zip(seg_sids.tolist(), seg_starts.tolist(), seg_ends.tolist()):
            buf, metric = shard._id_buffers[sid]
            seg_t = times_s[lo:hi]
            seg_v = values_s[lo:hi]
            if len(buf):
                cut = int(np.searchsorted(seg_t, buf.last_time(), side="right"))
                seg_t, seg_v = seg_t[cut:], seg_v[cut:]
            if seg_t.size:
                buf._extend_sorted(seg_t, seg_v)
                n += int(seg_t.size)
            touched.add(metric)
        shard.total_inserts += n
        shard._record_commit(touched)
        # the shard's own listener chain (tier feed — degraded now — plus
        # the facade's translating wrappers) gets the full payload: the
        # worker died before any notification happened
        ids_c, t_c, v_c = segment_notify_columns(
            seg_sids, times_s, values_s, seg_starts, seg_ends
        )
        shard._notify(ids_c, t_c, v_c)

    def shard_stats(self) -> Dict[str, float]:
        out = super().shard_stats()
        out["parallel_appends"] = float(self.parallel_appends)
        out["serial_appends"] = float(self.serial_appends)
        out["append_recoveries"] = float(self.append_recoveries)
        out.update({f"pool_{k}": v for k, v in self.pool.stats().items()})
        return out


# --------------------------------------------------------------------------
# Parallel federated engine.


class ParallelFederatedQueryEngine(FederatedQueryEngine):
    """Federated engine whose scatter passes run on the worker pool.

    Overrides exactly the :meth:`_scatter` seam: worklists are
    translated to shard-local sid columns (memoized against the plan
    cache), shipped to the shard's owning worker, and executed there by
    the very same pass functions the serial loop runs — the gather is
    untouched, so results are bit-identical to serial execution for any
    worker count.  Every failure path falls back to the inherited serial
    scatter over the same shared storage.
    """

    def __init__(self, store: ParallelShardedStore, **kwargs) -> None:
        super().__init__(store, rollups=store.tiersets, **kwargs)
        self.parallel_scatters = 0
        self.parallel_folds = 0
        self.serial_fallbacks = 0
        #: id(work) → (work, per-shard sid columns, per-shard singleton)
        self._sid_plans: Dict[int, Tuple] = {}

    def _sid_work(self, work: List[ShardWork], group_sizes: Optional[List[int]]):
        cached = self._sid_plans.get(id(work))
        if cached is not None and cached[0] is work:
            _, sid_work, singleton = cached
        else:
            sid_work = []
            for s, (items, gidxs, ranks) in enumerate(work):
                registry = self.store.shards[s].registry
                sid_work.append([registry.get(k) for k in items])
            singleton = None
        if group_sizes is not None and singleton is None:
            singleton = [
                [group_sizes[g] == 1 for g in gidxs] for (_, gidxs, _) in work
            ]
        if len(self._sid_plans) > 4096:
            self._sid_plans.clear()
        self._sid_plans[id(work)] = (work, sid_work, singleton)
        return sid_work, singleton

    def _scatter_impl(self, kind: str, work: List[ShardWork], params: Dict) -> List:
        # overrides the base class's dispatch seam *under* its
        # ``federated.scatter`` span wrapper: pool dispatch, serial
        # fallback, and the in-process path all trace identically
        pool = self.store.pool
        if not pool.active:
            self.serial_fallbacks += 1
            return super()._scatter_impl(kind, work, params)
        group_sizes = params.get("group_sizes")
        sid_work, singleton = self._sid_work(work, group_sizes)
        wire_params = {k: v for k, v in params.items() if k != "group_sizes"}
        tasks = []
        task_shards = []
        for s, (items, gidxs, ranks) in enumerate(work):
            if not items:
                continue
            tasks.append(
                (
                    s,
                    "scatter",
                    {
                        "kind": kind,
                        "sids": sid_work[s],
                        "gidxs": gidxs,
                        "ranks": ranks,
                        "singleton": singleton[s] if singleton is not None else None,
                        "params": wire_params,
                    },
                )
            )
            task_shards.append(s)
        if not tasks:
            return [None] * len(work)
        results = pool.dispatch(tasks)
        out: List = [None] * len(work)
        for s, res in zip(task_shards, results):
            data = self.store.apply_envelope(s, res)
            if data is WORKER_DIED:
                # pool is broken now; recompute the whole pass serially —
                # reads are idempotent and parent state is authoritative
                self.serial_fallbacks += 1
                return super()._scatter_impl(kind, work, params)
            out[s] = data
        self.parallel_scatters += 1
        return out

    def fold_rollups(self, now: float) -> int:
        tiersets = self.shard_rollups
        if not tiersets:
            return 0
        pool = self.store.pool
        if not pool.active:
            return sum(ts.fold(now) for ts in tiersets)
        res0 = tiersets[0].resolutions[0]
        boundary = math.floor(now / res0) * res0
        self.store.ensure_wm_capacity()
        tasks = [(s, "fold", {"boundary": boundary}) for s in range(self.store.n_shards)]
        results = pool.dispatch(tasks)
        total = 0
        for s, res in enumerate(results):
            data = self.store.apply_envelope(s, res)
            if data is WORKER_DIED:
                # re-fold this shard in-process: watermarks make the
                # half-finished worker fold idempotent
                total += tiersets[s].fold(now)
                continue
            total += data["written"]
            tiersets[s].late_dropped = data["late"]
            tiersets[s].folds += 1
        self.parallel_folds += 1
        return total

    def make_standing_provider(self) -> "ParallelStandingProvider":
        """Worker-side standing state (overrides the parent-listener
        provider, which would never see pool-written appends)."""
        return ParallelStandingProvider(self.store)

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["parallel_scatters"] = float(self.parallel_scatters)
        out["parallel_folds"] = float(self.parallel_folds)
        out["serial_fallbacks"] = float(self.serial_fallbacks)
        out.update({f"pool_{k}": v for k, v in self.store.pool.stats().items()})
        return out


class ParallelStandingProvider:
    """Standing-query provider whose grids live inside the workers.

    Registration logs a ``("streg", step, n_slots, want_rate)`` event to
    every shard — the owning worker builds and backfills the grid from
    the shared rings before its next task — and records the registration
    parent-side for crash-respawn replay.  Reads fan one ``"standing"``
    task per touched shard to its owning worker and gather the per-shard
    partial rows; the engine-side merge is partition-invariant, so
    results match the single-store provider.  While the pool is down the
    provider reports no coverage (``None``) and the hub falls back to
    the batch engine, which itself degrades serially as usual.
    """

    def __init__(self, store: ParallelShardedStore) -> None:
        self.store = store
        self.standing_scatters = 0
        #: last grid stats reported per shard (piggybacked on reads)
        self._grid_stats: Dict[int, Dict[str, float]] = {}

    def register(self, metric: str, step: float, n_slots: int, *, want_rate: bool) -> None:
        reg = (metric, float(step), int(n_slots), bool(want_rate))
        self.store.standing_regs.append(reg)
        for s in range(self.store.n_shards):
            self.store.pool.log_event(s, ("streg",) + reg[1:])

    def entries(
        self,
        metric: str,
        step: float,
        keys: Sequence[SeriesKey],
        gidxs: np.ndarray,
        ranks: np.ndarray,
        b0: int,
        b1: int,
        *,
        want_rate: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        pool = self.store.pool
        if not pool.active:
            return None
        work: List[Tuple[List[int], List[int], List[int]]] = [
            ([], [], []) for _ in range(self.store.n_shards)
        ]
        shard_index = self.store.shard_index
        shards = self.store.shards
        for i, key in enumerate(keys):
            s = shard_index(key)
            sid = shards[s].registry.get(key)
            if sid is None:
                continue  # never interned on its shard: holds no data
            wl = work[s]
            wl[0].append(sid)
            wl[1].append(int(gidxs[i]))
            wl[2].append(int(ranks[i]))
        tasks: List[Tuple[int, str, Dict]] = []
        task_shards: List[int] = []
        for s, (sids, g, r) in enumerate(work):
            if not sids:
                continue
            tasks.append(
                (
                    s,
                    "standing",
                    {
                        "step": float(step),
                        "sids": sids,
                        "gidxs": g,
                        "ranks": r,
                        "b0": int(b0),
                        "b1": int(b1),
                        "want_rate": bool(want_rate),
                    },
                )
            )
            task_shards.append(s)
        if not tasks:
            return concat_entries([])
        results = pool.dispatch(tasks)
        chunks: List[Dict[str, np.ndarray]] = []
        for s, res in zip(task_shards, results):
            data = self.store.apply_envelope(s, res)
            if data is WORKER_DIED or not data["ok"]:
                return None
            self._grid_stats[s] = data["stats"]
            chunks.append(data["rows"])
        self.standing_scatters += 1
        return concat_entries(chunks)

    def stats(self) -> Dict[str, float]:
        out = {
            "grids": 0.0,
            "standing_scatters": float(self.standing_scatters),
            "updates_applied": 0.0,
            "late_dropped": 0.0,
        }
        for shard_stats in self._grid_stats.values():
            for k, v in shard_stats.items():
                out[k] = out.get(k, 0.0) + v
        out["grids"] = float(len(self._grid_stats))
        return out


class ParallelShardContext:
    """One-stop construction of the parallel tier: store + pool + engine.

    ``with ParallelShardContext(shards=8, workers=4) as ctx:`` yields a
    running pool; ``ctx.store`` and ``ctx.engine`` are drop-in
    replacements for the serial sharded store and federated engine.
    """

    def __init__(
        self,
        *,
        shards: int = 8,
        workers: int = 2,
        capacity: int = 4096,
        rollup_resolutions: Optional[Sequence[float]] = None,
        tier_capacity: int = 4096,
        cache=None,
        enable_cache: bool = True,
        start: bool = True,
        pool_timeout_s: float = 60.0,
    ) -> None:
        self.store = ParallelShardedStore(
            shards, capacity, workers=workers, pool_timeout_s=pool_timeout_s
        )
        if rollup_resolutions is not None:
            self.store.create_tiersets(rollup_resolutions, tier_capacity=tier_capacity)
        self.engine = ParallelFederatedQueryEngine(
            self.store, cache=cache, enable_cache=enable_cache
        )
        if start:
            self.start()

    def start(self) -> None:
        self.store.start_parallel()

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ParallelShardContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "WORKER_DIED",
    "SharedArena",
    "SharedRingBuffer",
    "SharedStatRing",
    "SharedTimeSeriesStore",
    "SharedTierSet",
    "TierFolder",
    "ShardWorkerPool",
    "SidShardReader",
    "ParallelShardedStore",
    "ParallelFederatedQueryEngine",
    "ParallelStandingProvider",
    "ParallelShardContext",
]
