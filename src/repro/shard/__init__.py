"""Sharded time-series storage with federated scatter-gather queries.

The MODA substrate scales past a single in-process store by
hash-partitioning series across N independent shard stores
(:class:`ShardedTimeSeriesStore`) and federating reads back together
(:class:`FederatedQueryEngine`).  Routing is deterministic on the
series key, so a series always lives on exactly one shard; ingest
splits columnar batches by shard, and queries scatter per-shard
subqueries whose partial results merge exactly.
"""

from repro.shard.federated import FederatedQueryEngine
from repro.shard.store import ShardedTimeSeriesStore, shard_of_key

__all__ = [
    "FederatedQueryEngine",
    "ShardedTimeSeriesStore",
    "shard_of_key",
]
