"""Sharded time-series storage with federated scatter-gather queries.

The MODA substrate scales past a single in-process store by
hash-partitioning series across N independent shard stores
(:class:`ShardedTimeSeriesStore`) and federating reads back together
(:class:`FederatedQueryEngine`).  Routing is deterministic on the
series key, so a series always lives on exactly one shard; ingest
splits columnar batches by shard, and queries scatter per-shard
subqueries whose partial results merge exactly.

:mod:`repro.shard.parallel` adds the process-parallel execution tier:
shard columns relocated into shared memory and a persistent worker pool
running the per-shard scatter/append/fold passes concurrently
(:class:`ParallelShardContext` is the one-stop entry point), degrading
to the serial implementations whenever the pool is unavailable.
"""

from repro.shard.federated import FederatedQueryEngine, FederatedStandingProvider
from repro.shard.parallel import (
    ParallelFederatedQueryEngine,
    ParallelShardContext,
    ParallelShardedStore,
    ParallelStandingProvider,
    SharedTimeSeriesStore,
    ShardWorkerPool,
)
from repro.shard.store import ShardedTimeSeriesStore, shard_of_key

__all__ = [
    "FederatedQueryEngine",
    "FederatedStandingProvider",
    "ParallelFederatedQueryEngine",
    "ParallelShardContext",
    "ParallelShardedStore",
    "ParallelStandingProvider",
    "ShardWorkerPool",
    "ShardedTimeSeriesStore",
    "SharedTimeSeriesStore",
    "shard_of_key",
]
