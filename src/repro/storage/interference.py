"""I/O interference and tail-latency accounting.

The I/O-QoS case targets "decrease interference, reduce tail latency,
and provide more consistent results for deadline dependent workflows".
This module turns a filesystem transfer log into exactly those numbers:
per-client latency percentiles, slowdown vs. an isolation baseline, and
consistency (coefficient of variation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.storage.filesystem import Transfer


@dataclass(frozen=True)
class InterferenceReport:
    """Latency/interference summary for one client."""

    client: str
    n_transfers: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    cv: float  # coefficient of variation — the "consistency" metric
    slowdown_vs_isolation: Optional[float]


def _percentiles(durations: np.ndarray) -> tuple[float, float, float]:
    return (
        float(np.percentile(durations, 50)),
        float(np.percentile(durations, 95)),
        float(np.percentile(durations, 99)),
    )


def interference_report(
    transfers: Sequence[Transfer],
    client: str,
    *,
    isolation_duration_s: Optional[float] = None,
) -> InterferenceReport:
    """Build a report for ``client`` from a transfer log.

    ``isolation_duration_s`` is the duration the same write would take on
    an idle system (size / unshared bandwidth); when provided, mean
    slowdown is reported.
    """
    durations = np.array([t.duration for t in transfers if t.client == client])
    if durations.size == 0:
        nan = float("nan")
        return InterferenceReport(client, 0, nan, nan, nan, nan, nan, None)
    mean = float(np.mean(durations))
    p50, p95, p99 = _percentiles(durations)
    cv = float(np.std(durations) / mean) if mean > 0 else float("nan")
    slowdown = mean / isolation_duration_s if isolation_duration_s else None
    return InterferenceReport(client, int(durations.size), mean, p50, p95, p99, cv, slowdown)


def deadline_miss_rate(
    transfers: Sequence[Transfer], client: str, deadline_s: float
) -> Optional[float]:
    """Fraction of the client's transfers exceeding ``deadline_s``."""
    durations = [t.duration for t in transfers if t.client == client]
    if not durations:
        return None
    return sum(1 for d in durations if d > deadline_s) / len(durations)
