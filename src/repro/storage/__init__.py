"""Parallel-filesystem substrate (Lustre-like).

Models the managed system of the paper's OST and I/O-QoS use cases:
object storage targets (OSTs) with health states, striped files, a
shared-bandwidth contention model, token-bucket QoS shaping per tenant,
and interference/tail-latency accounting.

The actuator surface matches the paper: per-OST health is observable
through achieved-bandwidth telemetry, files can be closed and re-opened
on different OSTs (``restripe``), and QoS parameters are adjustable at
run time.
"""

from repro.storage.ost import OST, OstState
from repro.storage.qos import QoSManager, TokenBucket
from repro.storage.filesystem import ParallelFileSystem, StripedFile, Transfer
from repro.storage.client import AppIoClient, PeriodicWriter
from repro.storage.interference import InterferenceReport, interference_report

__all__ = [
    "AppIoClient",
    "InterferenceReport",
    "OST",
    "OstState",
    "ParallelFileSystem",
    "PeriodicWriter",
    "QoSManager",
    "StripedFile",
    "TokenBucket",
    "Transfer",
    "interference_report",
]
