"""Periodic I/O clients.

``PeriodicWriter`` emulates an application's checkpoint-style write
pattern: every ``period_s`` it writes ``size_mb`` to its striped file.
It is the application side of the OST use case: the loop tells it to
``avoid_osts`` and it closes/reopens (restripes) its file accordingly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.sim.engine import Engine, PeriodicTask
from repro.storage.filesystem import ParallelFileSystem, Transfer


class AppIoClient:
    """Adapter giving a cluster application a file on this filesystem.

    Implements the ``write(size_mb, on_done)`` protocol that
    :class:`repro.cluster.application.RunningApp` uses for its blocking
    I/O phases; the file is created lazily on first write.
    """

    def __init__(
        self,
        fs: ParallelFileSystem,
        client_id: str,
        *,
        stripe_count: int = 2,
    ) -> None:
        self.fs = fs
        self.client_id = client_id
        self.stripe_count = stripe_count
        self._file = None
        self.writes = 0

    def write(self, size_mb: float, on_done: Callable[[Transfer], None]) -> None:
        if self._file is None:
            self._file = self.fs.create_file(
                f"{self.client_id}-output", self.client_id, self.stripe_count
            )
        self.writes += 1
        self.fs.write(self.client_id, self._file.name, size_mb, on_done)

    @property
    def file(self):
        return self._file


class PeriodicWriter:
    """Writes ``size_mb`` every ``period_s`` through the filesystem.

    Overlapping writes are skipped (a real app blocks on its I/O phase);
    the skip count is visible for diagnostics.
    """

    def __init__(
        self,
        engine: Engine,
        fs: ParallelFileSystem,
        client_id: str,
        *,
        size_mb: float = 512.0,
        period_s: float = 60.0,
        stripe_count: int = 2,
        on_transfer: Optional[Callable[[Transfer], None]] = None,
    ) -> None:
        if size_mb <= 0:
            raise ValueError("size_mb must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.engine = engine
        self.fs = fs
        self.client_id = client_id
        self.size_mb = size_mb
        self.period_s = period_s
        self.on_transfer = on_transfer
        self.file = fs.create_file(f"{client_id}-out", client_id, stripe_count)
        self.transfers: List[Transfer] = []
        self.skipped_writes = 0
        self._in_flight = False
        self._avoid: Set[str] = set()
        self._restripe_pending = False
        self._task: Optional[PeriodicTask] = None

    def start(self, *, start_at: Optional[float] = None) -> None:
        if self._task is not None and not self._task.stopped:
            raise RuntimeError(f"writer {self.client_id} already started")
        self._task = self.engine.every(
            self.period_s, self._write_once, start_at=start_at, label=f"writer-{self.client_id}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _write_once(self) -> None:
        if self._in_flight:
            self.skipped_writes += 1
            return
        if self._restripe_pending:
            self.fs.restripe_file(self.file.name, avoid=self._avoid)
            self._restripe_pending = False
        self._in_flight = True
        self.fs.write(self.client_id, self.file.name, self.size_mb, self._done)

    def _done(self, transfer: Transfer) -> None:
        self._in_flight = False
        self.transfers.append(transfer)
        if self.on_transfer is not None:
            self.on_transfer(transfer)

    # ------------------------------------------------------------ loop hook
    def avoid_osts(self, osts: Set[str]) -> None:
        """Close files on the given OSTs and reopen elsewhere (OST response).

        The restripe happens just before the next write, mirroring an
        application that finishes its current I/O phase first.
        """
        self._avoid = set(osts)
        self._restripe_pending = True

    def recent_bandwidth_mbps(self, n: int = 5) -> Optional[float]:
        """Mean achieved bandwidth over the last ``n`` transfers."""
        if not self.transfers:
            return None
        recent = self.transfers[-n:]
        return sum(t.achieved_mbps for t in recent) / len(recent)
