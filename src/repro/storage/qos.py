"""Token-bucket QoS shaping.

The I/O-QoS use case adapts "QoS parameters based on the current
application performance and system I/O load".  Each tenant owns a token
bucket: ``rate_mbps`` is the sustained allocation, ``burst_mb`` the
credit that absorbs short bursts.  The bucket answers the classic
shaping question — how long must a transfer of S MB take under this
allocation — and both parameters are adjustable at run time (the loop's
actuator).
"""

from __future__ import annotations

from typing import Dict, Optional


class TokenBucket:
    """Standard token bucket with lazy refill.

    Invariants (property-tested):
      * the level never exceeds ``burst_mb`` nor drops below 0,
      * over any long window, consumption cannot exceed
        ``rate_mbps * window + burst_mb``.
    """

    def __init__(self, rate_mbps: float, burst_mb: float, *, now: float = 0.0) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if burst_mb < 0:
            raise ValueError("burst_mb must be >= 0")
        self.rate_mbps = rate_mbps
        self.burst_mb = burst_mb
        self._level = burst_mb  # start full
        self._last_refill = now

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ValueError(f"time went backwards: {now} < {self._last_refill}")
        self._level = min(self.burst_mb, self._level + (now - self._last_refill) * self.rate_mbps)
        self._last_refill = now

    def level(self, now: float) -> float:
        """Current credit in MB."""
        self._refill(now)
        return self._level

    def shaped_duration(self, size_mb: float, now: float) -> float:
        """Seconds the bucket needs to supply ``size_mb`` starting at ``now``."""
        if size_mb < 0:
            raise ValueError("size_mb must be >= 0")
        self._refill(now)
        deficit = size_mb - self._level
        return max(0.0, deficit / self.rate_mbps)

    def consume(self, size_mb: float, now: float) -> None:
        """Debit ``size_mb``; the level may go negative transiently only
        through :meth:`shaped_duration` timing, so clamp at zero here."""
        if size_mb < 0:
            raise ValueError("size_mb must be >= 0")
        self._refill(now)
        self._level = max(0.0, self._level - size_mb)

    def set_rate(self, rate_mbps: float) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        self.rate_mbps = rate_mbps

    def set_burst(self, burst_mb: float, now: float) -> None:
        if burst_mb < 0:
            raise ValueError("burst_mb must be >= 0")
        self._refill(now)
        self.burst_mb = burst_mb
        self._level = min(self._level, burst_mb)


class QoSManager:
    """Per-tenant QoS allocations; tenants without a bucket are unshaped."""

    def __init__(self) -> None:
        self._buckets: Dict[str, TokenBucket] = {}
        self.adjustments = 0  # how many times a loop retuned parameters

    def set_allocation(self, tenant: str, rate_mbps: float, burst_mb: float, *, now: float = 0.0) -> None:
        existing = self._buckets.get(tenant)
        if existing is None:
            self._buckets[tenant] = TokenBucket(rate_mbps, burst_mb, now=now)
        else:
            existing.set_rate(rate_mbps)
            existing.set_burst(burst_mb, now)
        self.adjustments += 1

    def remove_allocation(self, tenant: str) -> None:
        self._buckets.pop(tenant, None)

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        return self._buckets.get(tenant)

    def allocation(self, tenant: str) -> Optional[tuple[float, float]]:
        b = self._buckets.get(tenant)
        return (b.rate_mbps, b.burst_mb) if b is not None else None

    def shaped_duration(self, tenant: str, size_mb: float, now: float) -> float:
        """Shaping delay floor for a transfer; 0 for unshaped tenants."""
        b = self._buckets.get(tenant)
        if b is None:
            return 0.0
        return b.shaped_duration(size_mb, now)

    def consume(self, tenant: str, size_mb: float, now: float) -> None:
        b = self._buckets.get(tenant)
        if b is not None:
            b.consume(size_mb, now)

    def tenants(self) -> list[str]:
        return sorted(self._buckets)
