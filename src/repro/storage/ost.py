"""Object storage targets.

An OST serves data at ``nominal_rate_mbps`` when healthy; a degraded OST
(failing disk, RAID rebuild, controller fault — the paper's "poorly
performing OST") serves at a fraction of that.  Concurrent transfers
share the effective rate equally (fair-share approximation of Lustre's
request scheduling).
"""

from __future__ import annotations

import enum
from typing import Set


class OstState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


class OST:
    """One object storage target."""

    def __init__(self, ost_id: str, nominal_rate_mbps: float = 1000.0) -> None:
        if nominal_rate_mbps <= 0:
            raise ValueError("nominal_rate_mbps must be positive")
        self.ost_id = ost_id
        self.nominal_rate_mbps = nominal_rate_mbps
        self.state = OstState.HEALTHY
        self.degradation_factor = 1.0
        self.active_transfers: Set[int] = set()  # transfer ids
        self.bytes_written_mb = 0.0

    @property
    def effective_rate_mbps(self) -> float:
        """Service rate accounting for health state."""
        if self.state is OstState.FAILED:
            return 0.0
        if self.state is OstState.DEGRADED:
            return self.nominal_rate_mbps * self.degradation_factor
        return self.nominal_rate_mbps

    @property
    def usable(self) -> bool:
        return self.state is not OstState.FAILED

    def set_state(self, state: OstState, degradation_factor: float = 1.0) -> None:
        if not 0.0 < degradation_factor <= 1.0 and state is OstState.DEGRADED:
            raise ValueError("degradation_factor must be in (0, 1] when degrading")
        self.state = state
        self.degradation_factor = degradation_factor if state is OstState.DEGRADED else 1.0

    def share_for_new_transfer(self) -> float:
        """Bandwidth a new transfer would get on this OST right now."""
        return self.effective_rate_mbps / (len(self.active_transfers) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OST {self.ost_id} {self.state.value} active={len(self.active_transfers)}>"
