"""Striped parallel filesystem with contention and QoS shaping.

Write path: a transfer's physical bandwidth is the sum of fair shares
across its file's stripe OSTs at start time (quasi-static approximation:
the rate is fixed when the transfer begins).  QoS shaping adds a floor
on duration from the tenant's token bucket.  The slower of the two
governs.

The filesystem exposes exactly the observables and hooks the OST and
I/O-QoS loops need: per-OST achieved-bandwidth EWMAs and queue depths,
per-client transfer logs (for tail latency), ``restripe_file`` (the
close-and-reopen-elsewhere response), and the QoS manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analytics.streaming import Ewma
from repro.sim.engine import Engine
from repro.storage.ost import OST, OstState
from repro.storage.qos import QoSManager


@dataclass
class StripedFile:
    """A file striped over a set of OSTs."""

    name: str
    owner: str
    stripe_osts: List[str]
    restripe_count: int = 0

    def __post_init__(self) -> None:
        if not self.stripe_osts:
            raise ValueError("file needs at least one stripe OST")


@dataclass(frozen=True)
class Transfer:
    """One completed write, for interference/tail-latency analysis."""

    transfer_id: int
    client: str
    file_name: str
    size_mb: float
    t_start: float
    t_end: float
    physical_rate_mbps: float
    #: OSTs that physically served this write (stripes at start time)
    ost_ids: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def achieved_mbps(self) -> float:
        return self.size_mb / self.duration if self.duration > 0 else float("inf")


class ParallelFileSystem:
    """Lustre-like filesystem over a set of OSTs."""

    def __init__(
        self,
        engine: Engine,
        osts: Sequence[OST],
        *,
        qos: Optional[QoSManager] = None,
        bandwidth_ewma_alpha: float = 0.3,
    ) -> None:
        if not osts:
            raise ValueError("filesystem needs at least one OST")
        self.engine = engine
        self.osts: Dict[str, OST] = {o.ost_id: o for o in osts}
        if len(self.osts) != len(osts):
            raise ValueError("duplicate OST ids")
        self.qos = qos if qos is not None else QoSManager()
        self.files: Dict[str, StripedFile] = {}
        self.transfers: List[Transfer] = []
        #: hooks invoked with every completed Transfer — how telemetry
        #: bridges publish I/O observables without polling writer objects
        self.on_transfer: List[Callable[[Transfer], None]] = []
        self._transfer_ids = itertools.count()
        self._placement_cursor = 0
        self._ost_bw_ewma: Dict[str, Ewma] = {
            o: Ewma(bandwidth_ewma_alpha) for o in self.osts
        }
        self.bytes_written_mb = 0.0

    # ------------------------------------------------------------ placement
    def create_file(
        self,
        name: str,
        owner: str,
        stripe_count: int = 2,
        avoid: Optional[Set[str]] = None,
    ) -> StripedFile:
        """Create a file striped over ``stripe_count`` usable OSTs.

        Placement is round-robin over usable OSTs excluding ``avoid``
        (the paper's "explicitly request to avoid that OST" hook).
        """
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        stripes = self._pick_osts(stripe_count, avoid or set())
        f = StripedFile(name, owner, stripes)
        self.files[name] = f
        return f

    def _pick_osts(self, stripe_count: int, avoid: Set[str]) -> List[str]:
        if stripe_count <= 0:
            raise ValueError("stripe_count must be positive")
        clean = [o.ost_id for o in self.osts.values() if o.usable and o.ost_id not in avoid]
        if len(clean) >= stripe_count:
            picked = []
            for i in range(stripe_count):
                picked.append(clean[(self._placement_cursor + i) % len(clean)])
            self._placement_cursor = (self._placement_cursor + stripe_count) % len(clean)
            return picked
        # avoidance is best-effort: fall back onto avoided-but-usable OSTs
        # (highest effective rate first) rather than failing the reopen —
        # only a true capacity shortage is an error
        fallback = sorted(
            (o for o in self.osts.values() if o.usable and o.ost_id in avoid),
            key=lambda o: (-o.effective_rate_mbps, o.ost_id),
        )
        picked = clean + [o.ost_id for o in fallback[: stripe_count - len(clean)]]
        if len(picked) < stripe_count:
            raise ValueError(
                f"cannot stripe over {stripe_count} OSTs: only {len(picked)} usable"
            )
        return picked

    def restripe_file(self, name: str, avoid: Optional[Set[str]] = None) -> StripedFile:
        """Close and reopen the file on different OSTs (the OST response)."""
        f = self.files.get(name)
        if f is None:
            raise KeyError(f"unknown file {name!r}")
        stripes = self._pick_osts(len(f.stripe_osts), avoid or set())
        f.stripe_osts = stripes
        f.restripe_count += 1
        return f

    # --------------------------------------------------------------- writes
    def write(
        self,
        client: str,
        file_name: str,
        size_mb: float,
        on_done: Optional[Callable[[Transfer], None]] = None,
    ) -> float:
        """Start a write; returns its projected duration in seconds.

        The duration is ``max(physical, qos-shaped)``; the completion is
        scheduled on the engine and ``on_done`` receives the
        :class:`Transfer` record.
        """
        if size_mb <= 0:
            raise ValueError("size_mb must be positive")
        f = self.files.get(file_name)
        if f is None:
            raise KeyError(f"unknown file {file_name!r}")
        now = self.engine.now
        tid = next(self._transfer_ids)
        stripe_osts = [self.osts[o] for o in f.stripe_osts if self.osts[o].usable]
        if not stripe_osts:
            raise RuntimeError(f"no usable OSTs for file {file_name!r}")
        # each stripe carries an equal share; the write completes when the
        # slowest stripe does (striping semantics), so a degraded OST
        # bottlenecks the whole transfer
        stripe_size = size_mb / len(stripe_osts)
        shares = {o.ost_id: o.share_for_new_transfer() for o in stripe_osts}
        physical_duration = max(stripe_size / share for share in shares.values())
        physical_rate = size_mb / physical_duration
        shaped_duration = self.qos.shaped_duration(client, size_mb, now)
        duration = max(physical_duration, shaped_duration)
        self.qos.consume(client, size_mb, now)
        for o in stripe_osts:
            o.active_transfers.add(tid)
        # a QoS-shaped transfer only occupies the devices for its physical
        # service time — shaping delays completion, it does not hog OSTs
        self.engine.schedule(
            min(physical_duration, duration),
            self._release_osts,
            tid,
            list(shares),
            label="fs-release",
        )
        self.engine.schedule(
            duration,
            self._finish_write,
            tid,
            client,
            f,
            size_mb,
            now,
            physical_rate,
            shares,
            on_done,
            label="fs-write",
        )
        return duration

    def _release_osts(self, tid: int, ost_ids: List[str]) -> None:
        for ost_id in ost_ids:
            ost = self.osts.get(ost_id)
            if ost is not None:
                ost.active_transfers.discard(tid)

    def _finish_write(
        self,
        tid: int,
        client: str,
        f: StripedFile,
        size_mb: float,
        t_start: float,
        physical_rate: float,
        shares: Dict[str, float],
        on_done: Optional[Callable[[Transfer], None]],
    ) -> None:
        now = self.engine.now
        transfer = Transfer(
            tid, client, f.name, size_mb, t_start, now, physical_rate, tuple(shares)
        )
        self.transfers.append(transfer)
        self.bytes_written_mb += size_mb
        stripe_size = size_mb / len(shares)
        # attribute each OST the service rate it delivered while the data
        # physically moved — NOT scaled by QoS shaping, which stretches the
        # transfer for tenant-policy reasons that say nothing about device
        # health (a throttled tenant must not make its OSTs look sick)
        for ost_id, share in shares.items():
            ost = self.osts.get(ost_id)
            if ost is None:
                continue
            ost.bytes_written_mb += stripe_size
            self._ost_bw_ewma[ost_id].update(share)
        for hook in self.on_transfer:
            hook(transfer)
        if on_done is not None:
            on_done(transfer)

    # -------------------------------------------------------------- sensing
    def ost_bandwidth_mbps(self, ost_id: str) -> float:
        """EWMA of recent achieved per-stripe bandwidth on an OST."""
        return self._ost_bw_ewma[ost_id].value

    def ost_pending_ops(self, ost_id: str) -> int:
        return len(self.osts[ost_id].active_transfers)

    def load_fraction(self) -> float:
        """Aggregate demand proxy: active transfers per OST, clamped to 1."""
        total_active = sum(len(o.active_transfers) for o in self.osts.values())
        return min(1.0, total_active / max(1, len(self.osts)))

    def client_transfers(self, client: str) -> List[Transfer]:
        return [t for t in self.transfers if t.client == client]

    # -------------------------------------------------------------- control
    def set_ost_state(self, ost_id: str, state: OstState, degradation_factor: float = 1.0) -> None:
        self.osts[ost_id].set_state(state, degradation_factor)
