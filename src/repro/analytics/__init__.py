"""Operational data analytics (the "Analyze" layer of Fig. 1).

Lightweight, online-first analytics chosen to match the paper's Section IV
guidance: *"focus should be on careful selection of efficient models and
modeling parameters that fit HPC data"* rather than large models.  Every
estimator here is streaming or cheap to refit, exposes its uncertainty,
and is deterministic given its inputs.
"""

from repro.analytics.streaming import Ewma, P2Quantile, RollingWindow, RunningStats
from repro.analytics.forecast import (
    ForecastResult,
    Forecaster,
    ForecasterEnsemble,
    EwmaRateForecaster,
    HoltForecaster,
    OLSForecaster,
    RateForecaster,
    TheilSenForecaster,
    make_forecaster,
)
from repro.analytics.anomaly import (
    Anomaly,
    AnomalyDetector,
    CusumDetector,
    EwmaControlChart,
    MadDetector,
    ZScoreDetector,
)
from repro.analytics.changepoint import PageHinkley
from repro.analytics.seasonal import SeasonalAnomalyDetector, SeasonalBaseline
from repro.analytics.similarity import JobRecord, RunHistory
from repro.analytics.fingerprint import BehaviorFingerprint, fingerprint_distance
from repro.analytics.misconfig import (
    MisconfigAnalyzer,
    MisconfigFinding,
    MisconfigKind,
    default_rules,
)
from repro.analytics.models import BatchPolynomialModel, OnlineModel, RecursiveLeastSquares

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "BatchPolynomialModel",
    "BehaviorFingerprint",
    "CusumDetector",
    "Ewma",
    "EwmaControlChart",
    "EwmaRateForecaster",
    "ForecastResult",
    "Forecaster",
    "ForecasterEnsemble",
    "HoltForecaster",
    "JobRecord",
    "MadDetector",
    "MisconfigAnalyzer",
    "MisconfigFinding",
    "MisconfigKind",
    "OLSForecaster",
    "OnlineModel",
    "P2Quantile",
    "PageHinkley",
    "RateForecaster",
    "RecursiveLeastSquares",
    "RollingWindow",
    "RunHistory",
    "RunningStats",
    "SeasonalAnomalyDetector",
    "SeasonalBaseline",
    "TheilSenForecaster",
    "ZScoreDetector",
    "default_rules",
    "fingerprint_distance",
    "make_forecaster",
]
