"""Online changepoint detection.

Page–Hinkley is the standard streaming test for abrupt mean changes and
is the workhorse behind the OST loop (detecting a bandwidth regime
change) and the knowledge-assessment logic (detecting progress-rate
phase changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ChangePoint:
    """A detected mean shift at ``time`` with cumulative evidence ``magnitude``."""

    time: float
    value: float
    magnitude: float
    direction: str  # "up" | "down"


class PageHinkley:
    """Two-sided Page–Hinkley test.

    ``delta`` is the magnitude tolerance (changes smaller than this are
    ignored); ``threshold`` (λ) controls the detection/false-alarm
    trade-off.  After a detection the statistics reset so successive
    changes can be caught.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 50.0, min_samples: int = 10) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._mt = 0.0  # cumulative (x - mean - delta), for upward shifts
        self._mt_min = 0.0
        self._ut = 0.0  # cumulative (mean - x - delta), for downward shifts
        self._ut_min = 0.0

    @property
    def n(self) -> int:
        return self._n

    def update(self, t: float, value: float) -> Optional[ChangePoint]:
        self._n += 1
        self._mean += (value - self._mean) / self._n
        self._mt += value - self._mean - self.delta
        self._mt_min = min(self._mt_min, self._mt)
        self._ut += self._mean - value - self.delta
        self._ut_min = min(self._ut_min, self._ut)
        if self._n < self.min_samples:
            return None
        up_stat = self._mt - self._mt_min
        down_stat = self._ut - self._ut_min
        if up_stat > self.threshold or down_stat > self.threshold:
            direction = "up" if up_stat >= down_stat else "down"
            magnitude = max(up_stat, down_stat)
            self.reset()
            return ChangePoint(t, value, magnitude, direction)
        return None
