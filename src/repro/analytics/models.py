"""Online learning models (Section IV ablation targets).

The paper argues that "the constantly evolving nature of the environment
requires continual/lifelong AI that can evolve rapidly with small
overhead" and that large models "may not be efficient when complex
optimizations for real-time decisions must be made".

Two model families make that claim testable (experiment E9):

* :class:`RecursiveLeastSquares` — the paper-endorsed approach: a tiny
  linear model updated in O(d²) per sample with a forgetting factor, so
  it tracks drift and never needs a refit.
* :class:`BatchPolynomialModel` — the "large model" stand-in: a
  high-degree polynomial ridge regression refit from scratch on every
  update over the full retained history, representing heavyweight
  offline-style models dropped into an online setting.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np


class OnlineModel(abc.ABC):
    """Regression model with streaming ``update`` and ``predict``."""

    name: str = "model"

    @abc.abstractmethod
    def update(self, x: Sequence[float], y: float) -> None:
        """Ingest one observation."""

    @abc.abstractmethod
    def predict(self, x: Sequence[float]) -> Optional[float]:
        """Point prediction; ``None`` before the model is usable."""

    @property
    @abc.abstractmethod
    def param_count(self) -> int:
        """Number of fitted parameters (model-size axis of E9)."""


class RecursiveLeastSquares(OnlineModel):
    """RLS with exponential forgetting.

    Maintains weights ``w`` and inverse covariance ``P`` for the model
    ``y ≈ w·[1, x]``.  ``forgetting`` λ ∈ (0, 1]: 1.0 is ordinary RLS;
    smaller values discount old data (lifelong adaptation).
    """

    name = "rls"

    def __init__(self, n_features: int, forgetting: float = 0.99, delta: float = 100.0) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        self.n_features = n_features
        self.forgetting = forgetting
        d = n_features + 1  # bias term
        self._w = np.zeros(d)
        self._P = np.eye(d) * delta
        self.n = 0

    def _phi(self, x: Sequence[float]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise ValueError(f"expected {self.n_features} features, got shape {x.shape}")
        return np.concatenate(([1.0], x))

    def update(self, x: Sequence[float], y: float) -> None:
        phi = self._phi(x)
        lam = self.forgetting
        Pphi = self._P @ phi
        gain = Pphi / (lam + phi @ Pphi)
        error = float(y) - float(self._w @ phi)
        self._w = self._w + gain * error
        self._P = (self._P - np.outer(gain, Pphi)) / lam
        # enforce symmetry against numerical drift
        self._P = 0.5 * (self._P + self._P.T)
        self.n += 1

    def predict(self, x: Sequence[float]) -> Optional[float]:
        if self.n < 2:
            return None
        return float(self._w @ self._phi(x))

    @property
    def param_count(self) -> int:
        return self._w.size

    @property
    def weights(self) -> np.ndarray:
        return self._w.copy()


class BatchPolynomialModel(OnlineModel):
    """Deliberately heavyweight baseline: full refit per update.

    Fits a degree-``degree`` polynomial (univariate input) with ridge
    regularization over the entire retained history on *every* update.
    Its per-update cost grows with history length — the inefficiency the
    paper warns about for real-time decision loops.
    """

    name = "batch-poly"

    def __init__(self, degree: int = 8, ridge: float = 1e-6, max_history: int = 100_000) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.ridge = ridge
        self.max_history = max_history
        self._x: list[float] = []
        self._y: list[float] = []
        self._coeffs: Optional[np.ndarray] = None
        self._x_scale = 1.0
        self.n = 0
        self.total_fit_flops = 0.0  # rough accounting for cost reports

    def update(self, x: Sequence[float], y: float) -> None:
        x = np.asarray(x, dtype=np.float64)
        if x.size != 1:
            raise ValueError("BatchPolynomialModel is univariate")
        self._x.append(float(x[0]))
        self._y.append(float(y))
        if len(self._x) > self.max_history:
            self._x.pop(0)
            self._y.pop(0)
        self.n += 1
        self._refit()

    def _refit(self) -> None:
        n = len(self._x)
        if n < self.degree + 1:
            self._coeffs = None
            return
        xs = np.asarray(self._x)
        ys = np.asarray(self._y)
        # scale to [-1, 1] for conditioning
        self._x_scale = max(1e-12, float(np.max(np.abs(xs))))
        xn = xs / self._x_scale
        V = np.vander(xn, self.degree + 1, increasing=True)
        A = V.T @ V + self.ridge * np.eye(self.degree + 1)
        b = V.T @ ys
        self._coeffs = np.linalg.solve(A, b)
        self.total_fit_flops += n * (self.degree + 1) ** 2

    def predict(self, x: Sequence[float]) -> Optional[float]:
        if self._coeffs is None:
            return None
        xv = float(np.asarray(x, dtype=np.float64).reshape(()))
        xn = xv / self._x_scale
        powers = np.power(xn, np.arange(self.degree + 1))
        return float(self._coeffs @ powers)

    @property
    def param_count(self) -> int:
        return self.degree + 1
