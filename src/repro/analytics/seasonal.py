"""Seasonal-aware anomaly detection.

HPC facility telemetry (power, temperature, load) carries strong
diurnal/weekly seasonality; a plain z-score detector either fires on
every morning ramp-up or needs thresholds so wide it misses real
events.  :class:`SeasonalBaseline` learns a per-phase (e.g. hour-of-day)
mean/std profile online; :class:`SeasonalAnomalyDetector` then scores
each sample against *its phase's* baseline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analytics.anomaly import Anomaly, AnomalyDetector
from repro.analytics.streaming import RunningStats

DAY_S = 86_400.0


class SeasonalBaseline:
    """Per-phase running mean/std over a repeating period.

    ``period_s`` is the season length (a day by default) split into
    ``n_bins`` phases; each sample updates the statistics of the bin its
    timestamp falls into.
    """

    def __init__(self, period_s: float = DAY_S, n_bins: int = 24) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        self.period_s = period_s
        self.n_bins = n_bins
        self._bins: List[RunningStats] = [RunningStats() for _ in range(n_bins)]
        self._bin_seasons: List[set] = [set() for _ in range(n_bins)]

    def bin_index(self, t: float) -> int:
        phase = (t % self.period_s) / self.period_s
        return min(self.n_bins - 1, int(phase * self.n_bins))

    def update(self, t: float, value: float) -> None:
        idx = self.bin_index(t)
        self._bins[idx].update(value)
        self._bin_seasons[idx].add(int(t // self.period_s))

    def seasons_seen(self, t: float) -> int:
        """Distinct seasons contributing to the bin containing ``t``."""
        return len(self._bin_seasons[self.bin_index(t)])

    def stats_at(self, t: float) -> RunningStats:
        return self._bins[self.bin_index(t)]

    def expected(self, t: float) -> Optional[float]:
        """Baseline mean for the phase containing ``t``; None when unseen."""
        stats = self.stats_at(t)
        return stats.mean if stats.n > 0 else None

    def coverage(self) -> float:
        """Fraction of bins with at least two samples (trained enough)."""
        return sum(1 for b in self._bins if b.n >= 2) / self.n_bins


class SeasonalAnomalyDetector(AnomalyDetector):
    """Z-score against the sample's seasonal-phase baseline.

    Detection for a bin is suppressed until it has ``min_per_bin``
    observations drawn from at least ``min_seasons`` distinct seasons —
    a single pass through the day must only train, because within-bin
    statistics from one pass reflect the signal's local trend, not its
    cross-day variability.  Anomalous samples are excluded from the
    baseline (as in :class:`~repro.analytics.anomaly.ZScoreDetector`).
    """

    name = "seasonal-zscore"

    def __init__(
        self,
        *,
        period_s: float = DAY_S,
        n_bins: int = 24,
        threshold: float = 4.0,
        min_per_bin: int = 3,
        min_seasons: int = 2,
        min_std: float = 1e-9,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_per_bin < 2:
            raise ValueError("min_per_bin must be >= 2")
        if min_seasons < 1:
            raise ValueError("min_seasons must be >= 1")
        self.baseline = SeasonalBaseline(period_s, n_bins)
        self.threshold = threshold
        self.min_per_bin = min_per_bin
        self.min_seasons = min_seasons
        self.min_std = min_std

    def update(self, t: float, value: float) -> Optional[Anomaly]:
        stats = self.baseline.stats_at(t)
        if stats.n < self.min_per_bin or self.baseline.seasons_seen(t) < self.min_seasons:
            self.baseline.update(t, value)
            return None
        std = stats.std
        if std != std or std < self.min_std:  # NaN or degenerate
            std = self.min_std
        z = (value - stats.mean) / std
        if abs(z) >= self.threshold:
            return Anomaly(
                t,
                value,
                abs(z),
                self.name,
                f"z={z:.2f} vs phase baseline {stats.mean:.3g}±{std:.3g} "
                f"(bin {self.baseline.bin_index(t)})",
            )
        self.baseline.update(t, value)
        return None
