"""Streaming statistics primitives.

All estimators are O(1) per update and never store the raw stream
(except :class:`RollingWindow`, which stores exactly its window).  They
are the building blocks for the anomaly detectors and control loops.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

import numpy as np


class RunningStats:
    """Welford's online mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN for n < 2."""
        return self._m2 / (self.n - 1) if self.n >= 2 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    @property
    def minimum(self) -> float:
        return self._min if self.n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.n else math.nan

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Parallel-merge two accumulators (Chan et al.)."""
        out = RunningStats()
        if self.n == 0:
            out.n, out._mean, out._m2 = other.n, other._mean, other._m2
            out._min, out._max = other._min, other._max
            return out
        if other.n == 0:
            out.n, out._mean, out._m2 = self.n, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        n = self.n + other.n
        delta = other._mean - self._mean
        out.n = n
        out._mean = self._mean + delta * other.n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


class Ewma:
    """Exponentially weighted moving average with optional variance.

    ``alpha`` is the smoothing factor in (0, 1]; larger reacts faster.
    The EW variance uses the standard recursive estimator, which the
    EWMA control chart consumes.
    """

    __slots__ = ("alpha", "_value", "_variance", "n")

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._variance = 0.0
        self.n = 0

    def update(self, x: float) -> float:
        x = float(x)
        self.n += 1
        if self._value is None:
            self._value = x
            self._variance = 0.0
        else:
            diff = x - self._value
            incr = self.alpha * diff
            self._value += incr
            self._variance = (1.0 - self.alpha) * (self._variance + self.alpha * diff * diff)
        return self._value

    @property
    def value(self) -> float:
        return self._value if self._value is not None else math.nan

    @property
    def std(self) -> float:
        return math.sqrt(self._variance)


class RollingWindow:
    """Fixed-size window with O(1) amortized summary statistics."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._buf: Deque[float] = deque(maxlen=size)

    def update(self, x: float) -> None:
        self._buf.append(float(x))

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def full(self) -> bool:
        return len(self._buf) == self.size

    def values(self) -> np.ndarray:
        return np.asarray(self._buf, dtype=np.float64)

    @property
    def mean(self) -> float:
        return float(np.mean(self._buf)) if self._buf else math.nan

    @property
    def std(self) -> float:
        """Sample std (ddof=1); NaN for fewer than two points."""
        return float(np.std(self._buf, ddof=1)) if len(self._buf) >= 2 else math.nan

    @property
    def median(self) -> float:
        return float(np.median(self._buf)) if self._buf else math.nan

    def mad(self) -> float:
        """Median absolute deviation (unscaled)."""
        if not self._buf:
            return math.nan
        arr = self.values()
        return float(np.median(np.abs(arr - np.median(arr))))


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Maintains five markers; O(1) memory and update.  Accurate to a few
    percent on smooth distributions — exactly the trade the paper's
    Section IV asks for (efficient models over exact-but-heavy ones).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self.n = 0

    def update(self, x: float) -> None:
        x = float(x)
        self.n += 1
        if len(self._initial) < 5:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        h = self._heights
        pos = self._positions
        # locate cell and clamp extremes
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust interior markers with parabolic prediction
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                sign = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + sign / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + sign) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - sign) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact until five samples arrive)."""
        if self.n == 0:
            return math.nan
        if len(self._initial) < 5:
            return float(np.quantile(self._initial, self.q))
        return self._heights[2]
