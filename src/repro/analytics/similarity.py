"""Job similarity over run history.

The Scheduler case requires "a strategy ... to map the application to a
set of measurements of behavioral characteristics to enable comparison
against past and future runs".  :class:`RunHistory` stores completed-run
records with feature vectors and answers k-nearest-neighbour queries in
z-score-normalized feature space; its runtime predictions seed the Plan
phase's prior Knowledge ("might have to be inferred from similar jobs
with different input decks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class JobRecord:
    """One completed run: identity, features, and outcome."""

    job_id: str
    app_name: str
    features: Mapping[str, float]
    runtime_s: float
    succeeded: bool = True
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.runtime_s < 0:
            raise ValueError("runtime_s must be >= 0")


@dataclass(frozen=True)
class Neighbor:
    """A nearest-neighbour match with its feature-space distance."""

    record: JobRecord
    distance: float


class RunHistory:
    """Store of job records with normalized k-NN lookup.

    Feature vectors may be ragged (different keys per record); queries use
    the intersection of the query's keys and the store's known keys, with
    missing values treated as the feature mean (zero after normalization).
    """

    def __init__(self, feature_keys: Optional[Sequence[str]] = None) -> None:
        self._records: List[JobRecord] = []
        self._explicit_keys = list(feature_keys) if feature_keys else None

    def add(self, record: JobRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, app_name: Optional[str] = None) -> List[JobRecord]:
        if app_name is None:
            return list(self._records)
        return [r for r in self._records if r.app_name == app_name]

    def feature_keys(self) -> List[str]:
        if self._explicit_keys is not None:
            return list(self._explicit_keys)
        keys: set[str] = set()
        for r in self._records:
            keys.update(r.features)
        return sorted(keys)

    def _matrix(self, records: List[JobRecord], keys: List[str]) -> np.ndarray:
        mat = np.full((len(records), len(keys)), np.nan)
        for i, r in enumerate(records):
            for j, k in enumerate(keys):
                if k in r.features:
                    mat[i, j] = float(r.features[k])
        return mat

    def nearest(
        self,
        query: Mapping[str, float],
        k: int = 5,
        app_name: Optional[str] = None,
    ) -> List[Neighbor]:
        """The ``k`` most similar historical runs (normalized Euclidean)."""
        if k <= 0:
            raise ValueError("k must be positive")
        records = self.records(app_name)
        if not records:
            return []
        keys = self.feature_keys()
        if not keys:
            return []
        mat = self._matrix(records, keys)
        mean = np.nanmean(mat, axis=0)
        std = np.nanstd(mat, axis=0)
        std[~np.isfinite(std) | (std == 0)] = 1.0
        mean[~np.isfinite(mean)] = 0.0
        norm = (np.where(np.isnan(mat), mean, mat) - mean) / std
        q = np.array(
            [(float(query[key]) - mean[j]) / std[j] if key in query else 0.0 for j, key in enumerate(keys)]
        )
        dists = np.sqrt(np.sum((norm - q) ** 2, axis=1))
        order = np.argsort(dists, kind="stable")[:k]
        return [Neighbor(records[i], float(dists[i])) for i in order]

    def predict_runtime(
        self,
        query: Mapping[str, float],
        k: int = 5,
        app_name: Optional[str] = None,
    ) -> Optional[Tuple[float, float]]:
        """Inverse-distance-weighted runtime estimate ``(mean, spread)``.

        ``spread`` is the weighted std of neighbour runtimes — the
        uncertainty a Planner should respect.  ``None`` without history.
        """
        neighbors = self.nearest(query, k=k, app_name=app_name)
        neighbors = [n for n in neighbors if n.record.succeeded]
        if not neighbors:
            return None
        weights = np.array([1.0 / (1.0 + n.distance) for n in neighbors])
        runtimes = np.array([n.record.runtime_s for n in neighbors])
        weights /= weights.sum()
        mean = float(np.sum(weights * runtimes))
        spread = float(np.sqrt(np.sum(weights * (runtimes - mean) ** 2)))
        return mean, spread
