"""Time-to-completion (TTC) forecasting from progress markers.

The Scheduler use case (Fig. 3) needs "a few simple measurable quantities
... to forecast time to completion".  A forecaster consumes the stream of
``(time, step)`` progress markers and predicts when the application will
reach its target step, together with a prediction interval — the
confidence measure Section IV requires before autonomous action.

Four implementations with different robustness/cost trade-offs:

=================  ==========================================  =========
Forecaster         Method                                      Cost/update
=================  ==========================================  =========
RateForecaster     end-to-end average progress rate            O(1)
EwmaRateForecaster EWMA of incremental rates (drift-adaptive)  O(1)
OLSForecaster      least squares step ~ a + b*t + OLS PI       O(w)
TheilSenForecaster median of pairwise slopes (outlier-robust)  O(w²)
HoltForecaster     double exponential smoothing (level+trend)  O(1)
=================  ==========================================  =========

``w`` is the retained window length (bounded).  All forecasters answer
``None`` until they have enough information, never a wild guess.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics.streaming import Ewma


@dataclass(frozen=True)
class ForecastResult:
    """Prediction of when the target step count will be reached.

    ``eta`` is an absolute simulation time.  ``eta_lo``/``eta_hi`` bound
    the prediction (central interval at the forecaster's configured
    confidence).  ``rate`` is the estimated progress rate (steps/s).
    """

    eta: float
    eta_lo: float
    eta_hi: float
    rate: float
    n_markers: int

    @property
    def interval_width(self) -> float:
        return self.eta_hi - self.eta_lo

    def remaining(self, now: float) -> float:
        """Predicted seconds until completion from ``now``."""
        return max(0.0, self.eta - now)


class Forecaster(abc.ABC):
    """Streaming TTC forecaster over ``(time, step)`` markers."""

    #: human-readable name used by the registry / reports
    name: str = "forecaster"

    @abc.abstractmethod
    def update(self, t: float, step: float) -> None:
        """Ingest one progress marker."""

    @abc.abstractmethod
    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        """Predict completion of ``target_step``; ``None`` if not ready."""

    def rate_estimate(self) -> Optional[float]:
        """Current progress-rate estimate (steps/s); ``None`` if not ready.

        Used by the ensemble to score members without a full forecast.
        """
        return None

    def reset(self) -> None:  # pragma: no cover - overridden where stateful
        raise NotImplementedError


def _finite_eta(now: float, last_step: float, target_step: float, rate: float) -> Optional[float]:
    """Completion time at constant ``rate``; None when rate is unusable."""
    if rate <= 0 or not math.isfinite(rate):
        return None
    return now + max(0.0, target_step - last_step) / rate


class RateForecaster(Forecaster):
    """Average rate between the first and last marker.

    The simplest "few simple measurable quantities" estimator.  The
    interval is a multiplicative band around the mean rate, widening for
    short histories.
    """

    name = "rate"

    def __init__(self, band: float = 0.15) -> None:
        if band < 0:
            raise ValueError("band must be >= 0")
        self.band = band
        self._first: Optional[tuple[float, float]] = None
        self._last: Optional[tuple[float, float]] = None
        self.n = 0

    def reset(self) -> None:
        self._first = None
        self._last = None
        self.n = 0

    def update(self, t: float, step: float) -> None:
        if self._first is None:
            self._first = (t, step)
        self._last = (t, step)
        self.n += 1

    def rate_estimate(self) -> Optional[float]:
        if self._first is None or self._last is None or self.n < 2:
            return None
        (t0, s0), (t1, s1) = self._first, self._last
        if t1 <= t0 or s1 <= s0:
            return None
        return (s1 - s0) / (t1 - t0)

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        rate = self.rate_estimate()
        if rate is None:
            return None
        _, s1 = self._last
        eta = _finite_eta(now, s1, target_step, rate)
        if eta is None:
            return None
        # widen the band when few markers support the estimate
        widen = self.band * (1.0 + 2.0 / max(1, self.n - 1))
        lo = _finite_eta(now, s1, target_step, rate * (1.0 + widen))
        hi = _finite_eta(now, s1, target_step, rate * max(1e-12, 1.0 - widen))
        return ForecastResult(eta, lo, hi, rate, self.n)


class EwmaRateForecaster(Forecaster):
    """EWMA over incremental rates — adapts to progress-rate drift."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3, band_sigmas: float = 2.0) -> None:
        self._ewma = Ewma(alpha)
        self.alpha = alpha
        self.band_sigmas = band_sigmas
        self._last: Optional[tuple[float, float]] = None
        self.n = 0

    def reset(self) -> None:
        self._ewma = Ewma(self.alpha)
        self._last = None
        self.n = 0

    def update(self, t: float, step: float) -> None:
        if self._last is not None:
            dt = t - self._last[0]
            ds = step - self._last[1]
            if dt > 0:
                self._ewma.update(ds / dt)
        self._last = (t, step)
        self.n += 1

    def rate_estimate(self) -> Optional[float]:
        if self._last is None or self._ewma.n < 2:
            return None
        return self._ewma.value

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        rate = self.rate_estimate()
        if rate is None:
            return None
        eta = _finite_eta(now, self._last[1], target_step, rate)
        if eta is None:
            return None
        sigma = self._ewma.std
        rate_hi = rate + self.band_sigmas * sigma
        rate_lo = max(1e-12, rate - self.band_sigmas * sigma)
        lo = _finite_eta(now, self._last[1], target_step, rate_hi) or eta
        hi = _finite_eta(now, self._last[1], target_step, rate_lo) or eta
        return ForecastResult(eta, lo, hi, rate, self.n)


class OLSForecaster(Forecaster):
    """Ordinary least squares ``step ~ a + b t`` over a bounded window.

    The prediction interval follows the classical OLS formula for a new
    observation, inverted onto the time axis at the target step via the
    delta method (interval on the predicted step mapped through 1/b).
    """

    name = "ols"

    def __init__(self, window: int = 64, z: float = 1.96) -> None:
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = window
        self.z = z
        self._t: list[float] = []
        self._s: list[float] = []

    def reset(self) -> None:
        self._t.clear()
        self._s.clear()

    def update(self, t: float, step: float) -> None:
        self._t.append(float(t))
        self._s.append(float(step))
        if len(self._t) > self.window:
            self._t.pop(0)
            self._s.pop(0)

    def rate_estimate(self) -> Optional[float]:
        fit = self._fit()
        return fit[1] if fit is not None else None

    def _fit(self) -> Optional[tuple]:
        """OLS fit over the window: ``(a, b, t_mean, sxx, sigma2, n)``."""
        n = len(self._t)
        if n < 3:
            return None
        t = np.asarray(self._t)
        s = np.asarray(self._s)
        t_mean = t.mean()
        s_mean = s.mean()
        sxx = float(np.sum((t - t_mean) ** 2))
        if sxx <= 0:
            return None
        b = float(np.sum((t - t_mean) * (s - s_mean)) / sxx)
        if b <= 0:
            return None
        a = s_mean - b * t_mean
        resid = s - (a + b * t)
        dof = n - 2
        sigma2 = float(np.sum(resid**2) / dof) if dof > 0 else 0.0
        return a, b, float(t_mean), sxx, sigma2, n

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        fit = self._fit()
        if fit is None:
            return None
        a, b, t_mean, sxx, sigma2, n = fit
        eta = (target_step - a) / b
        if eta < now:
            eta = now
        # std error of predicted *step* at time eta
        se_step = math.sqrt(sigma2 * (1.0 + 1.0 / n + (eta - t_mean) ** 2 / sxx))
        # delta method: time uncertainty = step uncertainty / slope
        se_time = se_step / b
        return ForecastResult(
            eta=max(now, eta),
            eta_lo=max(now, eta - self.z * se_time),
            eta_hi=eta + self.z * se_time,
            rate=b,
            n_markers=n,
        )


class TheilSenForecaster(Forecaster):
    """Theil–Sen median-slope regression — robust to marker outliers.

    Pairwise slopes are capped at ``max_pairs`` (random-free: most recent
    pairs preferred) to bound cost on long histories.
    """

    name = "theilsen"

    def __init__(self, window: int = 48, band: float = 0.15) -> None:
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = window
        self.band = band
        self._t: list[float] = []
        self._s: list[float] = []

    def reset(self) -> None:
        self._t.clear()
        self._s.clear()

    def update(self, t: float, step: float) -> None:
        self._t.append(float(t))
        self._s.append(float(step))
        if len(self._t) > self.window:
            self._t.pop(0)
            self._s.pop(0)

    def _slopes(self) -> Optional[np.ndarray]:
        n = len(self._t)
        if n < 3:
            return None
        t = np.asarray(self._t)
        s = np.asarray(self._s)
        # all pairwise slopes via broadcasting on the bounded window
        dt = t[None, :] - t[:, None]
        ds = s[None, :] - s[:, None]
        iu = np.triu_indices(n, k=1)
        valid = dt[iu] > 0
        if not np.any(valid):
            return None
        return ds[iu][valid] / dt[iu][valid]

    def rate_estimate(self) -> Optional[float]:
        slopes = self._slopes()
        if slopes is None:
            return None
        b = float(np.median(slopes))
        return b if b > 0 else None

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        slopes = self._slopes()
        if slopes is None:
            return None
        n = len(self._t)
        t = np.asarray(self._t)
        s = np.asarray(self._s)
        b = float(np.median(slopes))
        if b <= 0:
            return None
        a = float(np.median(s - b * t))
        eta = max(now, (target_step - a) / b)
        # interval from the IQR of slopes mapped through the inversion
        lo_slope = float(np.percentile(slopes, 75))
        hi_slope = float(np.percentile(slopes, 25))
        last_step = float(s[-1])
        lo = _finite_eta(now, last_step, target_step, max(lo_slope, 1e-12)) or eta
        hi = _finite_eta(now, last_step, target_step, max(hi_slope, 1e-12)) or eta
        lo, hi = min(lo, eta), max(hi, eta)
        return ForecastResult(eta, lo, hi, b, n)


class HoltForecaster(Forecaster):
    """Holt double exponential smoothing on the step series.

    Maintains a level and trend; forecast inverts the trend line.  The
    interval widens with the smoothed one-step forecast error (an
    EWMA of absolute residuals), following standard practice.
    """

    name = "holt"

    def __init__(self, alpha: float = 0.5, beta: float = 0.2, band_sigmas: float = 2.0) -> None:
        for nm, v in (("alpha", alpha), ("beta", beta)):
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{nm} must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.band_sigmas = band_sigmas
        self._level: Optional[float] = None
        self._trend = 0.0
        self._last_t: Optional[float] = None
        self._err = Ewma(0.2)
        self.n = 0

    def reset(self) -> None:
        self._level = None
        self._trend = 0.0
        self._last_t = None
        self._err = Ewma(0.2)
        self.n = 0

    def update(self, t: float, step: float) -> None:
        self.n += 1
        if self._level is None:
            self._level = float(step)
            self._last_t = t
            return
        dt = t - self._last_t
        if dt <= 0:
            return
        predicted = self._level + self._trend * dt
        self._err.update(abs(step - predicted))
        new_level = self.alpha * step + (1 - self.alpha) * predicted
        new_trend = self.beta * (new_level - self._level) / dt + (1 - self.beta) * self._trend
        self._level, self._trend, self._last_t = new_level, new_trend, t

    def rate_estimate(self) -> Optional[float]:
        if self._level is None or self.n < 3 or self._trend <= 0:
            return None
        return self._trend

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        if self._level is None or self.n < 3 or self._trend <= 0:
            return None
        # project level forward to `now` first
        level_now = self._level + self._trend * max(0.0, now - self._last_t)
        eta = _finite_eta(now, level_now, target_step, self._trend)
        if eta is None:
            return None
        err = self._err.value if self._err.n else 0.0
        half = self.band_sigmas * err / self._trend if self._trend > 0 else 0.0
        return ForecastResult(eta, max(now, eta - half), eta + half, self._trend, self.n)


class ForecasterEnsemble(Forecaster):
    """Lifelong-adaptive forecaster: delegates to the current best member.

    Section IV calls for "continual/lifelong AI that can evolve rapidly
    with small overhead".  The ensemble runs several member forecasters
    on the same marker stream, scores each one's one-marker-ahead step
    prediction with an EWMA of absolute error, and answers forecasts
    from the member with the lowest recent error.  Selection adapts
    within a few markers when the stream's character changes (e.g.
    outliers appear and Theil–Sen starts beating OLS).
    """

    name = "ensemble"

    def __init__(
        self,
        member_names: Optional[tuple] = None,
        *,
        error_alpha: float = 0.3,
    ) -> None:
        names = tuple(member_names) if member_names else ("rate", "ewma", "ols", "theilsen", "holt")
        if "ensemble" in names:
            raise ValueError("ensemble cannot contain itself")
        self._members = {n: make_forecaster(n) for n in names}
        self._errors = {n: Ewma(error_alpha) for n in names}
        self._last: Optional[tuple[float, float]] = None
        self.n = 0

    def reset(self) -> None:
        for fc in self._members.values():
            fc.reset()
        for name in self._errors:
            self._errors[name] = Ewma(self._errors[name].alpha)
        self._last = None
        self.n = 0

    def update(self, t: float, step: float) -> None:
        # score members on the step they would have predicted for `t`
        if self._last is not None:
            last_t, last_step = self._last
            dt = t - last_t
            if dt > 0:
                for name, fc in self._members.items():
                    # member's rate estimate as of the previous marker
                    rate = fc.rate_estimate()
                    if rate is not None and math.isfinite(rate):
                        predicted = last_step + rate * dt
                        self._errors[name].update(abs(predicted - step))
        for fc in self._members.values():
            fc.update(t, step)
        self._last = (t, step)
        self.n += 1

    @property
    def best_name(self) -> Optional[str]:
        """Member with the lowest recent one-step error; None pre-scoring."""
        scored = {n: e.value for n, e in self._errors.items() if e.n > 0}
        if not scored:
            return None
        return min(sorted(scored), key=lambda n: scored[n])

    def forecast(self, now: float, target_step: float) -> Optional[ForecastResult]:
        order = []
        best = self.best_name
        if best is not None:
            order.append(best)
        order.extend(n for n in self._members if n not in order)
        for name in order:
            result = self._members[name].forecast(now, target_step)
            if result is not None:
                return result
        return None


_FORECASTERS = {
    "rate": RateForecaster,
    "ewma": EwmaRateForecaster,
    "ols": OLSForecaster,
    "theilsen": TheilSenForecaster,
    "holt": HoltForecaster,
    "ensemble": ForecasterEnsemble,
}


def make_forecaster(name: str, **kwargs) -> Forecaster:
    """Construct a forecaster by registry name (interchangeability hook)."""
    try:
        cls = _FORECASTERS[name]
    except KeyError:
        raise ValueError(f"unknown forecaster {name!r}; choose from {sorted(_FORECASTERS)}") from None
    return cls(**kwargs)


def forecaster_names() -> list[str]:
    return sorted(_FORECASTERS)
