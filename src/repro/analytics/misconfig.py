"""Misconfiguration detection (use case 4, Section III).

The paper lists "unintended mismatch of threads to cores, underutilization
of CPUs or GPUs, or wrong library search paths".  Each rule inspects a
:class:`JobConfigView` — the launch configuration plus observed telemetry
summaries — and produces :class:`MisconfigFinding` objects with an
explanation and a suggested remediation, supporting both responses the
paper names: informing the user, or fixing on the fly.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple


class MisconfigKind(enum.Enum):
    THREAD_CORE_MISMATCH = "thread_core_mismatch"
    CPU_UNDERUTILIZATION = "cpu_underutilization"
    GPU_UNDERUTILIZATION = "gpu_underutilization"
    WRONG_LIBRARY_PATH = "wrong_library_path"
    MEMORY_OVERSUBSCRIPTION = "memory_oversubscription"


@dataclass(frozen=True)
class JobConfigView:
    """What the detector can see about a job: request, launch, telemetry."""

    job_id: str
    cores_allocated: int
    gpus_allocated: int = 0
    mem_allocated_gb: float = 0.0
    threads_requested: int = 0  # e.g. OMP_NUM_THREADS; 0 = unset
    library_paths: Tuple[str, ...] = ()
    expected_libraries: Tuple[str, ...] = ()
    # telemetry summaries over the observation window
    cpu_util_mean: float = float("nan")
    gpu_util_mean: float = float("nan")
    mem_used_gb_p95: float = float("nan")
    observation_s: float = 0.0


@dataclass(frozen=True)
class MisconfigFinding:
    """One detected misconfiguration with remediation guidance."""

    job_id: str
    kind: MisconfigKind
    severity: float  # 0..1, drives inform-vs-fix policy
    explanation: str
    suggestion: str
    fixable_online: bool = False
    fix_params: Mapping[str, float] = field(default_factory=dict)


class MisconfigRule(abc.ABC):
    """One detection rule; stateless and order-independent."""

    name: str = "rule"

    @abc.abstractmethod
    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        """Inspect ``view``; return a finding or ``None``."""


class ThreadCoreMismatchRule(MisconfigRule):
    """Threads configured ≠ cores allocated (both directions are waste).

    Under-subscription idles paid-for cores; over-subscription causes
    destructive context switching.  Fixable online by resetting the
    thread count.
    """

    name = "thread-core-mismatch"

    def __init__(self, tolerance: int = 0) -> None:
        self.tolerance = tolerance

    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        if view.threads_requested <= 0 or view.cores_allocated <= 0:
            return None
        diff = view.threads_requested - view.cores_allocated
        if abs(diff) <= self.tolerance:
            return None
        if diff > 0:
            explanation = (
                f"{view.threads_requested} threads on {view.cores_allocated} cores: "
                "oversubscription causes context-switch thrash"
            )
            severity = min(1.0, diff / max(1, view.cores_allocated))
        else:
            explanation = (
                f"{view.threads_requested} threads on {view.cores_allocated} cores: "
                f"{-diff} allocated cores idle"
            )
            severity = min(1.0, -diff / view.cores_allocated)
        return MisconfigFinding(
            view.job_id,
            MisconfigKind.THREAD_CORE_MISMATCH,
            severity,
            explanation,
            f"set thread count to {view.cores_allocated}",
            fixable_online=True,
            fix_params={"threads": float(view.cores_allocated)},
        )


class CpuUnderutilizationRule(MisconfigRule):
    """Mean CPU utilization below threshold over a minimum observation."""

    name = "cpu-underutilization"

    def __init__(self, threshold: float = 0.25, min_observation_s: float = 300.0) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.min_observation_s = min_observation_s

    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        util = view.cpu_util_mean
        if util != util or view.observation_s < self.min_observation_s:  # NaN check
            return None
        if util >= self.threshold:
            return None
        return MisconfigFinding(
            view.job_id,
            MisconfigKind.CPU_UNDERUTILIZATION,
            severity=min(1.0, (self.threshold - util) / self.threshold),
            explanation=f"mean CPU utilization {util:.0%} over {view.observation_s:.0f}s "
            f"(threshold {self.threshold:.0%})",
            suggestion="request fewer cores or check input decomposition",
        )


class GpuUnderutilizationRule(MisconfigRule):
    """GPUs allocated but (nearly) idle — the most expensive waste."""

    name = "gpu-underutilization"

    def __init__(self, threshold: float = 0.10, min_observation_s: float = 300.0) -> None:
        self.threshold = threshold
        self.min_observation_s = min_observation_s

    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        if view.gpus_allocated <= 0:
            return None
        util = view.gpu_util_mean
        if util != util or view.observation_s < self.min_observation_s:
            return None
        if util >= self.threshold:
            return None
        return MisconfigFinding(
            view.job_id,
            MisconfigKind.GPU_UNDERUTILIZATION,
            severity=1.0 if util < 0.01 else 0.6,
            explanation=f"{view.gpus_allocated} GPUs allocated, mean utilization {util:.0%}",
            suggestion="verify GPU offload is enabled or drop the GPU request",
        )


class WrongLibraryPathRule(MisconfigRule):
    """Expected optimized libraries missing from the search path.

    The signature check is simulated: the launch environment carries the
    resolved library list, and expected high-performance libraries (e.g.
    the site BLAS) must appear before generic fallbacks.
    """

    name = "wrong-library-path"

    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        if not view.expected_libraries:
            return None
        missing = [lib for lib in view.expected_libraries if lib not in view.library_paths]
        if not missing:
            return None
        return MisconfigFinding(
            view.job_id,
            MisconfigKind.WRONG_LIBRARY_PATH,
            severity=min(1.0, len(missing) / len(view.expected_libraries)),
            explanation=f"expected libraries not on search path: {', '.join(missing)}",
            suggestion="prepend the site module paths (module load <site-stack>)",
            fixable_online=True,
        )


class MemoryOversubscriptionRule(MisconfigRule):
    """P95 memory use close to or beyond the allocation — OOM risk."""

    name = "memory-oversubscription"

    def __init__(self, ratio_threshold: float = 0.95) -> None:
        self.ratio_threshold = ratio_threshold

    def check(self, view: JobConfigView) -> Optional[MisconfigFinding]:
        if view.mem_allocated_gb <= 0 or view.mem_used_gb_p95 != view.mem_used_gb_p95:
            return None
        ratio = view.mem_used_gb_p95 / view.mem_allocated_gb
        if ratio < self.ratio_threshold:
            return None
        return MisconfigFinding(
            view.job_id,
            MisconfigKind.MEMORY_OVERSUBSCRIPTION,
            severity=min(1.0, ratio - self.ratio_threshold + 0.5),
            explanation=f"p95 memory {view.mem_used_gb_p95:.1f} GiB is {ratio:.0%} of the "
            f"{view.mem_allocated_gb:.1f} GiB allocation",
            suggestion="request more memory per node or reduce problem size per rank",
        )


def default_rules() -> List[MisconfigRule]:
    """The rule set covering every misconfiguration the paper names."""
    return [
        ThreadCoreMismatchRule(),
        CpuUnderutilizationRule(),
        GpuUnderutilizationRule(),
        WrongLibraryPathRule(),
        MemoryOversubscriptionRule(),
    ]


class MisconfigAnalyzer:
    """Runs a rule set over job views and ranks findings by severity."""

    def __init__(self, rules: Optional[Sequence[MisconfigRule]] = None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()

    def analyze(self, view: JobConfigView) -> List[MisconfigFinding]:
        findings = [f for rule in self.rules if (f := rule.check(view)) is not None]
        findings.sort(key=lambda f: f.severity, reverse=True)
        return findings
