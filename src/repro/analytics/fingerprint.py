"""Behavioral characterization of applications.

A :class:`BehaviorFingerprint` condenses one run's telemetry into a small
named feature vector (utilization, I/O, progress statistics).  The OST,
I/O-QoS, and Misconfiguration cases all rely on "storage/retrieval of
behavioral attributes ... to have a reference for expected operation";
fingerprints are that reference, and they double as the feature vectors
for :class:`~repro.analytics.similarity.RunHistory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.telemetry.metric import SeriesKey
from repro.telemetry.tsdb import TimeSeriesStore


@dataclass(frozen=True)
class BehaviorFingerprint:
    """Summary features of one job's observed behaviour."""

    job_id: str
    app_name: str
    features: Dict[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = float("nan")) -> float:
        return self.features.get(key, default)


_SUMMARY_SUFFIXES = ("mean", "std", "p95")


def _summarize(values: np.ndarray) -> Dict[str, float]:
    if values.size == 0:
        return {}
    return {
        "mean": float(np.mean(values)),
        "std": float(np.std(values)),
        "p95": float(np.percentile(values, 95)),
    }


def fingerprint_from_store(
    store: TimeSeriesStore,
    job_id: str,
    app_name: str,
    t0: float,
    t1: float,
    metrics: Mapping[str, SeriesKey],
) -> BehaviorFingerprint:
    """Build a fingerprint from TSDB windows.

    ``metrics`` maps feature prefixes to series keys, e.g.
    ``{"cpu": SeriesKey.of("node_cpu_util", node="n1"), ...}``; each
    contributes ``<prefix>_mean/std/p95`` features.
    """
    features: Dict[str, float] = {}
    for prefix, key in metrics.items():
        _, values = store.query(key, t0, t1)
        for suffix, value in _summarize(values).items():
            features[f"{prefix}_{suffix}"] = value
    return BehaviorFingerprint(job_id, app_name, features)


def fingerprint_distance(
    a: BehaviorFingerprint,
    b: BehaviorFingerprint,
    scales: Optional[Mapping[str, float]] = None,
) -> float:
    """Normalized Euclidean distance over shared features.

    ``scales`` supplies per-feature normalization constants (e.g. fleet
    std); features missing a scale use the larger magnitude of the two
    values, making the distance unit-free.  Returns ``inf`` when the
    fingerprints share no features.
    """
    shared = sorted(set(a.features) & set(b.features))
    if not shared:
        return float("inf")
    total = 0.0
    for key in shared:
        va, vb = a.features[key], b.features[key]
        if scales and key in scales and scales[key] > 0:
            scale = scales[key]
        else:
            scale = max(abs(va), abs(vb), 1e-12)
        diff = (va - vb) / scale
        total += diff * diff
    return float(np.sqrt(total / len(shared)))
