"""Online anomaly detection.

Each detector consumes one sample at a time and reports an
:class:`Anomaly` when the sample (or the recent stream) is inconsistent
with expected behaviour.  Detectors are deliberately simple and
explainable — the paper's Section IV stresses interpretability over
model size for operational trust.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional

from repro.analytics.streaming import Ewma, RollingWindow, RunningStats

#: Consistent scale factor so MAD estimates Gaussian sigma.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly: when, what value, how severe, which rule."""

    time: float
    value: float
    score: float
    kind: str
    detail: str = ""


class AnomalyDetector(abc.ABC):
    """Streaming detector interface."""

    name: str = "detector"

    @abc.abstractmethod
    def update(self, t: float, value: float) -> Optional[Anomaly]:
        """Ingest one sample; return an anomaly or ``None``."""


class ZScoreDetector(AnomalyDetector):
    """Rolling-window z-score thresholding.

    Flags samples more than ``threshold`` sample-standard-deviations from
    the window mean.  The window must be full before detection starts
    (cold-start suppression), and flagged samples are *not* fed into the
    window, so a level shift keeps firing until re-armed.
    """

    name = "zscore"

    def __init__(self, window: int = 60, threshold: float = 4.0, min_std: float = 1e-9) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = RollingWindow(window)
        self.threshold = threshold
        self.min_std = min_std

    def update(self, t: float, value: float) -> Optional[Anomaly]:
        if not self.window.full:
            self.window.update(value)
            return None
        mean = self.window.mean
        std = max(self.window.std, self.min_std)
        z = (value - mean) / std
        if abs(z) >= self.threshold:
            return Anomaly(t, value, abs(z), self.name, f"z={z:.2f} vs window mean {mean:.3g}")
        self.window.update(value)
        return None

    def scan(self, times, values) -> "list[Anomaly]":
        """Batch-evaluate a whole series with the same semantics as
        repeated :meth:`update` calls, at running-sum speed.

        The per-point path recomputes window mean/std from the buffer on
        every sample (an O(window) NumPy reduction per point), which
        dominates experiment wall-clock when diagnosing thousands of
        nodes.  ``scan`` maintains the rolling sum and sum-of-squares
        incrementally — identical accepted-sample window contents and the
        same flag decisions up to float-summation rounding — so a full
        series costs a tight O(n) pass.  The detector's window state
        after ``scan`` matches the sequential equivalent.
        """
        window = self.window
        size = window.size
        buf = window._buf
        # Accumulate shifted values (v - offset) so the sum-of-squares
        # variance keeps precision for large-mean series (counters,
        # byte totals): the shift cancels in the variance and is added
        # back for the mean.
        if buf:
            offset = buf[0]
        elif len(values):
            offset = float(values[0])
        else:
            return []
        acc_sum = float(sum(v - offset for v in buf))
        acc_sumsq = float(sum((v - offset) ** 2 for v in buf))
        threshold = self.threshold
        min_std = self.min_std
        out: list[Anomaly] = []
        for t, value in zip(times, values):
            value = float(value)
            n = len(buf)
            if n == size:
                mean = offset + acc_sum / n
                if n >= 2:
                    var = (acc_sumsq - acc_sum * acc_sum / n) / (n - 1)
                    std = max(math.sqrt(var) if var > 0 else 0.0, min_std)
                    z = (value - mean) / std
                else:  # window=1: sample std undefined, never flags
                    z = math.nan
                if abs(z) >= threshold:
                    out.append(
                        Anomaly(t, value, abs(z), self.name,
                                f"z={z:.2f} vs window mean {mean:.3g}")
                    )
                    continue  # flagged samples are not fed into the window
                oldest = buf[0] - offset
                acc_sum -= oldest
                acc_sumsq -= oldest * oldest
            buf.append(value)
            shifted = value - offset
            acc_sum += shifted
            acc_sumsq += shifted * shifted
        return out


class MadDetector(AnomalyDetector):
    """Median/MAD robust outlier detection over a rolling window.

    Resistant to outliers already in the window (unlike z-score), at the
    cost of a per-update median.
    """

    name = "mad"

    def __init__(self, window: int = 60, threshold: float = 5.0, min_mad: float = 1e-9) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = RollingWindow(window)
        self.threshold = threshold
        self.min_mad = min_mad

    def update(self, t: float, value: float) -> Optional[Anomaly]:
        if not self.window.full:
            self.window.update(value)
            return None
        med = self.window.median
        sigma = max(self.window.mad() * MAD_TO_SIGMA, self.min_mad)
        score = abs(value - med) / sigma
        self.window.update(value)  # robust stats tolerate contaminated windows
        if score >= self.threshold:
            return Anomaly(t, value, score, self.name, f"|x-med|/MADsigma={score:.2f}")
        return None


class EwmaControlChart(AnomalyDetector):
    """EWMA control chart: flags when the smoothed value escapes ±L·σ.

    σ is estimated online from a warmup sample; the chart then tracks the
    EWMA of the stream and alarms on control-limit violations — the
    classic SPC tool for drift detection.
    """

    name = "ewma-chart"

    def __init__(self, alpha: float = 0.2, L: float = 3.0, warmup: int = 30) -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.ewma = Ewma(alpha)
        self.L = L
        self.warmup = warmup
        self._baseline = RunningStats()

    def update(self, t: float, value: float) -> Optional[Anomaly]:
        if self._baseline.n < self.warmup:
            self._baseline.update(value)
            self.ewma.update(value)
            return None
        center = self._baseline.mean
        # EWMA asymptotic std: sigma * sqrt(alpha / (2 - alpha))
        sigma = self._baseline.std * math.sqrt(self.ewma.alpha / (2.0 - self.ewma.alpha))
        smoothed = self.ewma.update(value)
        if sigma <= 0:
            return None
        score = abs(smoothed - center) / sigma
        if score >= self.L:
            return Anomaly(
                t, value, score, self.name, f"ewma={smoothed:.3g} outside {center:.3g}±{self.L}σ"
            )
        return None


class CusumDetector(AnomalyDetector):
    """Two-sided CUSUM for small persistent shifts.

    Accumulates deviations beyond ``k`` standard deviations from the
    warmup mean; alarms when either cumulative sum exceeds ``h``.  After
    an alarm the sums reset (standard restart behaviour).
    """

    name = "cusum"

    def __init__(self, k: float = 0.5, h: float = 5.0, warmup: int = 30) -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.k = k
        self.h = h
        self.warmup = warmup
        self._baseline = RunningStats()
        self._pos = 0.0
        self._neg = 0.0

    def update(self, t: float, value: float) -> Optional[Anomaly]:
        if self._baseline.n < self.warmup:
            self._baseline.update(value)
            return None
        mu, sigma = self._baseline.mean, self._baseline.std
        if sigma <= 0:
            sigma = 1e-9
        z = (value - mu) / sigma
        self._pos = max(0.0, self._pos + z - self.k)
        self._neg = max(0.0, self._neg - z - self.k)
        if self._pos > self.h or self._neg > self.h:
            score = max(self._pos, self._neg)
            direction = "up" if self._pos > self._neg else "down"
            self._pos = self._neg = 0.0
            return Anomaly(t, value, score, self.name, f"cusum {direction} shift, S={score:.2f}")
        return None
